//! Intraprocedural points-to refinement for virtual call sites (§3.1).
//!
//! The paper: "a simple alias/points-to analysis algorithm can determine
//! that pointer `ap` never points to a `C` object. This fact can be used
//! to exclude method `C::f` from the call graph, so that ... data member
//! `C::mc1` can be marked dead."
//!
//! [`local_pointees`] computes, for one local pointer variable of one
//! function, the exact set of dynamic classes it can point to — or `None`
//! when that cannot be established. The computation is deliberately
//! simple (flow-insensitive, intraprocedural, syntactic), in the spirit
//! of the lightweight analyses the paper cites:
//!
//! * a variable is *analysable* if it is a local (not a parameter), its
//!   address is never taken, it is declared exactly once, and every
//!   assignment to it is a `nullptr`, `new T`, `&local_object`,
//!   `&global_object`, another analysable variable, a conditional/comma
//!   combination of those, or a static/C-style pointer cast thereof
//!   (casts do not change an object's dynamic class);
//! * `&obj` contributes the *declared* class of `obj`, which for by-value
//!   locals and globals is exactly the dynamic class.

use ddm_cppfront::ast::{
    Block, Expr, ExprKind, LocalInit, Stmt, StmtKind, Type, TypeKind, UnaryOp,
};
use crate::ids::{ClassId, FuncId};
use crate::model::Program;
use std::collections::{BTreeSet, HashMap, HashSet};

/// Everything learned about one function's locals in a single pass.
#[derive(Debug, Default)]
struct FunctionFacts {
    /// Local name → declared class for by-value class locals.
    object_locals: HashMap<String, ClassId>,
    /// Right-hand sides assigned to each pointer-ish local (including
    /// its initializer).
    assignments: HashMap<String, Vec<Expr>>,
    /// Names whose address is taken (could be mutated through a pointer).
    poisoned: HashSet<String>,
    /// Names declared more than once (scope shadowing): not analysable.
    redeclared: HashSet<String>,
    /// All declared local names.
    declared: HashSet<String>,
}

/// Computes the exact dynamic-class set a local pointer `var` of `func`
/// may point to, or `None` when the simple analysis cannot establish one.
pub fn local_pointees(program: &Program, func: FuncId, var: &str) -> Option<BTreeSet<ClassId>> {
    let info = program.function(func);
    let body = info.body.as_ref()?;
    // Parameters are unknown inputs.
    if info.params.iter().any(|p| p.name == var) {
        return None;
    }
    let mut facts = FunctionFacts::default();
    for p in &info.params {
        facts.poisoned.insert(p.name.clone());
    }
    collect_block(program, body, &mut facts);
    let mut visiting = HashSet::new();
    resolve(program, &facts, var, &mut visiting)
}

fn resolve(
    program: &Program,
    facts: &FunctionFacts,
    var: &str,
    visiting: &mut HashSet<String>,
) -> Option<BTreeSet<ClassId>> {
    if facts.poisoned.contains(var) || facts.redeclared.contains(var) {
        return None;
    }
    if !facts.declared.contains(var) {
        return None;
    }
    if !visiting.insert(var.to_string()) {
        // A cycle (p = q; q = p;): the cycle itself adds nothing.
        return Some(BTreeSet::new());
    }
    let mut out = BTreeSet::new();
    for rhs in facts.assignments.get(var).map(Vec::as_slice).unwrap_or(&[]) {
        let contribution = eval_rhs(program, facts, rhs, visiting)?;
        out.extend(contribution);
    }
    visiting.remove(var);
    Some(out)
}

fn eval_rhs(
    program: &Program,
    facts: &FunctionFacts,
    e: &Expr,
    visiting: &mut HashSet<String>,
) -> Option<BTreeSet<ClassId>> {
    match &e.kind {
        ExprKind::Null => Some(BTreeSet::new()),
        ExprKind::New { ty, .. } => {
            let class = class_of_type(program, ty)?;
            Some([class].into_iter().collect())
        }
        ExprKind::Unary {
            op: UnaryOp::AddrOf,
            expr,
        } => match &expr.kind {
            ExprKind::Ident(name) => {
                if let Some(&class) = facts.object_locals.get(name) {
                    return Some([class].into_iter().collect());
                }
                // A by-value class global: its dynamic class is exact too.
                let g = program.globals().iter().find(|g| &g.name == name)?;
                let class = class_of_type(program, &g.ty)?;
                Some([class].into_iter().collect())
            }
            _ => None,
        },
        ExprKind::Ident(name) => resolve(program, facts, name, visiting),
        ExprKind::Cond { then, els, .. } => {
            let mut a = eval_rhs(program, facts, then, visiting)?;
            let b = eval_rhs(program, facts, els, visiting)?;
            a.extend(b);
            Some(a)
        }
        ExprKind::Comma { rhs, .. } => eval_rhs(program, facts, rhs, visiting),
        // Pointer casts re-type the pointer but never change the pointee's
        // dynamic class.
        ExprKind::Cast { expr, .. } => eval_rhs(program, facts, expr, visiting),
        _ => None,
    }
}

fn class_of_type(program: &Program, ty: &Type) -> Option<ClassId> {
    match &ty.kind {
        TypeKind::Named(n) => program.class_by_name(n),
        _ => None,
    }
}

fn collect_block(program: &Program, b: &Block, facts: &mut FunctionFacts) {
    for s in &b.stmts {
        collect_stmt(program, s, facts);
    }
}

fn collect_stmt(program: &Program, s: &Stmt, facts: &mut FunctionFacts) {
    match &s.kind {
        StmtKind::Decl(d) => {
            if !facts.declared.insert(d.name.clone()) {
                facts.redeclared.insert(d.name.clone());
            }
            if let TypeKind::Named(n) = &d.ty.kind {
                if let Some(class) = program.class_by_name(n) {
                    facts.object_locals.insert(d.name.clone(), class);
                }
            }
            match &d.init {
                LocalInit::Default => {}
                LocalInit::Expr(e) => {
                    facts
                        .assignments
                        .entry(d.name.clone())
                        .or_default()
                        .push(e.clone());
                    collect_expr(e, facts);
                }
                LocalInit::Ctor(args) => args.iter().for_each(|a| collect_expr(a, facts)),
            }
        }
        StmtKind::Expr(e) => collect_expr(e, facts),
        StmtKind::If { cond, then, els } => {
            collect_expr(cond, facts);
            collect_stmt(program, then, facts);
            if let Some(e) = els {
                collect_stmt(program, e, facts);
            }
        }
        StmtKind::While { cond, body } | StmtKind::DoWhile { body, cond } => {
            collect_expr(cond, facts);
            collect_stmt(program, body, facts);
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            if let Some(i) = init {
                collect_stmt(program, i, facts);
            }
            if let Some(c) = cond {
                collect_expr(c, facts);
            }
            if let Some(st) = step {
                collect_expr(st, facts);
            }
            collect_stmt(program, body, facts);
        }
        StmtKind::Switch { scrutinee, arms } => {
            collect_expr(scrutinee, facts);
            for arm in arms {
                if let Some(v) = &arm.value {
                    collect_expr(v, facts);
                }
                for st in &arm.stmts {
                    collect_stmt(program, st, facts);
                }
            }
        }
        StmtKind::Return(Some(e)) => collect_expr(e, facts),
        StmtKind::Block(b) => collect_block(program, b, facts),
        _ => {}
    }
}

fn collect_expr(e: &Expr, facts: &mut FunctionFacts) {
    match &e.kind {
        ExprKind::Assign { op, lhs, rhs } => {
            if let ExprKind::Ident(name) = &lhs.kind {
                if op.binary_op().is_none() {
                    facts
                        .assignments
                        .entry(name.clone())
                        .or_default()
                        .push((**rhs).clone());
                } else {
                    // Compound assignment (pointer arithmetic): unknown.
                    facts.poisoned.insert(name.clone());
                }
            } else {
                collect_expr(lhs, facts);
            }
            collect_expr(rhs, facts);
        }
        ExprKind::Unary {
            op: UnaryOp::AddrOf,
            expr,
        } => {
            if let ExprKind::Ident(name) = &expr.kind {
                // `&p` lets the callee rewrite p: only pointer-typed locals
                // matter, but poisoning any name is safe.
                // (Taking `&obj` of an object local is the *normal* way a
                // pointee enters a set, so object locals are exempt.)
                if !facts.object_locals.contains_key(name) {
                    facts.poisoned.insert(name.clone());
                }
            } else {
                collect_expr(expr, facts);
            }
        }
        ExprKind::Postfix { expr, .. } => {
            if let ExprKind::Ident(name) = &expr.kind {
                facts.poisoned.insert(name.clone());
            }
            collect_expr(expr, facts);
        }
        ExprKind::Unary {
            op: UnaryOp::PreInc | UnaryOp::PreDec,
            expr,
        } => {
            if let ExprKind::Ident(name) = &expr.kind {
                facts.poisoned.insert(name.clone());
            }
            collect_expr(expr, facts);
        }
        _ => each_child(e, |child| collect_expr(child, facts)),
    }
}

fn each_child(e: &Expr, mut f: impl FnMut(&Expr)) {
    match &e.kind {
        ExprKind::Member { base, .. } => f(base),
        ExprKind::Index { base, index } => {
            f(base);
            f(index);
        }
        ExprKind::Call { callee, args } => {
            f(callee);
            args.iter().for_each(f);
        }
        ExprKind::Unary { expr, .. }
        | ExprKind::Postfix { expr, .. }
        | ExprKind::SizeofExpr(expr)
        | ExprKind::Cast { expr, .. }
        | ExprKind::Delete { expr, .. } => f(expr),
        ExprKind::Binary { lhs, rhs, .. } | ExprKind::Comma { lhs, rhs } => {
            f(lhs);
            f(rhs);
        }
        ExprKind::Assign { lhs, rhs, .. } => {
            f(lhs);
            f(rhs);
        }
        ExprKind::Cond { cond, then, els } => {
            f(cond);
            f(then);
            f(els);
        }
        ExprKind::New {
            args, array_len, ..
        } => {
            args.iter().for_each(&mut f);
            if let Some(len) = array_len {
                f(len);
            }
        }
        ExprKind::PtrMemApply { base, ptr, .. } => {
            f(base);
            f(ptr);
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddm_cppfront::parse;

    fn setup(src: &str) -> Program {
        Program::build(&parse(src).expect("parse")).expect("sema")
    }

    fn pointees(p: &Program, var: &str) -> Option<Vec<String>> {
        let main = p.main_function().unwrap();
        local_pointees(p, main, var)
            .map(|set| set.into_iter().map(|c| p.class(c).name.clone()).collect())
    }

    const HIER: &str = "class A { public: virtual int f() { return 0; } };\n\
        class B : public A { public: virtual int f() { return 1; } };\n\
        class C : public A { public: virtual int f() { return 2; } };\n";

    #[test]
    fn figure1_shape_excludes_the_never_assigned_class() {
        let p = setup(&format!(
            "{HIER}int main() {{ A a; B b; C c; A* ap;\n\
             int i = 10;\n\
             if (i < 20) {{ ap = &a; }} else {{ ap = &b; }}\n\
             return ap->f(); }}"
        ));
        assert_eq!(pointees(&p, "ap"), Some(vec!["A".into(), "B".into()]));
    }

    #[test]
    fn new_expressions_contribute_exact_classes() {
        let p = setup(&format!(
            "{HIER}int main() {{ A* p = new B(); p = new C(); return p->f(); }}"
        ));
        assert_eq!(pointees(&p, "p"), Some(vec!["B".into(), "C".into()]));
    }

    #[test]
    fn copies_between_locals_union_their_sets() {
        let p = setup(&format!(
            "{HIER}int main() {{ B b; A* q = &b; A* p = q; return p->f(); }}"
        ));
        assert_eq!(pointees(&p, "p"), Some(vec!["B".into()]));
    }

    #[test]
    fn casts_do_not_lose_the_pointee() {
        let p = setup(&format!(
            "{HIER}int main() {{ B* pb = new B(); A* pa = (A*)pb; return pa->f(); }}"
        ));
        assert_eq!(pointees(&p, "pa"), Some(vec!["B".into()]));
    }

    #[test]
    fn unknown_sources_defeat_the_analysis() {
        let p = setup(&format!(
            "{HIER}A* make() {{ return new C(); }}\n\
             int main() {{ A* p = make(); return p->f(); }}"
        ));
        assert_eq!(pointees(&p, "p"), None);
    }

    #[test]
    fn parameters_are_unknown() {
        let p = setup(&format!(
            "{HIER}int user(A* p) {{ return p->f(); }}\n\
             int main() {{ B b; return user(&b); }}"
        ));
        let user = p.free_function("user").unwrap();
        assert_eq!(local_pointees(&p, user, "p"), None);
    }

    #[test]
    fn address_taken_pointer_is_poisoned() {
        let p = setup(&format!(
            "{HIER}void rewrite(A** slot) {{ }}\n\
             int main() {{ B b; A* p = &b; rewrite(&p); return p->f(); }}"
        ));
        assert_eq!(pointees(&p, "p"), None);
    }

    #[test]
    fn nullptr_only_yields_the_empty_set() {
        let p = setup(&format!("{HIER}int main() {{ A* p = nullptr; return 0; }}"));
        assert_eq!(pointees(&p, "p"), Some(vec![]));
    }

    #[test]
    fn global_objects_contribute_their_class() {
        let p = setup(&format!(
            "{HIER}B shared;\n\
             int main() {{ A* p = &shared; return p->f(); }}"
        ));
        assert_eq!(pointees(&p, "p"), Some(vec!["B".into()]));
    }

    #[test]
    fn conditional_expression_unions_both_arms() {
        let p = setup(&format!(
            "{HIER}int main() {{ B b; C c; int k = 1; A* p = k > 0 ? (A*)&b : (A*)&c; return p->f(); }}"
        ));
        assert_eq!(pointees(&p, "p"), Some(vec!["B".into(), "C".into()]));
    }
}
