//! String interning for the analysis hot paths.
//!
//! The call-graph fixpoint and the dispatch-candidate cache used to key
//! their memo tables by `String`, which meant hashing (and on insert,
//! cloning) a method name for every virtual site replayed — a per-pop
//! allocation cost that dominated once programs reached tens of
//! thousands of functions. An [`Interner`] maps each distinct name to a
//! dense [`Symbol`] (`u32`) once, at model-build time; every later
//! comparison or map key is an integer.
//!
//! Symbols are assigned in first-intern order, so for a given program
//! the numbering is deterministic: [`Program`](crate::Program) interns
//! function names in `FuncId` order, and the linker's reassembled
//! programs re-intern in the same order.

use std::collections::HashMap;
use std::fmt;

/// A dense handle for an interned string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

impl Symbol {
    /// The symbol's dense index into its interner.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

/// Deduplicating string arena: each distinct string is stored once and
/// addressed by a [`Symbol`].
#[derive(Debug, Clone, Default)]
pub struct Interner {
    strings: Vec<String>,
    map: HashMap<String, Symbol>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Interns `s`, returning its symbol. Interning the same string
    /// twice returns the same symbol.
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let sym = Symbol(u32::try_from(self.strings.len()).expect("interner overflow"));
        self.strings.push(s.to_string());
        self.map.insert(s.to_string(), sym);
        sym
    }

    /// The symbol of an already-interned string, or `None`.
    pub fn lookup(&self, s: &str) -> Option<Symbol> {
        self.map.get(s).copied()
    }

    /// The string a symbol stands for.
    ///
    /// # Panics
    ///
    /// Panics if `sym` was produced by a different interner.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.index()]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Bytes of string data held by the arena (excluding map overhead);
    /// reported as `cg_arena_bytes` in `--stats`.
    pub fn arena_bytes(&self) -> usize {
        self.strings.iter().map(|s| s.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_round_trips_and_dedups() {
        let mut i = Interner::new();
        let a = i.intern("alpha");
        let b = i.intern("beta");
        assert_ne!(a, b);
        assert_eq!(i.intern("alpha"), a, "re-intern returns the same symbol");
        assert_eq!(i.resolve(a), "alpha");
        assert_eq!(i.resolve(b), "beta");
        assert_eq!(i.len(), 2);
        assert_eq!(i.arena_bytes(), "alpha".len() + "beta".len());
    }

    #[test]
    fn lookup_finds_only_interned_strings() {
        let mut i = Interner::new();
        let a = i.intern("present");
        assert_eq!(i.lookup("present"), Some(a));
        assert_eq!(i.lookup("absent"), None);
        assert!(!i.is_empty());
        assert!(Interner::new().is_empty());
    }

    #[test]
    fn symbols_are_assigned_in_first_intern_order() {
        // Determinism contract: the same intern sequence yields the same
        // numbering, so two builds of the same program agree on symbols.
        let names = ["f", "g", "f", "h", "g", "main"];
        let mut one = Interner::new();
        let mut two = Interner::new();
        let syms_one: Vec<Symbol> = names.iter().map(|n| one.intern(n)).collect();
        let syms_two: Vec<Symbol> = names.iter().map(|n| two.intern(n)).collect();
        assert_eq!(syms_one, syms_two);
        let indexes: Vec<usize> = syms_one.iter().map(|s| s.index()).collect();
        assert_eq!(indexes, vec![0, 1, 0, 2, 1, 3]);
    }
}
