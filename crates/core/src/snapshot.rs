//! The persisted whole-analysis snapshot.
//!
//! A cache directory can hold, next to the per-TU `tu-<hash>.json`
//! summary entries, one [`AnalysisSnapshot`] (`analysis.snap`): the
//! binary modules of every TU, the converged call-graph fixpoint with
//! its deterministic schedule, and the liveness classification. A warm
//! run that finds a valid snapshot skips the per-TU JSON probe for
//! unchanged TUs (decoding their modules straight from the snapshot)
//! and — when the summary diff proves the fixpoint is unaffected —
//! replays the stored schedule instead of re-running it, while emitting
//! a deterministic event/counter/metric stream byte-identical to a cold
//! run.
//!
//! The file is a versioned envelope: magic, format version, a
//! whole-payload FNV-1a checksum, then a single length-framed payload
//! encoded with the [`ddm_hierarchy::binmod`] primitives. Everything in
//! the envelope is derived deterministically from the analysis inputs,
//! so two concurrent writers publishing the same analysis produce
//! byte-identical files and a rename race is unobservable. Publication
//! is atomic (temp-then-rename, same scheme as the summary cache), and
//! `DDM_CACHE_FAULT=snap-kill-mid-write` / `snap-kill-pre-rename`
//! inject crashes into the write path for the torture tests. Any
//! rejection — bad magic, version skew, checksum mismatch, fingerprint
//! mismatch, truncation — makes the run fall back to the summary-cache
//! probe; the snapshot is advisory, never trusted.

use crate::analysis::AnalysisConfig;
use crate::liveness::{LiveReason, LivenessParts, Origin};
use crate::project::config_fingerprint;
use ddm_callgraph::{Algorithm, CallGraphParts, CgRound, CgSchedule};
use ddm_hierarchy::{
    decode_modules, encode_modules, ByteReader, ByteWriter, ClassId, FuncId, MemberRef, TuModule,
    BINMOD_FORMAT_VERSION,
};
use ddm_telemetry::{Counters, Histogram};
use std::path::Path;

/// The snapshot file name inside a cache directory. Deliberately not a
/// `.json` name: tooling that enumerates `tu-*.json` summary entries
/// must never confuse the snapshot for one.
pub const SNAPSHOT_FILE: &str = "analysis.snap";

/// Bumped whenever the envelope or payload encoding changes shape; a
/// reader that sees any other version rejects the file (version skew)
/// and the run recomputes from the summary cache.
pub const SNAPSHOT_FORMAT_VERSION: u32 = 1;

/// The 8-byte magic at the start of every snapshot file.
const MAGIC: &[u8; 8] = b"DDMSNAP\0";

/// Payload checksum: FNV-1a folded over little-endian 8-byte words
/// with the tail zero-padded and the length mixed in last. Detects the
/// same torn/corrupt writes as byte-wise FNV but reads the payload a
/// word at a time — the snapshot is rewritten on every incremental
/// run, so the checksum is on the warm path twice. Part of the
/// snapshot format (a change here must bump
/// [`SNAPSHOT_FORMAT_VERSION`]).
fn snap_checksum(bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        h ^= u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
        h = h.wrapping_mul(PRIME);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        h ^= u64::from_le_bytes(tail);
        h = h.wrapping_mul(PRIME);
    }
    h ^= bytes.len() as u64;
    h.wrapping_mul(PRIME)
}

/// The configuration fingerprint a snapshot is keyed by. Unlike the
/// per-TU summary fingerprint ([`config_fingerprint`]), the snapshot
/// captures the *whole* analysis, so every knob that can change the
/// converged result participates: the call-graph algorithm, the
/// `sizeof` and down-cast policies, the library-class set (sorted for
/// determinism), and the binary module format version.
pub fn snapshot_fingerprint(config: &AnalysisConfig, algorithm: Algorithm) -> String {
    let mut libs: Vec<&str> = config.library_classes.iter().map(String::as_str).collect();
    libs.sort_unstable();
    format!(
        "snap-v{};binmod-v{};tu={};algo={};sizeof={:?};downcast={};libs={}",
        SNAPSHOT_FORMAT_VERSION,
        BINMOD_FORMAT_VERSION,
        config_fingerprint(algorithm),
        algorithm_tag(algorithm),
        config.sizeof_policy,
        u8::from(config.assume_safe_downcasts),
        libs.join(",")
    )
}

fn algorithm_tag(a: Algorithm) -> u8 {
    match a {
        Algorithm::Everything => 0,
        Algorithm::Cha => 1,
        Algorithm::Rta => 2,
        Algorithm::Pta => 3,
    }
}

fn algorithm_from_tag(t: u8) -> Result<Algorithm, String> {
    Ok(match t {
        0 => Algorithm::Everything,
        1 => Algorithm::Cha,
        2 => Algorithm::Rta,
        3 => Algorithm::Pta,
        _ => return Err(format!("unknown algorithm tag {t}")),
    })
}

fn live_reason_tag(r: LiveReason) -> u8 {
    match r {
        LiveReason::Read => 0,
        LiveReason::AddressTaken => 1,
        LiveReason::PointerToMember => 2,
        LiveReason::UnsafeCast => 3,
        LiveReason::UnionPropagation => 4,
        LiveReason::VolatileWrite => 5,
        LiveReason::Sizeof => 6,
    }
}

fn live_reason_from_tag(t: u8) -> Result<LiveReason, String> {
    Ok(match t {
        0 => LiveReason::Read,
        1 => LiveReason::AddressTaken,
        2 => LiveReason::PointerToMember,
        3 => LiveReason::UnsafeCast,
        4 => LiveReason::UnionPropagation,
        5 => LiveReason::VolatileWrite,
        6 => LiveReason::Sizeof,
        _ => return Err(format!("unknown live-reason tag {t}")),
    })
}

fn put_member(w: &mut ByteWriter, m: MemberRef) {
    w.put_u32(m.class.index() as u32);
    w.put_u32(m.index);
}

fn get_member(r: &mut ByteReader) -> Result<MemberRef, String> {
    let class = ClassId::from_index(r.get_u32()? as usize);
    let index = r.get_u32()? as usize;
    Ok(MemberRef::new(class, index))
}

fn put_opt_func(w: &mut ByteWriter, f: Option<FuncId>) {
    match f {
        Some(f) => {
            w.put_bool(true);
            w.put_u32(f.index() as u32);
        }
        None => w.put_bool(false),
    }
}

fn get_opt_func(r: &mut ByteReader) -> Result<Option<FuncId>, String> {
    Ok(if r.get_bool()? {
        Some(FuncId::from_index(r.get_u32()? as usize))
    } else {
        None
    })
}

fn put_origin(w: &mut ByteWriter, o: Origin) {
    match o {
        Origin::Access { func } => {
            w.put_u8(0);
            put_opt_func(w, func);
        }
        Origin::MarkAll { func, root } => {
            w.put_u8(1);
            put_opt_func(w, func);
            w.put_u32(root.index() as u32);
        }
        Origin::Union { root, via } => {
            w.put_u8(2);
            w.put_u32(root.index() as u32);
            put_member(w, via);
        }
    }
}

fn get_origin(r: &mut ByteReader) -> Result<Origin, String> {
    Ok(match r.get_u8()? {
        0 => Origin::Access {
            func: get_opt_func(r)?,
        },
        1 => Origin::MarkAll {
            func: get_opt_func(r)?,
            root: ClassId::from_index(r.get_u32()? as usize),
        },
        2 => Origin::Union {
            root: ClassId::from_index(r.get_u32()? as usize),
            via: get_member(r)?,
        },
        t => return Err(format!("unknown origin tag {t}")),
    })
}

fn put_func_ids(w: &mut ByteWriter, ids: &[FuncId]) {
    w.put_len(ids.len());
    for &f in ids {
        w.put_u32(f.index() as u32);
    }
}

fn get_func_ids(r: &mut ByteReader) -> Result<Vec<FuncId>, String> {
    let n = r.get_len()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(FuncId::from_index(r.get_u32()? as usize));
    }
    Ok(out)
}

fn put_histogram(w: &mut ByteWriter, h: &Histogram) {
    let (buckets, count, sum) = h.to_parts();
    w.put_len(buckets.len());
    for (k, c) in buckets {
        w.put_u32(k as u32);
        w.put_u64(c);
    }
    w.put_u64(count);
    w.put_u64(sum);
}

fn get_histogram(r: &mut ByteReader) -> Result<Histogram, String> {
    let n = r.get_len()?;
    let mut buckets = Vec::with_capacity(n);
    for _ in 0..n {
        let k = r.get_u32()? as usize;
        let c = r.get_u64()?;
        buckets.push((k, c));
    }
    let count = r.get_u64()?;
    let sum = r.get_u64()?;
    Histogram::from_parts(&buckets, count, sum)
}

fn put_counters(w: &mut ByteWriter, c: &Counters) {
    let rows = c.rows();
    w.put_len(rows.len());
    for (_, v) in rows {
        w.put_u64(v);
    }
}

fn get_counters(r: &mut ByteReader) -> Result<Counters, String> {
    let mut c = Counters::default();
    let n = r.get_len()?;
    let expected = c.rows().len();
    if n != expected {
        return Err(format!("counters row count {n}, expected {expected}"));
    }
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        values.push(r.get_u64()?);
    }
    // Assign in rows() order; the slot list below must mirror it.
    let slots: [&mut u64; 16] = [
        &mut c.reachable_functions,
        &mut c.callgraph_edges,
        &mut c.instantiated_classes,
        &mut c.cg_worklist_pops,
        &mut c.cg_ready_drains,
        &mut c.scan_reads,
        &mut c.scan_address_taken,
        &mut c.scan_ptr_to_member,
        &mut c.scan_volatile_writes,
        &mut c.markall_triggers,
        &mut c.markall_classes_expanded,
        &mut c.union_rounds,
        &mut c.union_classes_livened,
        &mut c.members_live,
        &mut c.members_dead,
        &mut c.members_unclassifiable,
    ];
    for (slot, v) in slots.into_iter().zip(values) {
        *slot = v;
    }
    debug_assert_eq!(
        c.rows().iter().map(|&(k, _)| k).collect::<Vec<_>>(),
        Counters::default().rows().iter().map(|&(k, _)| k).collect::<Vec<_>>(),
    );
    Ok(c)
}

/// Everything a warm run needs to reproduce a converged analysis
/// without re-running it: the binary modules of every TU (so unchanged
/// TUs skip the JSON probe entirely), the display names of the stored
/// reachable functions (the reuse gate's id-stability witness), the
/// linked program's shape, the frozen call graph with its deterministic
/// replay schedule, and the liveness classification with the counters
/// its scan accumulated.
///
/// The snapshot never stores the linked `Program` itself: warm runs
/// always re-link from the decoded modules, so the link-phase
/// deterministic events fire naturally and the linked model can never
/// drift from what the modules describe.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisSnapshot {
    /// The [`snapshot_fingerprint`] the analysis ran under.
    pub fingerprint: String,
    /// FNV-1a content hash of each TU's source, in input order.
    pub source_hashes: Vec<u64>,
    /// Rendered JSON size of each TU's summary-cache entry, in input
    /// order. Warm runs report these in hit events and the
    /// `frontend/tu_summary_bytes` histogram instead of re-rendering
    /// every unchanged module to JSON just to measure it — that render
    /// was the single largest cost on the warm path.
    pub summary_bytes: Vec<u64>,
    /// The extracted module of each TU, in input order.
    pub modules: Vec<TuModule>,
    /// `(function id, display name)` for every stored-reachable
    /// function, ascending by id. The reuse gate checks these names
    /// against the freshly linked program to prove the id assignment of
    /// everything reachable survived the edit.
    pub reachable_names: Vec<(u32, String)>,
    /// Class count of the linked program the snapshot was taken from.
    pub class_count: u32,
    /// Function count of the linked program the snapshot was taken from.
    pub function_count: u32,
    /// The frozen call graph.
    pub callgraph: CallGraphParts,
    /// The deterministic fixpoint schedule for telemetry replay.
    pub schedule: CgSchedule,
    /// The liveness classification with provenance.
    pub liveness: LivenessParts,
    /// The deterministic counters the liveness scan accumulated (the
    /// graph-shape counters are recomputed from the graph itself).
    pub liveness_counters: Counters,
}

impl AnalysisSnapshot {
    /// Serializes the snapshot into its complete file image (envelope +
    /// payload). Deterministic: equal snapshots encode to equal bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_str(&self.fingerprint);
        w.put_len(self.source_hashes.len());
        for &h in &self.source_hashes {
            w.put_u64(h);
        }
        w.put_len(self.summary_bytes.len());
        for &b in &self.summary_bytes {
            w.put_u64(b);
        }
        encode_modules(&self.modules, &mut w);
        w.put_len(self.reachable_names.len());
        for (id, name) in &self.reachable_names {
            w.put_u32(*id);
            w.put_str(name);
        }
        w.put_u32(self.class_count);
        w.put_u32(self.function_count);

        w.put_u8(algorithm_tag(self.callgraph.algorithm));
        put_func_ids(&mut w, &self.callgraph.reachable);
        w.put_len(self.callgraph.instantiated.len());
        for &c in &self.callgraph.instantiated {
            w.put_u32(c.index() as u32);
        }
        put_func_ids(&mut w, &self.callgraph.address_taken);
        w.put_len(self.callgraph.edge_offsets.len());
        for &o in &self.callgraph.edge_offsets {
            w.put_u32(o);
        }
        put_func_ids(&mut w, &self.callgraph.edge_targets);

        w.put_len(self.schedule.rounds.len());
        for r in &self.schedule.rounds {
            w.put_u64(r.delta_fns);
            w.put_u64(r.pops);
            w.put_u64(r.drains);
        }
        w.put_u64(self.schedule.pops);
        w.put_u64(self.schedule.drains);
        w.put_u64(self.schedule.parked);
        put_histogram(&mut w, &self.schedule.dispatch_candidates);
        w.put_u64(self.schedule.replays);
        w.put_u64(self.schedule.interned_symbols);
        w.put_u64(self.schedule.arena_bytes);

        w.put_len(self.liveness.live.len());
        for &(m, r) in &self.liveness.live {
            put_member(&mut w, m);
            w.put_u8(live_reason_tag(r));
        }
        w.put_len(self.liveness.unclassifiable.len());
        for &m in &self.liveness.unclassifiable {
            put_member(&mut w, m);
        }
        w.put_len(self.liveness.origins.len());
        for &(m, o) in &self.liveness.origins {
            put_member(&mut w, m);
            put_origin(&mut w, o);
        }
        put_counters(&mut w, &self.liveness_counters);

        let payload = w.into_bytes();
        let mut out = Vec::with_capacity(payload.len() + 20);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&SNAPSHOT_FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&snap_checksum(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Decodes a complete file image.
    ///
    /// # Errors
    ///
    /// A human-readable rejection reason: bad magic, `format version
    /// mismatch` (skew), `payload checksum mismatch` (torn or corrupt),
    /// or any structural decode failure. Callers treat every error the
    /// same way — recompute.
    pub fn decode(bytes: &[u8]) -> Result<AnalysisSnapshot, String> {
        if bytes.len() < MAGIC.len() + 12 {
            return Err("truncated envelope".to_string());
        }
        if &bytes[..MAGIC.len()] != MAGIC {
            return Err("bad magic".to_string());
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version != SNAPSHOT_FORMAT_VERSION {
            return Err("format version mismatch".to_string());
        }
        let checksum = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
        let payload = &bytes[20..];
        if snap_checksum(payload) != checksum {
            return Err("payload checksum mismatch".to_string());
        }

        let mut r = ByteReader::new(payload);
        let fingerprint = r.get_str()?;
        let n = r.get_len()?;
        let mut source_hashes = Vec::with_capacity(n);
        for _ in 0..n {
            source_hashes.push(r.get_u64()?);
        }
        let n = r.get_len()?;
        let mut summary_bytes = Vec::with_capacity(n);
        for _ in 0..n {
            summary_bytes.push(r.get_u64()?);
        }
        let modules = decode_modules(&mut r)?;
        let n = r.get_len()?;
        let mut reachable_names = Vec::with_capacity(n);
        for _ in 0..n {
            let id = r.get_u32()?;
            let name = r.get_str()?;
            reachable_names.push((id, name));
        }
        let class_count = r.get_u32()?;
        let function_count = r.get_u32()?;

        let algorithm = algorithm_from_tag(r.get_u8()?)?;
        let reachable = get_func_ids(&mut r)?;
        let n = r.get_len()?;
        let mut instantiated = Vec::with_capacity(n);
        for _ in 0..n {
            instantiated.push(ClassId::from_index(r.get_u32()? as usize));
        }
        let address_taken = get_func_ids(&mut r)?;
        let n = r.get_len()?;
        let mut edge_offsets = Vec::with_capacity(n);
        for _ in 0..n {
            edge_offsets.push(r.get_u32()?);
        }
        let edge_targets = get_func_ids(&mut r)?;
        let callgraph = CallGraphParts {
            algorithm,
            reachable,
            instantiated,
            address_taken,
            edge_offsets,
            edge_targets,
        };

        let n = r.get_len()?;
        let mut rounds = Vec::with_capacity(n);
        for _ in 0..n {
            rounds.push(CgRound {
                delta_fns: r.get_u64()?,
                pops: r.get_u64()?,
                drains: r.get_u64()?,
            });
        }
        let schedule = CgSchedule {
            rounds,
            pops: r.get_u64()?,
            drains: r.get_u64()?,
            parked: r.get_u64()?,
            dispatch_candidates: get_histogram(&mut r)?,
            replays: r.get_u64()?,
            interned_symbols: r.get_u64()?,
            arena_bytes: r.get_u64()?,
        };

        let n = r.get_len()?;
        let mut live = Vec::with_capacity(n);
        for _ in 0..n {
            let m = get_member(&mut r)?;
            let reason = live_reason_from_tag(r.get_u8()?)?;
            live.push((m, reason));
        }
        let n = r.get_len()?;
        let mut unclassifiable = Vec::with_capacity(n);
        for _ in 0..n {
            unclassifiable.push(get_member(&mut r)?);
        }
        let n = r.get_len()?;
        let mut origins = Vec::with_capacity(n);
        for _ in 0..n {
            let m = get_member(&mut r)?;
            let o = get_origin(&mut r)?;
            origins.push((m, o));
        }
        let liveness = LivenessParts {
            live,
            unclassifiable,
            origins,
        };
        let liveness_counters = get_counters(&mut r)?;
        if !r.is_at_end() {
            return Err("trailing bytes after payload".to_string());
        }

        Ok(AnalysisSnapshot {
            fingerprint,
            source_hashes,
            summary_bytes,
            modules,
            reachable_names,
            class_count,
            function_count,
            callgraph,
            schedule,
            liveness,
            liveness_counters,
        })
    }

    /// Loads and validates the snapshot in `dir` against `fingerprint`.
    ///
    /// # Errors
    ///
    /// The rejection reason; `missing` when there is no snapshot file at
    /// all (the common cold case, which callers usually don't report).
    pub fn load(dir: &Path, fingerprint: &str) -> Result<AnalysisSnapshot, String> {
        let bytes =
            std::fs::read(dir.join(SNAPSHOT_FILE)).map_err(|_| "missing".to_string())?;
        let snap = AnalysisSnapshot::decode(&bytes)?;
        if snap.fingerprint != fingerprint {
            return Err("fingerprint mismatch".to_string());
        }
        if snap.modules.len() != snap.source_hashes.len()
            || snap.summary_bytes.len() != snap.source_hashes.len()
        {
            return Err("module/hash count mismatch".to_string());
        }
        Ok(snap)
    }

    /// Atomically publishes the snapshot into `dir`: the image is
    /// written to a process-unique `analysis.snap.tmp.<pid>`, then
    /// renamed over [`SNAPSHOT_FILE`]. Readers observe either no
    /// snapshot, the previous one, or this one — never a torn file.
    /// Best-effort like all cache I/O; a failure just means the next
    /// run recomputes.
    pub fn save(&self, dir: &Path) {
        let bytes = self.encode();
        let tmp = dir.join(format!("{SNAPSHOT_FILE}.tmp.{}", std::process::id()));
        let written = (|| -> std::io::Result<()> {
            use std::io::Write as _;
            let mut f = std::fs::File::create(&tmp)?;
            if snap_fault() == Some(SnapFault::KillMidWrite) {
                f.write_all(&bytes[..bytes.len() / 2])?;
                let _ = f.sync_all();
                std::process::abort();
            }
            f.write_all(&bytes)?;
            Ok(())
        })();
        match written {
            Ok(()) => {
                if snap_fault() == Some(SnapFault::KillPreRename) {
                    std::process::abort();
                }
                let _ = std::fs::rename(&tmp, dir.join(SNAPSHOT_FILE));
            }
            Err(_) => {
                let _ = std::fs::remove_file(&tmp);
            }
        }
    }
}

/// Crash-injection points inside the snapshot write path, selected by
/// the same `DDM_CACHE_FAULT` environment variable the summary cache
/// uses (distinct values, so a test can fault either layer alone).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SnapFault {
    /// Abort after writing half the image to the temp file.
    KillMidWrite,
    /// Abort after fully writing the temp file, before the rename.
    KillPreRename,
}

fn snap_fault() -> Option<SnapFault> {
    static FAULT: std::sync::OnceLock<Option<SnapFault>> = std::sync::OnceLock::new();
    *FAULT.get_or_init(|| match std::env::var("DDM_CACHE_FAULT").as_deref() {
        Ok("snap-kill-mid-write") => Some(SnapFault::KillMidWrite),
        Ok("snap-kill-pre-rename") => Some(SnapFault::KillPreRename),
        _ => None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddm_cppfront::{parse, SourceMap};
    use ddm_hierarchy::{Program, ProgramSummary};

    fn sample_snapshot() -> AnalysisSnapshot {
        let src = "class A { public: int x; int y; };\n\
                   int main() { A a; return a.x; }";
        let unit = parse(src).unwrap();
        let program = Program::build(&unit).unwrap();
        let summary = ProgramSummary::build(&program, false, 1);
        let map = SourceMap::new("a.cpp".to_string(), src.to_string());
        let module = TuModule::extract(&unit, &program, &summary, &map);

        let mut dispatch = Histogram::default();
        dispatch.record(2);
        dispatch.record(5);
        let mut counters = Counters::default();
        counters.scan_reads = 3;
        counters.members_live = 1;
        counters.members_dead = 1;
        AnalysisSnapshot {
            fingerprint: "snap-test".to_string(),
            source_hashes: vec![ddm_hierarchy::fnv1a64(src.as_bytes())],
            summary_bytes: vec![321],
            modules: vec![module],
            reachable_names: vec![(0, "main".to_string())],
            class_count: 1,
            function_count: 1,
            callgraph: CallGraphParts {
                algorithm: Algorithm::Rta,
                reachable: vec![FuncId::from_index(0)],
                instantiated: vec![ClassId::from_index(0)],
                address_taken: vec![],
                edge_offsets: vec![0, 0],
                edge_targets: vec![],
            },
            schedule: CgSchedule {
                rounds: vec![CgRound {
                    delta_fns: 1,
                    pops: 1,
                    drains: 0,
                }],
                pops: 1,
                drains: 0,
                parked: 0,
                dispatch_candidates: dispatch,
                replays: 2,
                interned_symbols: 4,
                arena_bytes: 64,
            },
            liveness: LivenessParts {
                live: vec![(
                    MemberRef::new(ClassId::from_index(0), 0),
                    LiveReason::Read,
                )],
                unclassifiable: vec![],
                origins: vec![
                    (
                        MemberRef::new(ClassId::from_index(0), 0),
                        Origin::Access {
                            func: Some(FuncId::from_index(0)),
                        },
                    ),
                    (
                        MemberRef::new(ClassId::from_index(0), 1),
                        Origin::Union {
                            root: ClassId::from_index(0),
                            via: MemberRef::new(ClassId::from_index(0), 0),
                        },
                    ),
                ],
            },
            liveness_counters: counters,
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let snap = sample_snapshot();
        let bytes = snap.encode();
        let back = AnalysisSnapshot::decode(&bytes).expect("decode");
        assert_eq!(back, snap);
        assert_eq!(back.encode(), bytes, "re-encode is a fixpoint");
    }

    #[test]
    fn encoding_is_deterministic() {
        let snap = sample_snapshot();
        assert_eq!(snap.encode(), snap.clone().encode());
    }

    #[test]
    fn truncation_and_corruption_are_rejected() {
        let bytes = sample_snapshot().encode();
        assert_eq!(
            AnalysisSnapshot::decode(&[]).unwrap_err(),
            "truncated envelope"
        );
        assert_eq!(
            AnalysisSnapshot::decode(b"NOTASNAP0000000000000000").unwrap_err(),
            "bad magic"
        );
        // Any truncation of the payload breaks the checksum.
        for cut in [bytes.len() / 4, bytes.len() / 2, bytes.len() - 1] {
            assert_eq!(
                AnalysisSnapshot::decode(&bytes[..cut.max(20)]).unwrap_err(),
                "payload checksum mismatch",
                "cut at {cut}"
            );
        }
        // A single flipped payload byte breaks it too.
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        assert_eq!(
            AnalysisSnapshot::decode(&flipped).unwrap_err(),
            "payload checksum mismatch"
        );
    }

    #[test]
    fn version_skew_is_rejected() {
        let mut bytes = sample_snapshot().encode();
        bytes[8..12].copy_from_slice(&(SNAPSHOT_FORMAT_VERSION + 1).to_le_bytes());
        assert_eq!(
            AnalysisSnapshot::decode(&bytes).unwrap_err(),
            "format version mismatch"
        );
    }

    #[test]
    fn load_checks_the_fingerprint_and_save_is_atomic() {
        let dir = std::env::temp_dir().join(format!("ddm-snap-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        assert_eq!(
            AnalysisSnapshot::load(&dir, "snap-test").unwrap_err(),
            "missing"
        );
        let snap = sample_snapshot();
        snap.save(&dir);
        let back = AnalysisSnapshot::load(&dir, "snap-test").expect("load");
        assert_eq!(back, snap);
        assert_eq!(
            AnalysisSnapshot::load(&dir, "other-config").unwrap_err(),
            "fingerprint mismatch"
        );
        // No temp left behind after a clean publish.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "dangling temps: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_covers_every_knob() {
        let base = AnalysisConfig::default();
        let baseline = snapshot_fingerprint(&base, Algorithm::Rta);
        assert_ne!(baseline, snapshot_fingerprint(&base, Algorithm::Pta));
        assert_ne!(baseline, snapshot_fingerprint(&base, Algorithm::Cha));
        let mut cfg = AnalysisConfig::default();
        cfg.sizeof_policy = crate::SizeofPolicy::Ignore;
        assert_ne!(baseline, snapshot_fingerprint(&cfg, Algorithm::Rta));
        let mut cfg = AnalysisConfig::default();
        cfg.assume_safe_downcasts = true;
        assert_ne!(baseline, snapshot_fingerprint(&cfg, Algorithm::Rta));
        let mut cfg = AnalysisConfig::default();
        cfg.library_classes.insert("String".to_string());
        cfg.library_classes.insert("Array".to_string());
        let with_libs = snapshot_fingerprint(&cfg, Algorithm::Rta);
        assert_ne!(baseline, with_libs);
        assert!(with_libs.ends_with("libs=Array,String"), "{with_libs}");
    }
}
