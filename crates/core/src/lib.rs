//! # ddm-core
//!
//! The primary contribution of Sweeney & Tip, *A Study of Dead Data
//! Members in C++ Applications* (PLDI 1998): a simple, efficient
//! whole-program analysis that detects data members whose values can
//! never affect observable behaviour.
//!
//! A member is **live** iff its value is *read*, or its *address is
//! taken*, in code reachable from `main()`; everything else — including
//! members that are only ever written — is **dead** and can be removed
//! from every object without changing program behaviour. The special
//! cases (all implemented here, see [`DeadMemberAnalysis`]):
//!
//! * `volatile` members are live when written;
//! * `delete`/`free` operands are exempt from livening;
//! * `&Z::m` pointer-to-member expressions liven their member;
//! * unsafe casts liven all members contained in the operand's type;
//! * a union with one live member has all its contents livened;
//! * `sizeof` is conservative by default and ignorable by policy.
//!
//! Use [`AnalysisPipeline`] for the one-call workflow, or compose
//! [`DeadMemberAnalysis`] with your own
//! [`CallGraph`](ddm_callgraph::CallGraph) for ablations.

pub mod analysis;
pub mod eliminate;
pub mod epoch;
pub mod explain;
pub mod liveness;
pub mod pipeline;
pub mod project;
pub mod report;
pub mod serve;
pub mod snapshot;

pub use analysis::{
    replay_liveness_telemetry, AnalysisConfig, DeadMemberAnalysis, SizeofPolicy,
    SEQUENTIAL_SCAN_THRESHOLD,
};
pub use eliminate::{eliminate, eliminate_with, Elimination, KeepReason};
pub use epoch::{EpochCell, EpochSnapshot};
pub use explain::{explain, witness_path, ExplainError};
pub use liveness::{LiveReason, Liveness, LivenessParts, Origin};
pub use pipeline::{AnalysisPipeline, Engine, PipelineError};
pub use project::{config_fingerprint, ProjectError, ProjectPipeline};
pub use report::{render_analysis, ClassReport, Report};
pub use serve::{serve, ServeOptions};
pub use snapshot::{
    snapshot_fingerprint, AnalysisSnapshot, SNAPSHOT_FILE, SNAPSHOT_FORMAT_VERSION,
};
