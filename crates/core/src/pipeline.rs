//! End-to-end convenience pipeline: source → parse → model → call graph →
//! dead-member analysis → report.

use crate::analysis::{AnalysisConfig, DeadMemberAnalysis};
use crate::liveness::Liveness;
use crate::report::Report;
use ddm_callgraph::{Algorithm, CallGraph, CallGraphOptions};
use ddm_cppfront::{parse, ParseError};
use ddm_hierarchy::{
    body_walk_count, used_classes, ClassId, MemberLookup, Program, ProgramSummary, SemaError,
    TypeError,
};
use ddm_telemetry::{Counters, EventClass, Telemetry, LANE_MAIN};
use std::collections::HashSet;
use std::error::Error;
use std::fmt;

/// Which analysis engine drives the pipeline.
///
/// Both engines produce bit-identical results (liveness, reasons,
/// call graph, used classes, and rendered report); they differ only in
/// how often function bodies are traversed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Engine {
    /// The AST-walking engine: the delta call-graph fixpoint walks each
    /// newly reachable function body once (widening parked dispatch
    /// sites without re-walking), and the liveness scan walks the
    /// reachable set again. Retained as the differential-testing
    /// reference.
    Walk,
    /// The walk-once engine (default): each function body is traversed
    /// exactly once to extract a summary; call-graph construction and the
    /// liveness scan then propagate over summaries.
    #[default]
    Summary,
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Engine::Walk => "walk",
            Engine::Summary => "summary",
        })
    }
}

/// Any error the pipeline can produce.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// Lexing/parsing failed.
    Parse(ParseError),
    /// Semantic model construction failed.
    Sema(SemaError),
    /// Type resolution inside a body failed.
    Type(TypeError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Parse(e) => write!(f, "parse error: {e}"),
            PipelineError::Sema(e) => write!(f, "semantic error: {e}"),
            PipelineError::Type(e) => write!(f, "type error: {e}"),
        }
    }
}

impl Error for PipelineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PipelineError::Parse(e) => Some(e),
            PipelineError::Sema(e) => Some(e),
            PipelineError::Type(e) => Some(e),
        }
    }
}

impl From<ParseError> for PipelineError {
    fn from(e: ParseError) -> Self {
        PipelineError::Parse(e)
    }
}

impl From<SemaError> for PipelineError {
    fn from(e: SemaError) -> Self {
        PipelineError::Sema(e)
    }
}

impl From<TypeError> for PipelineError {
    fn from(e: TypeError) -> Self {
        PipelineError::Type(e)
    }
}

/// A completed analysis run, holding every intermediate artifact.
///
/// # Examples
///
/// ```
/// use ddm_core::AnalysisPipeline;
///
/// let run = AnalysisPipeline::from_source(
///     "class A { public: int live; int dead; };\n\
///      int main() { A a; a.dead = 1; return a.live; }",
/// )?;
/// assert_eq!(run.report().dead_member_names(), vec!["A::dead"]);
/// # Ok::<(), ddm_core::PipelineError>(())
/// ```
#[derive(Debug)]
pub struct AnalysisPipeline {
    tu: ddm_cppfront::TranslationUnit,
    program: Program,
    callgraph: CallGraph,
    liveness: Liveness,
    used: HashSet<ClassId>,
    config: AnalysisConfig,
    engine: Engine,
}

impl AnalysisPipeline {
    /// Runs the full pipeline with the default configuration (RTA call
    /// graph, conservative `sizeof`, conservative down-casts).
    ///
    /// # Errors
    ///
    /// Returns a [`PipelineError`] for parse, semantic, or type failures.
    pub fn from_source(source: &str) -> Result<AnalysisPipeline, PipelineError> {
        Self::with_config(source, AnalysisConfig::default(), Algorithm::Rta)
    }

    /// Runs the full pipeline with an explicit configuration and call-graph
    /// algorithm.
    ///
    /// # Errors
    ///
    /// Returns a [`PipelineError`] for parse, semantic, or type failures.
    pub fn with_config(
        source: &str,
        config: AnalysisConfig,
        algorithm: Algorithm,
    ) -> Result<AnalysisPipeline, PipelineError> {
        Self::with_config_jobs(source, config, algorithm, 1)
    }

    /// Runs the full pipeline, sharding the liveness scan across `jobs`
    /// worker threads (see [`DeadMemberAnalysis::run_jobs`]). Results are
    /// bit-identical for every `jobs` value; `jobs <= 1` is the
    /// sequential reference path.
    ///
    /// # Errors
    ///
    /// Returns a [`PipelineError`] for parse, semantic, or type failures.
    pub fn with_config_jobs(
        source: &str,
        config: AnalysisConfig,
        algorithm: Algorithm,
        jobs: usize,
    ) -> Result<AnalysisPipeline, PipelineError> {
        Self::with_config_engine(source, config, algorithm, jobs, Engine::default())
    }

    /// Runs the full pipeline on an explicit [`Engine`].
    ///
    /// # Errors
    ///
    /// Returns a [`PipelineError`] for parse, semantic, or type failures.
    pub fn with_config_engine(
        source: &str,
        config: AnalysisConfig,
        algorithm: Algorithm,
        jobs: usize,
        engine: Engine,
    ) -> Result<AnalysisPipeline, PipelineError> {
        Self::with_config_telemetry(source, config, algorithm, jobs, engine, &Telemetry::disabled())
    }

    /// [`AnalysisPipeline::with_config_engine`] with telemetry: every
    /// pipeline phase is spanned on the main lane (workers record their
    /// own lanes), the deterministic counters are accumulated, and the
    /// execution-stats snapshot is filled in.
    ///
    /// Telemetry observes the run but never steers it: the pipeline's
    /// analysis artifacts are byte-identical whether the collector is
    /// enabled, disabled, or absent.
    ///
    /// # Errors
    ///
    /// Returns a [`PipelineError`] for parse, semantic, or type failures.
    pub fn with_config_telemetry(
        source: &str,
        config: AnalysisConfig,
        algorithm: Algorithm,
        jobs: usize,
        engine: Engine,
        telemetry: &Telemetry,
    ) -> Result<AnalysisPipeline, PipelineError> {
        let walks_before = body_walk_count();

        let parse_span = telemetry.span(LANE_MAIN, || format!("parse ({} bytes)", source.len()));
        let tu = parse(source)?;
        drop(parse_span);

        let sema_span = telemetry.span(LANE_MAIN, || "program model".to_string());
        let program = Program::build(&tu)?;
        drop(sema_span);

        let cg_options = CallGraphOptions {
            algorithm,
            library_classes: config
                .library_classes
                .iter()
                .filter_map(|n| program.class_by_name(n))
                .collect(),
            jobs,
        };
        let (callgraph, liveness, used) = match engine {
            Engine::Walk => {
                let lookup = MemberLookup::new(&program);
                let cg_span = telemetry.span(LANE_MAIN, || "callgraph".to_string());
                let callgraph = CallGraph::build_with(&program, &lookup, &cg_options, telemetry)?;
                drop(cg_span);
                let liveness = DeadMemberAnalysis::new(&program, config.clone()).run_jobs_with(
                    &callgraph,
                    jobs,
                    telemetry,
                )?;
                let used_span = telemetry.span(LANE_MAIN, || "used classes".to_string());
                let used = used_classes(&program, &lookup)?;
                drop(used_span);
                (callgraph, liveness, used)
            }
            Engine::Summary => {
                // Walk once: extract summaries (sharded across `jobs`
                // workers), then every downstream phase propagates over
                // them without touching an AST again.
                let summary =
                    ProgramSummary::build_with(&program, algorithm == Algorithm::Pta, jobs, telemetry);
                let cg_span = telemetry.span(LANE_MAIN, || "callgraph".to_string());
                let callgraph =
                    CallGraph::build_from_summary_with(&program, &summary, &cg_options, telemetry)?;
                drop(cg_span);
                let liveness = DeadMemberAnalysis::new(&program, config.clone()).run_summary_with(
                    &summary,
                    &callgraph,
                    telemetry,
                )?;
                let used_span = telemetry.span(LANE_MAIN, || "used classes".to_string());
                let used = summary.used_classes(&program)?;
                drop(used_span);
                (callgraph, liveness, used)
            }
        };

        telemetry.update_stats(|s| {
            s.engine = engine.to_string();
            s.jobs = jobs as u64;
            s.bodies_walked += body_walk_count() - walks_before;
        });
        let mut tail = Counters::default();
        tail.reachable_functions = callgraph.reachable_count() as u64;
        tail.callgraph_edges = callgraph.edge_count() as u64;
        tail.instantiated_classes = callgraph.instantiated().len() as u64;
        for (cid, class) in program.classes() {
            for idx in 0..class.members.len() {
                let m = ddm_hierarchy::MemberRef::new(cid, idx);
                // Mirror the report's precedence: unclassifiable trumps
                // the live/dead verdict.
                if liveness.is_unclassifiable(m) {
                    tail.members_unclassifiable += 1;
                } else if liveness.is_live(m) {
                    tail.members_live += 1;
                } else {
                    tail.members_dead += 1;
                }
            }
        }
        telemetry.add_counters(&tail);
        emit_classification_event(telemetry, &tail);

        Ok(AnalysisPipeline {
            tu,
            program,
            callgraph,
            liveness,
            used,
            config,
            engine,
        })
    }

    /// Analyses a batch of named sources concurrently on `jobs` worker
    /// threads (each source runs the full sequential pipeline; the
    /// parallelism is across programs, so worker threads are never
    /// oversubscribed).
    ///
    /// Results are returned **in input order**, independent of which
    /// worker finished first — batch mode is as deterministic as a
    /// `for` loop over [`AnalysisPipeline::with_config`].
    pub fn run_suite(
        inputs: &[(String, String)],
        config: &AnalysisConfig,
        algorithm: Algorithm,
        jobs: usize,
    ) -> Vec<(String, Result<AnalysisPipeline, PipelineError>)> {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Mutex;

        let jobs = jobs.max(1).min(inputs.len().max(1));
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<AnalysisPipeline, PipelineError>>>> =
            inputs.iter().map(|_| Mutex::new(None)).collect();

        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some((_, source)) = inputs.get(i) else {
                        break;
                    };
                    let result = Self::with_config(source, config.clone(), algorithm);
                    *slots[i].lock().expect("suite slot poisoned") = Some(result);
                });
            }
        });

        inputs
            .iter()
            .zip(slots)
            .map(|((name, _), slot)| {
                let result = slot
                    .into_inner()
                    .expect("suite slot poisoned")
                    .expect("every input is analysed exactly once");
                (name.clone(), result)
            })
            .collect()
    }

    /// The parsed translation unit the analysis ran on.
    pub fn translation_unit(&self) -> &ddm_cppfront::TranslationUnit {
        &self.tu
    }

    /// The resolved program model.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The call graph that scoped the analysis.
    pub fn callgraph(&self) -> &CallGraph {
        &self.callgraph
    }

    /// The per-member classification.
    pub fn liveness(&self) -> &Liveness {
        &self.liveness
    }

    /// The used-class set.
    pub fn used(&self) -> &HashSet<ClassId> {
        &self.used
    }

    /// The configuration the run used.
    pub fn config(&self) -> &AnalysisConfig {
        &self.config
    }

    /// The engine the run used.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Builds the report.
    pub fn report(&self) -> Report {
        Report::new(&self.program, &self.liveness, &self.used)
    }
}

/// Flight-recorder tail shared by the single-TU and project pipelines:
/// the final classification verdict alongside the graph totals that
/// scoped it — all deterministic-counter fields, so det class.
pub(crate) fn emit_classification_event(telemetry: &Telemetry, tail: &Counters) {
    telemetry.event(EventClass::Deterministic, "classification", || {
        vec![
            ("reachable_functions", tail.reachable_functions.into()),
            ("callgraph_edges", tail.callgraph_edges.into()),
            ("instantiated_classes", tail.instantiated_classes.into()),
            ("live", tail.members_live.into()),
            ("dead", tail.members_dead.into()),
            ("unclassifiable", tail.members_unclassifiable.into()),
        ]
    });
    telemetry.metrics(|m| {
        m.gauge_set("classify/members_live", tail.members_live as i64);
        m.gauge_set("classify/members_dead", tail.members_dead as i64);
        m.gauge_set(
            "classify/members_unclassifiable",
            tail.members_unclassifiable as i64,
        );
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_end_to_end() {
        let run = AnalysisPipeline::from_source(
            "class A { public: int live; int dead; };\n\
             int main() { A a; return a.live; }",
        )
        .unwrap();
        let report = run.report();
        assert_eq!(report.dead_member_names(), vec!["A::dead"]);
        assert!(run.callgraph().reachable_count() >= 1);
        assert_eq!(run.used().len(), 1);
    }

    #[test]
    fn run_suite_keeps_input_order_and_matches_single_runs() {
        let inputs: Vec<(String, String)> = (0..6)
            .map(|i| {
                (
                    format!("prog{i}"),
                    format!(
                        "class A{i} {{ public: int live; int dead{i}; }};\n\
                         int main() {{ A{i} a; return a.live; }}"
                    ),
                )
            })
            .collect();
        for jobs in [1, 3, 8] {
            let results = AnalysisPipeline::run_suite(
                &inputs,
                &AnalysisConfig::default(),
                Algorithm::Rta,
                jobs,
            );
            assert_eq!(results.len(), inputs.len());
            for (i, (name, run)) in results.iter().enumerate() {
                assert_eq!(name, &format!("prog{i}"), "jobs={jobs} reordered output");
                let run = run.as_ref().expect("pipeline ok");
                assert_eq!(
                    run.report().dead_member_names(),
                    vec![format!("A{i}::dead{i}")]
                );
            }
        }
    }

    #[test]
    fn run_suite_surfaces_per_input_errors() {
        let inputs = vec![
            ("good".to_string(), "int main() { return 0; }".to_string()),
            ("bad".to_string(), "class {".to_string()),
        ];
        let results =
            AnalysisPipeline::run_suite(&inputs, &AnalysisConfig::default(), Algorithm::Rta, 4);
        assert!(results[0].1.is_ok());
        assert!(matches!(results[1].1, Err(PipelineError::Parse(_))));
    }

    #[test]
    fn parse_errors_propagate() {
        let err = AnalysisPipeline::from_source("class {").unwrap_err();
        assert!(matches!(err, PipelineError::Parse(_)));
        assert!(err.to_string().contains("parse error"));
    }

    #[test]
    fn sema_errors_propagate() {
        let err = AnalysisPipeline::from_source(
            "class A { public: int x; int x; }; int main() { return 0; }",
        )
        .unwrap_err();
        assert!(matches!(err, PipelineError::Sema(_)));
    }

    #[test]
    fn type_errors_propagate() {
        let err = AnalysisPipeline::from_source("int main() { return mystery; }").unwrap_err();
        assert!(matches!(err, PipelineError::Type(_)));
        assert!(err.source().is_some());
    }
}
