//! Liveness classification results.

use ddm_hierarchy::{ClassId, FuncId, MemberBitSet, MemberIndex, MemberRef, Program};
use std::collections::BTreeMap;
use std::fmt;

/// Why a data member was classified live. The *first* reason found is
/// recorded (the algorithm is monotone, so any reason suffices).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LiveReason {
    /// Its value is read in reachable code.
    Read,
    /// Its address is taken (`&e.m`).
    AddressTaken,
    /// A pointer-to-member `&C::m` names it.
    PointerToMember,
    /// An unsafe type cast forced all members of its containing type live.
    UnsafeCast,
    /// A live member of the same union forced it live.
    UnionPropagation,
    /// It is `volatile` and written (the paper's footnote-1 exception).
    VolatileWrite,
    /// A conservative `sizeof` forced it live.
    Sizeof,
}

impl fmt::Display for LiveReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LiveReason::Read => "read",
            LiveReason::AddressTaken => "address taken",
            LiveReason::PointerToMember => "pointer-to-member",
            LiveReason::UnsafeCast => "unsafe cast",
            LiveReason::UnionPropagation => "union propagation",
            LiveReason::VolatileWrite => "volatile write",
            LiveReason::Sizeof => "sizeof",
        })
    }
}

/// The provenance of one live mark: which step of the analysis induced
/// it. Like [`LiveReason`], the *first* origin is recorded, so the walk
/// and summary engines — which fire marks in the same order — record
/// identical origins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Origin {
    /// A direct access (read / address-taken / volatile write /
    /// pointer-to-member) in `func`; `None` means the global
    /// initializers, which run unconditionally before `main`.
    Access {
        /// The accessing function, or `None` for global initializers.
        func: Option<FuncId>,
    },
    /// Swept up by a `MarkAllContainedMembers` expansion (unsafe cast or
    /// conservative `sizeof`) triggered in `func` on `root`; the member
    /// is contained in `root`.
    MarkAll {
        /// The triggering function, or `None` for global initializers.
        func: Option<FuncId>,
        /// The class whose containment closure was expanded.
        root: ClassId,
    },
    /// Livened by the union fixpoint: `via` — the smallest live member
    /// in `root`'s containment closure at the time the rule fired — made
    /// union `root`'s contents live.
    Union {
        /// The union class the rule fired on.
        root: ClassId,
        /// A live member that justified firing the rule.
        via: MemberRef,
    },
}

/// The per-member classification produced by the analysis.
///
/// Every data member of the program is either *live* (with a
/// [`LiveReason`]) or *dead*. Members of library classes are neither: they
/// cannot be classified without the library source (§3.3) and are reported
/// separately.
///
/// # Examples
///
/// ```
/// use ddm_core::{Liveness, LiveReason};
/// use ddm_hierarchy::{ClassId, MemberRef};
///
/// let mut liveness = Liveness::new();
/// let m = MemberRef::new(ClassId::from_index(0), 0);
/// assert!(liveness.is_dead(m)); // everything starts dead (Figure 2, line 3)
/// liveness.mark_live(m, LiveReason::Read);
/// assert_eq!(liveness.reason(m), Some(LiveReason::Read));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Liveness {
    live: BTreeMap<MemberRef, LiveReason>,
    unclassifiable: std::collections::BTreeSet<MemberRef>,
    /// First-wins provenance per live member (see [`Origin`]). Populated
    /// by [`Liveness::mark_live_from`]; like the dense accelerator, it is
    /// excluded from equality — the classification is live/dead/reason.
    origins: BTreeMap<MemberRef, Origin>,
    /// Optional dense accelerator (see [`Liveness::with_member_index`]).
    /// Kept in sync with `live`; not part of the classification itself.
    dense: Option<DenseLive>,
}

/// The dense program-wide live set: a bitset keyed by the member index,
/// answering `is_live`/`mark_live` membership in O(1) so the hot marking
/// path skips the ordered map for repeat accesses.
#[derive(Debug, Clone)]
struct DenseLive {
    index: MemberIndex,
    bits: MemberBitSet,
}

/// Equality is over the *classification* — live members with reasons and
/// the unclassifiable set. The dense accelerator is an implementation
/// detail and never observable: a map-backed and an index-backed
/// `Liveness` that classify identically compare equal.
impl PartialEq for Liveness {
    fn eq(&self, other: &Self) -> bool {
        self.live == other.live && self.unclassifiable == other.unclassifiable
    }
}

impl Eq for Liveness {}

impl Liveness {
    /// Creates an empty classification (everything dead), the algorithm's
    /// starting state.
    pub fn new() -> Self {
        Liveness::default()
    }

    /// Creates an empty classification backed by a dense program-wide
    /// member bitset: membership tests and repeat marks become single bit
    /// operations, and only first marks touch the ordered reason map
    /// (which is retained for first-reason-wins reporting).
    pub fn with_member_index(index: MemberIndex) -> Self {
        Liveness {
            live: BTreeMap::new(),
            unclassifiable: std::collections::BTreeSet::new(),
            origins: BTreeMap::new(),
            dense: Some(DenseLive {
                bits: MemberBitSet::with_capacity(index.len()),
                index,
            }),
        }
    }

    /// Marks `member` live for `reason` (keeps the first reason).
    /// Returns true if the member was previously dead.
    pub fn mark_live(&mut self, member: MemberRef, reason: LiveReason) -> bool {
        if let Some(d) = &mut self.dense {
            if let Some(id) = d.index.id_of(member) {
                if !d.bits.insert(id) {
                    return false;
                }
                self.live.insert(member, reason);
                return true;
            }
        }
        match self.live.entry(member) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(reason);
                true
            }
            std::collections::btree_map::Entry::Occupied(_) => false,
        }
    }

    /// [`Liveness::mark_live`] with provenance: records `origin` for the
    /// member's *first* mark (the same first-wins rule as the reason).
    pub fn mark_live_from(&mut self, member: MemberRef, reason: LiveReason, origin: Origin) -> bool {
        if self.mark_live(member, reason) {
            self.origins.insert(member, origin);
            true
        } else {
            false
        }
    }

    /// The recorded provenance of a live member, when the marking path
    /// supplied one.
    pub fn origin(&self, member: MemberRef) -> Option<Origin> {
        self.origins.get(&member).copied()
    }

    /// Marks `member` as unclassifiable (library class member).
    pub fn mark_unclassifiable(&mut self, member: MemberRef) {
        self.unclassifiable.insert(member);
    }

    /// Merges another classification into this one; the reduction step of
    /// the sharded analysis. Returns true if anything changed.
    ///
    /// Liveness marking is a monotone union: the merged live and
    /// unclassifiable sets are the set unions of both sides, so `merge`
    /// is **commutative and idempotent on the classification** (which
    /// members are live / dead / unclassifiable) and **monotone** (it
    /// never un-livens a member). Recorded [`LiveReason`]s keep the
    /// paper's first-reason-wins rule: when both sides marked the same
    /// member, the *receiver's* reason is kept, so merging worker deltas
    /// in shard order reproduces exactly the reasons the sequential scan
    /// records.
    pub fn merge(&mut self, other: &Liveness) -> bool {
        let mut changed = false;
        for (&m, &r) in &other.live {
            if self.mark_live(m, r) {
                changed = true;
                // The first shard to mark a member also contributes its
                // provenance, keeping origins first-wins like reasons.
                if let Some(&o) = other.origins.get(&m) {
                    self.origins.insert(m, o);
                }
            }
        }
        for &m in &other.unclassifiable {
            changed |= self.unclassifiable.insert(m);
        }
        changed
    }

    /// Whether `member` was marked live.
    pub fn is_live(&self, member: MemberRef) -> bool {
        if let Some(d) = &self.dense {
            if let Some(id) = d.index.id_of(member) {
                return d.bits.contains(id);
            }
        }
        self.live.contains_key(&member)
    }

    /// Whether `member` is dead (not live and classifiable).
    pub fn is_dead(&self, member: MemberRef) -> bool {
        !self.is_live(member) && !self.unclassifiable.contains(&member)
    }

    /// Whether `member` belongs to a library class (unclassifiable).
    pub fn is_unclassifiable(&self, member: MemberRef) -> bool {
        self.unclassifiable.contains(&member)
    }

    /// The recorded reason for a live member.
    pub fn reason(&self, member: MemberRef) -> Option<LiveReason> {
        self.live.get(&member).copied()
    }

    /// Number of live members.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Iterates over live members with their reasons.
    pub fn live_members(&self) -> impl Iterator<Item = (MemberRef, LiveReason)> + '_ {
        self.live.iter().map(|(&m, &r)| (m, r))
    }

    /// Decomposes the classification into plain sorted lists for
    /// snapshot serialization. Lossless up to the dense accelerator
    /// (re-attachable via [`Liveness::from_parts`]).
    pub fn to_parts(&self) -> LivenessParts {
        LivenessParts {
            live: self.live.iter().map(|(&m, &r)| (m, r)).collect(),
            unclassifiable: self.unclassifiable.iter().copied().collect(),
            origins: self.origins.iter().map(|(&m, &o)| (m, o)).collect(),
        }
    }

    /// Rebuilds a classification from [`Liveness::to_parts`] output,
    /// optionally re-attaching a dense accelerator. The rebuilt value
    /// compares equal to the original and answers [`Liveness::origin`]
    /// identically — everything the debug cross-check and the report
    /// observe.
    pub fn from_parts(parts: &LivenessParts, index: Option<MemberIndex>) -> Liveness {
        let mut l = match index {
            Some(ix) => Liveness::with_member_index(ix),
            None => Liveness::new(),
        };
        for &(m, r) in &parts.live {
            l.mark_live(m, r);
        }
        for &m in &parts.unclassifiable {
            l.mark_unclassifiable(m);
        }
        for &(m, o) in &parts.origins {
            l.origins.insert(m, o);
        }
        l
    }

    /// All dead members of `program`, in declaration order.
    pub fn dead_members<'a>(&'a self, program: &'a Program) -> Vec<MemberRef> {
        let mut out = Vec::new();
        for (cid, class) in program.classes() {
            for idx in 0..class.members.len() {
                let m = MemberRef::new(cid, idx);
                if self.is_dead(m) {
                    out.push(m);
                }
            }
        }
        out
    }
}

/// The serializable decomposition of a [`Liveness`] (sorted lists,
/// deterministic for equal classifications).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LivenessParts {
    /// Live members with their first-wins reasons, ascending.
    pub live: Vec<(MemberRef, LiveReason)>,
    /// Unclassifiable (library) members, ascending.
    pub unclassifiable: Vec<MemberRef>,
    /// Recorded first-wins provenance, ascending by member.
    pub origins: Vec<(MemberRef, Origin)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddm_hierarchy::ClassId;

    fn mref(c: usize, i: usize) -> MemberRef {
        MemberRef::new(ClassId::from_index(c), i)
    }

    #[test]
    fn first_reason_wins() {
        let mut l = Liveness::new();
        assert!(l.mark_live(mref(0, 0), LiveReason::Read));
        assert!(!l.mark_live(mref(0, 0), LiveReason::UnsafeCast));
        assert_eq!(l.reason(mref(0, 0)), Some(LiveReason::Read));
    }

    #[test]
    fn dead_until_marked() {
        let mut l = Liveness::new();
        assert!(l.is_dead(mref(1, 2)));
        l.mark_live(mref(1, 2), LiveReason::AddressTaken);
        assert!(l.is_live(mref(1, 2)));
        assert!(!l.is_dead(mref(1, 2)));
        assert_eq!(l.live_count(), 1);
    }

    #[test]
    fn unclassifiable_is_neither_live_nor_dead() {
        let mut l = Liveness::new();
        l.mark_unclassifiable(mref(2, 0));
        assert!(!l.is_live(mref(2, 0)));
        assert!(!l.is_dead(mref(2, 0)));
        assert!(l.is_unclassifiable(mref(2, 0)));
    }

    #[test]
    fn merge_is_commutative_on_the_classification() {
        let mut a = Liveness::new();
        a.mark_live(mref(0, 0), LiveReason::Read);
        a.mark_live(mref(0, 1), LiveReason::Sizeof);
        a.mark_unclassifiable(mref(3, 0));
        let mut b = Liveness::new();
        b.mark_live(mref(0, 1), LiveReason::UnsafeCast);
        b.mark_live(mref(2, 0), LiveReason::AddressTaken);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        // Same classification either way...
        for m in [mref(0, 0), mref(0, 1), mref(2, 0), mref(3, 0), mref(9, 9)] {
            assert_eq!(ab.is_live(m), ba.is_live(m), "{m:?}");
            assert_eq!(ab.is_dead(m), ba.is_dead(m), "{m:?}");
            assert_eq!(ab.is_unclassifiable(m), ba.is_unclassifiable(m), "{m:?}");
        }
        assert_eq!(ab.live_count(), ba.live_count());
        // ...while the recorded reason keeps the receiver's (first) mark.
        assert_eq!(ab.reason(mref(0, 1)), Some(LiveReason::Sizeof));
        assert_eq!(ba.reason(mref(0, 1)), Some(LiveReason::UnsafeCast));
    }

    #[test]
    fn merge_is_idempotent() {
        let mut a = Liveness::new();
        a.mark_live(mref(1, 0), LiveReason::Read);
        a.mark_live(mref(1, 1), LiveReason::VolatileWrite);
        a.mark_unclassifiable(mref(2, 0));
        let snapshot = a.clone();
        assert!(!a.merge(&snapshot), "self-merge must be a no-op");
        assert_eq!(a, snapshot);
        // A second application of the same delta changes nothing either.
        let mut target = Liveness::new();
        assert!(target.merge(&snapshot));
        assert!(!target.merge(&snapshot));
        assert_eq!(target, snapshot);
    }

    #[test]
    fn merge_is_monotone_never_unlivens() {
        let mut a = Liveness::new();
        a.mark_live(mref(0, 0), LiveReason::Read);
        a.mark_live(mref(4, 2), LiveReason::PointerToMember);
        let before: Vec<_> = a.live_members().collect();
        a.merge(&Liveness::new()); // empty delta
        let mut b = Liveness::new();
        b.mark_live(mref(5, 0), LiveReason::UnionPropagation);
        a.merge(&b);
        for (m, r) in before {
            assert!(a.is_live(m), "merge un-livened {m:?}");
            assert_eq!(a.reason(m), Some(r), "merge rewrote the reason of {m:?}");
        }
        assert!(a.is_live(mref(5, 0)));
    }

    #[test]
    fn merge_reports_whether_anything_changed() {
        let mut a = Liveness::new();
        let mut b = Liveness::new();
        b.mark_live(mref(0, 0), LiveReason::Read);
        assert!(a.merge(&b));
        assert!(!a.merge(&b));
        let mut c = Liveness::new();
        c.mark_unclassifiable(mref(0, 1));
        assert!(a.merge(&c));
        assert!(!a.merge(&c));
    }

    #[test]
    fn dense_backed_liveness_is_indistinguishable_from_map_backed() {
        let tu = ddm_cppfront::parse(
            "class A { public: int a0; int a1; };\n\
             class B { public: int b0; };\n\
             int main() { return 0; }",
        )
        .unwrap();
        let program = Program::build(&tu).unwrap();
        let mut dense = Liveness::with_member_index(MemberIndex::new(&program));
        let mut map = Liveness::new();
        for l in [&mut dense, &mut map] {
            assert!(l.mark_live(mref(0, 0), LiveReason::Read));
            assert!(!l.mark_live(mref(0, 0), LiveReason::Sizeof), "first wins");
            assert!(l.mark_live(mref(1, 0), LiveReason::AddressTaken));
            l.mark_unclassifiable(mref(0, 1));
            // A ref outside the indexed program falls back to the map.
            assert!(l.mark_live(mref(9, 9), LiveReason::UnsafeCast));
            assert!(l.is_live(mref(9, 9)));
        }
        assert_eq!(dense, map, "accelerator must not be observable");
        assert_eq!(dense.reason(mref(0, 0)), Some(LiveReason::Read));
        assert!(dense.is_live(mref(0, 0)));
        assert!(dense.is_dead(mref(0, 1)) == map.is_dead(mref(0, 1)));
        assert_eq!(dense.live_count(), map.live_count());
        assert_eq!(
            dense.live_members().collect::<Vec<_>>(),
            map.live_members().collect::<Vec<_>>()
        );
        assert_eq!(dense.dead_members(&program), map.dead_members(&program));
        // Merging into a dense-backed set keeps both views in sync.
        let mut delta = Liveness::new();
        delta.mark_live(mref(0, 1), LiveReason::VolatileWrite);
        assert!(dense.merge(&delta));
        assert!(dense.is_live(mref(0, 1)));
        assert!(!dense.merge(&delta));
    }

    #[test]
    fn origin_is_first_wins_and_survives_merge() {
        let f = FuncId::from_index(3);
        let mut a = Liveness::new();
        assert!(a.mark_live_from(mref(0, 0), LiveReason::Read, Origin::Access { func: Some(f) }));
        assert!(!a.mark_live_from(
            mref(0, 0),
            LiveReason::UnsafeCast,
            Origin::MarkAll {
                func: None,
                root: ClassId::from_index(0)
            }
        ));
        assert_eq!(a.origin(mref(0, 0)), Some(Origin::Access { func: Some(f) }));
        // Merge carries provenance for fresh members, keeps it for known
        // ones.
        let mut b = Liveness::new();
        b.mark_live_from(mref(0, 0), LiveReason::Read, Origin::Access { func: None });
        b.mark_live_from(mref(1, 0), LiveReason::Read, Origin::Access { func: None });
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(
            merged.origin(mref(0, 0)),
            Some(Origin::Access { func: Some(f) })
        );
        assert_eq!(merged.origin(mref(1, 0)), Some(Origin::Access { func: None }));
        // Plain mark_live records no origin; classification-equality
        // ignores origins either way.
        let mut plain = Liveness::new();
        plain.mark_live(mref(0, 0), LiveReason::Read);
        assert_eq!(plain.origin(mref(0, 0)), None);
        assert_eq!(plain, a);
    }

    #[test]
    fn parts_roundtrip_preserves_classification_and_origins() {
        let f = FuncId::from_index(2);
        let mut l = Liveness::new();
        l.mark_live_from(mref(0, 0), LiveReason::Read, Origin::Access { func: Some(f) });
        l.mark_live(mref(0, 1), LiveReason::Sizeof);
        l.mark_live_from(
            mref(1, 0),
            LiveReason::UnionPropagation,
            Origin::Union {
                root: ClassId::from_index(1),
                via: mref(1, 1),
            },
        );
        l.mark_unclassifiable(mref(3, 0));
        let parts = l.to_parts();
        let back = Liveness::from_parts(&parts, None);
        assert_eq!(back, l);
        assert_eq!(back.to_parts(), parts, "roundtrip is a fixpoint");
        assert_eq!(back.origin(mref(0, 0)), l.origin(mref(0, 0)));
        assert_eq!(back.origin(mref(0, 1)), None);
        assert_eq!(back.origin(mref(1, 0)), l.origin(mref(1, 0)));
        // Dense-backed rebuild is classification-identical too.
        let tu = ddm_cppfront::parse(
            "class A { public: int a0; int a1; };\nclass B { public: int b0; int b1; };\nint main() { return 0; }",
        )
        .unwrap();
        let program = Program::build(&tu).unwrap();
        let dense = Liveness::from_parts(&parts, Some(MemberIndex::new(&program)));
        assert_eq!(dense, l);
        assert!(dense.is_live(mref(0, 0)));
    }

    #[test]
    fn reasons_display() {
        for r in [
            LiveReason::Read,
            LiveReason::AddressTaken,
            LiveReason::PointerToMember,
            LiveReason::UnsafeCast,
            LiveReason::UnionPropagation,
            LiveReason::VolatileWrite,
            LiveReason::Sizeof,
        ] {
            assert!(!r.to_string().is_empty());
        }
    }
}
