//! Liveness classification results.

use ddm_hierarchy::{MemberRef, Program};
use std::collections::BTreeMap;
use std::fmt;

/// Why a data member was classified live. The *first* reason found is
/// recorded (the algorithm is monotone, so any reason suffices).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LiveReason {
    /// Its value is read in reachable code.
    Read,
    /// Its address is taken (`&e.m`).
    AddressTaken,
    /// A pointer-to-member `&C::m` names it.
    PointerToMember,
    /// An unsafe type cast forced all members of its containing type live.
    UnsafeCast,
    /// A live member of the same union forced it live.
    UnionPropagation,
    /// It is `volatile` and written (the paper's footnote-1 exception).
    VolatileWrite,
    /// A conservative `sizeof` forced it live.
    Sizeof,
}

impl fmt::Display for LiveReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LiveReason::Read => "read",
            LiveReason::AddressTaken => "address taken",
            LiveReason::PointerToMember => "pointer-to-member",
            LiveReason::UnsafeCast => "unsafe cast",
            LiveReason::UnionPropagation => "union propagation",
            LiveReason::VolatileWrite => "volatile write",
            LiveReason::Sizeof => "sizeof",
        })
    }
}

/// The per-member classification produced by the analysis.
///
/// Every data member of the program is either *live* (with a
/// [`LiveReason`]) or *dead*. Members of library classes are neither: they
/// cannot be classified without the library source (§3.3) and are reported
/// separately.
///
/// # Examples
///
/// ```
/// use ddm_core::{Liveness, LiveReason};
/// use ddm_hierarchy::{ClassId, MemberRef};
///
/// let mut liveness = Liveness::new();
/// let m = MemberRef::new(ClassId::from_index(0), 0);
/// assert!(liveness.is_dead(m)); // everything starts dead (Figure 2, line 3)
/// liveness.mark_live(m, LiveReason::Read);
/// assert_eq!(liveness.reason(m), Some(LiveReason::Read));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Liveness {
    live: BTreeMap<MemberRef, LiveReason>,
    unclassifiable: std::collections::BTreeSet<MemberRef>,
}

impl Liveness {
    /// Creates an empty classification (everything dead), the algorithm's
    /// starting state.
    pub fn new() -> Self {
        Liveness::default()
    }

    /// Marks `member` live for `reason` (keeps the first reason).
    /// Returns true if the member was previously dead.
    pub fn mark_live(&mut self, member: MemberRef, reason: LiveReason) -> bool {
        match self.live.entry(member) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(reason);
                true
            }
            std::collections::btree_map::Entry::Occupied(_) => false,
        }
    }

    /// Marks `member` as unclassifiable (library class member).
    pub fn mark_unclassifiable(&mut self, member: MemberRef) {
        self.unclassifiable.insert(member);
    }

    /// Whether `member` was marked live.
    pub fn is_live(&self, member: MemberRef) -> bool {
        self.live.contains_key(&member)
    }

    /// Whether `member` is dead (not live and classifiable).
    pub fn is_dead(&self, member: MemberRef) -> bool {
        !self.live.contains_key(&member) && !self.unclassifiable.contains(&member)
    }

    /// Whether `member` belongs to a library class (unclassifiable).
    pub fn is_unclassifiable(&self, member: MemberRef) -> bool {
        self.unclassifiable.contains(&member)
    }

    /// The recorded reason for a live member.
    pub fn reason(&self, member: MemberRef) -> Option<LiveReason> {
        self.live.get(&member).copied()
    }

    /// Number of live members.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Iterates over live members with their reasons.
    pub fn live_members(&self) -> impl Iterator<Item = (MemberRef, LiveReason)> + '_ {
        self.live.iter().map(|(&m, &r)| (m, r))
    }

    /// All dead members of `program`, in declaration order.
    pub fn dead_members<'a>(&'a self, program: &'a Program) -> Vec<MemberRef> {
        let mut out = Vec::new();
        for (cid, class) in program.classes() {
            for idx in 0..class.members.len() {
                let m = MemberRef::new(cid, idx);
                if self.is_dead(m) {
                    out.push(m);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddm_hierarchy::ClassId;

    fn mref(c: usize, i: usize) -> MemberRef {
        MemberRef::new(ClassId::from_index(c), i)
    }

    #[test]
    fn first_reason_wins() {
        let mut l = Liveness::new();
        assert!(l.mark_live(mref(0, 0), LiveReason::Read));
        assert!(!l.mark_live(mref(0, 0), LiveReason::UnsafeCast));
        assert_eq!(l.reason(mref(0, 0)), Some(LiveReason::Read));
    }

    #[test]
    fn dead_until_marked() {
        let mut l = Liveness::new();
        assert!(l.is_dead(mref(1, 2)));
        l.mark_live(mref(1, 2), LiveReason::AddressTaken);
        assert!(l.is_live(mref(1, 2)));
        assert!(!l.is_dead(mref(1, 2)));
        assert_eq!(l.live_count(), 1);
    }

    #[test]
    fn unclassifiable_is_neither_live_nor_dead() {
        let mut l = Liveness::new();
        l.mark_unclassifiable(mref(2, 0));
        assert!(!l.is_live(mref(2, 0)));
        assert!(!l.is_dead(mref(2, 0)));
        assert!(l.is_unclassifiable(mref(2, 0)));
    }

    #[test]
    fn reasons_display() {
        for r in [
            LiveReason::Read,
            LiveReason::AddressTaken,
            LiveReason::PointerToMember,
            LiveReason::UnsafeCast,
            LiveReason::UnionPropagation,
            LiveReason::VolatileWrite,
            LiveReason::Sizeof,
        ] {
            assert!(!r.to_string().is_empty());
        }
    }
}
