//! Liveness classification results.

use ddm_hierarchy::{MemberRef, Program};
use std::collections::BTreeMap;
use std::fmt;

/// Why a data member was classified live. The *first* reason found is
/// recorded (the algorithm is monotone, so any reason suffices).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LiveReason {
    /// Its value is read in reachable code.
    Read,
    /// Its address is taken (`&e.m`).
    AddressTaken,
    /// A pointer-to-member `&C::m` names it.
    PointerToMember,
    /// An unsafe type cast forced all members of its containing type live.
    UnsafeCast,
    /// A live member of the same union forced it live.
    UnionPropagation,
    /// It is `volatile` and written (the paper's footnote-1 exception).
    VolatileWrite,
    /// A conservative `sizeof` forced it live.
    Sizeof,
}

impl fmt::Display for LiveReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LiveReason::Read => "read",
            LiveReason::AddressTaken => "address taken",
            LiveReason::PointerToMember => "pointer-to-member",
            LiveReason::UnsafeCast => "unsafe cast",
            LiveReason::UnionPropagation => "union propagation",
            LiveReason::VolatileWrite => "volatile write",
            LiveReason::Sizeof => "sizeof",
        })
    }
}

/// The per-member classification produced by the analysis.
///
/// Every data member of the program is either *live* (with a
/// [`LiveReason`]) or *dead*. Members of library classes are neither: they
/// cannot be classified without the library source (§3.3) and are reported
/// separately.
///
/// # Examples
///
/// ```
/// use ddm_core::{Liveness, LiveReason};
/// use ddm_hierarchy::{ClassId, MemberRef};
///
/// let mut liveness = Liveness::new();
/// let m = MemberRef::new(ClassId::from_index(0), 0);
/// assert!(liveness.is_dead(m)); // everything starts dead (Figure 2, line 3)
/// liveness.mark_live(m, LiveReason::Read);
/// assert_eq!(liveness.reason(m), Some(LiveReason::Read));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Liveness {
    live: BTreeMap<MemberRef, LiveReason>,
    unclassifiable: std::collections::BTreeSet<MemberRef>,
}

impl Liveness {
    /// Creates an empty classification (everything dead), the algorithm's
    /// starting state.
    pub fn new() -> Self {
        Liveness::default()
    }

    /// Marks `member` live for `reason` (keeps the first reason).
    /// Returns true if the member was previously dead.
    pub fn mark_live(&mut self, member: MemberRef, reason: LiveReason) -> bool {
        match self.live.entry(member) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(reason);
                true
            }
            std::collections::btree_map::Entry::Occupied(_) => false,
        }
    }

    /// Marks `member` as unclassifiable (library class member).
    pub fn mark_unclassifiable(&mut self, member: MemberRef) {
        self.unclassifiable.insert(member);
    }

    /// Merges another classification into this one; the reduction step of
    /// the sharded analysis. Returns true if anything changed.
    ///
    /// Liveness marking is a monotone union: the merged live and
    /// unclassifiable sets are the set unions of both sides, so `merge`
    /// is **commutative and idempotent on the classification** (which
    /// members are live / dead / unclassifiable) and **monotone** (it
    /// never un-livens a member). Recorded [`LiveReason`]s keep the
    /// paper's first-reason-wins rule: when both sides marked the same
    /// member, the *receiver's* reason is kept, so merging worker deltas
    /// in shard order reproduces exactly the reasons the sequential scan
    /// records.
    pub fn merge(&mut self, other: &Liveness) -> bool {
        let mut changed = false;
        for (&m, &r) in &other.live {
            changed |= self.mark_live(m, r);
        }
        for &m in &other.unclassifiable {
            changed |= self.unclassifiable.insert(m);
        }
        changed
    }

    /// Whether `member` was marked live.
    pub fn is_live(&self, member: MemberRef) -> bool {
        self.live.contains_key(&member)
    }

    /// Whether `member` is dead (not live and classifiable).
    pub fn is_dead(&self, member: MemberRef) -> bool {
        !self.live.contains_key(&member) && !self.unclassifiable.contains(&member)
    }

    /// Whether `member` belongs to a library class (unclassifiable).
    pub fn is_unclassifiable(&self, member: MemberRef) -> bool {
        self.unclassifiable.contains(&member)
    }

    /// The recorded reason for a live member.
    pub fn reason(&self, member: MemberRef) -> Option<LiveReason> {
        self.live.get(&member).copied()
    }

    /// Number of live members.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Iterates over live members with their reasons.
    pub fn live_members(&self) -> impl Iterator<Item = (MemberRef, LiveReason)> + '_ {
        self.live.iter().map(|(&m, &r)| (m, r))
    }

    /// All dead members of `program`, in declaration order.
    pub fn dead_members<'a>(&'a self, program: &'a Program) -> Vec<MemberRef> {
        let mut out = Vec::new();
        for (cid, class) in program.classes() {
            for idx in 0..class.members.len() {
                let m = MemberRef::new(cid, idx);
                if self.is_dead(m) {
                    out.push(m);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddm_hierarchy::ClassId;

    fn mref(c: usize, i: usize) -> MemberRef {
        MemberRef::new(ClassId::from_index(c), i)
    }

    #[test]
    fn first_reason_wins() {
        let mut l = Liveness::new();
        assert!(l.mark_live(mref(0, 0), LiveReason::Read));
        assert!(!l.mark_live(mref(0, 0), LiveReason::UnsafeCast));
        assert_eq!(l.reason(mref(0, 0)), Some(LiveReason::Read));
    }

    #[test]
    fn dead_until_marked() {
        let mut l = Liveness::new();
        assert!(l.is_dead(mref(1, 2)));
        l.mark_live(mref(1, 2), LiveReason::AddressTaken);
        assert!(l.is_live(mref(1, 2)));
        assert!(!l.is_dead(mref(1, 2)));
        assert_eq!(l.live_count(), 1);
    }

    #[test]
    fn unclassifiable_is_neither_live_nor_dead() {
        let mut l = Liveness::new();
        l.mark_unclassifiable(mref(2, 0));
        assert!(!l.is_live(mref(2, 0)));
        assert!(!l.is_dead(mref(2, 0)));
        assert!(l.is_unclassifiable(mref(2, 0)));
    }

    #[test]
    fn merge_is_commutative_on_the_classification() {
        let mut a = Liveness::new();
        a.mark_live(mref(0, 0), LiveReason::Read);
        a.mark_live(mref(0, 1), LiveReason::Sizeof);
        a.mark_unclassifiable(mref(3, 0));
        let mut b = Liveness::new();
        b.mark_live(mref(0, 1), LiveReason::UnsafeCast);
        b.mark_live(mref(2, 0), LiveReason::AddressTaken);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        // Same classification either way...
        for m in [mref(0, 0), mref(0, 1), mref(2, 0), mref(3, 0), mref(9, 9)] {
            assert_eq!(ab.is_live(m), ba.is_live(m), "{m:?}");
            assert_eq!(ab.is_dead(m), ba.is_dead(m), "{m:?}");
            assert_eq!(ab.is_unclassifiable(m), ba.is_unclassifiable(m), "{m:?}");
        }
        assert_eq!(ab.live_count(), ba.live_count());
        // ...while the recorded reason keeps the receiver's (first) mark.
        assert_eq!(ab.reason(mref(0, 1)), Some(LiveReason::Sizeof));
        assert_eq!(ba.reason(mref(0, 1)), Some(LiveReason::UnsafeCast));
    }

    #[test]
    fn merge_is_idempotent() {
        let mut a = Liveness::new();
        a.mark_live(mref(1, 0), LiveReason::Read);
        a.mark_live(mref(1, 1), LiveReason::VolatileWrite);
        a.mark_unclassifiable(mref(2, 0));
        let snapshot = a.clone();
        assert!(!a.merge(&snapshot), "self-merge must be a no-op");
        assert_eq!(a, snapshot);
        // A second application of the same delta changes nothing either.
        let mut target = Liveness::new();
        assert!(target.merge(&snapshot));
        assert!(!target.merge(&snapshot));
        assert_eq!(target, snapshot);
    }

    #[test]
    fn merge_is_monotone_never_unlivens() {
        let mut a = Liveness::new();
        a.mark_live(mref(0, 0), LiveReason::Read);
        a.mark_live(mref(4, 2), LiveReason::PointerToMember);
        let before: Vec<_> = a.live_members().collect();
        a.merge(&Liveness::new()); // empty delta
        let mut b = Liveness::new();
        b.mark_live(mref(5, 0), LiveReason::UnionPropagation);
        a.merge(&b);
        for (m, r) in before {
            assert!(a.is_live(m), "merge un-livened {m:?}");
            assert_eq!(a.reason(m), Some(r), "merge rewrote the reason of {m:?}");
        }
        assert!(a.is_live(mref(5, 0)));
    }

    #[test]
    fn merge_reports_whether_anything_changed() {
        let mut a = Liveness::new();
        let mut b = Liveness::new();
        b.mark_live(mref(0, 0), LiveReason::Read);
        assert!(a.merge(&b));
        assert!(!a.merge(&b));
        let mut c = Liveness::new();
        c.mark_unclassifiable(mref(0, 1));
        assert!(a.merge(&c));
        assert!(!a.merge(&c));
    }

    #[test]
    fn reasons_display() {
        for r in [
            LiveReason::Read,
            LiveReason::AddressTaken,
            LiveReason::PointerToMember,
            LiveReason::UnsafeCast,
            LiveReason::UnionPropagation,
            LiveReason::VolatileWrite,
            LiveReason::Sizeof,
        ] {
            assert!(!r.to_string().is_empty());
        }
    }
}
