//! Liveness provenance: renders, for one data member, *why* the analysis
//! classified it the way it did — the `--explain Class::member` feature.
//!
//! A live member's explanation is a witness chain: the [`Origin`] recorded
//! at its first (winning) mark, plus the shortest call-graph path from
//! `main` to the function containing the inducing access. Every input to
//! the rendering — origins, reasons, the call graph — is bit-identical
//! across the walking and summary engines and across `--jobs` values, so
//! the explanation text is too.

use crate::liveness::{LiveReason, Liveness, Origin};
use ddm_callgraph::CallGraph;
use ddm_hierarchy::{FuncId, MemberRef, Program};
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;

/// Why an `--explain` spec could not be answered. The two variants are
/// the client-facing distinction daemon consumers need: a
/// [`ExplainError::BadRequest`] is a malformed query (fix the request),
/// a [`ExplainError::NotFound`] is a well-formed query that names
/// nothing in the program (fix the name, or the program changed). The
/// rendered messages are stable — tests pin them — and distinct between
/// the variants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExplainError {
    /// The spec itself is malformed (no `::` separator).
    BadRequest(String),
    /// The spec parses, but the class or member does not exist.
    NotFound(String),
}

impl ExplainError {
    /// The stable message text (what [`fmt::Display`] renders).
    pub fn message(&self) -> &str {
        match self {
            ExplainError::BadRequest(m) | ExplainError::NotFound(m) => m,
        }
    }

    /// The protocol error-kind tag serve mode reports
    /// (`"bad_request"` / `"not_found"`).
    pub fn kind(&self) -> &'static str {
        match self {
            ExplainError::BadRequest(_) => "bad_request",
            ExplainError::NotFound(_) => "not_found",
        }
    }
}

impl fmt::Display for ExplainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.message())
    }
}

impl std::error::Error for ExplainError {}

/// The shortest path `main -> ... -> target` in the call graph, or `None`
/// when `target` is reachable only by a conservative root assumption
/// (virtual method of a library-instantiated class, address-taken
/// function) rather than by calls from `main`.
///
/// Breadth-first over [`CallGraph::callees`], whose iteration order is
/// the deterministic `FuncId` order — ties between equal-length paths
/// always break the same way.
pub fn witness_path(program: &Program, callgraph: &CallGraph, target: FuncId) -> Option<Vec<FuncId>> {
    let main = program.main_function()?;
    if !callgraph.is_reachable(target) {
        return None;
    }
    let mut pred: HashMap<FuncId, FuncId> = HashMap::new();
    let mut queue = VecDeque::from([main]);
    let mut seen: HashSet<FuncId> = HashSet::from([main]);
    while let Some(f) = queue.pop_front() {
        if f == target {
            let mut path = vec![target];
            let mut cur = target;
            while let Some(&p) = pred.get(&cur) {
                path.push(p);
                cur = p;
            }
            path.reverse();
            return Some(path);
        }
        for callee in callgraph.callees(f) {
            if seen.insert(callee) {
                pred.insert(callee, f);
                queue.push_back(callee);
            }
        }
    }
    None
}

/// Explains the classification of the member named by `spec`
/// (`Class::member`).
///
/// # Errors
///
/// [`ExplainError::BadRequest`] when `spec` is not of the form
/// `Class::member`; [`ExplainError::NotFound`] when it is but names no
/// class or data member of `program`.
pub fn explain(
    program: &Program,
    callgraph: &CallGraph,
    liveness: &Liveness,
    spec: &str,
) -> Result<String, ExplainError> {
    let member = resolve_spec(program, spec)?;
    let label = member_label(program, member);
    let mut out = String::new();

    if liveness.is_unclassifiable(member) {
        out.push_str(&format!(
            "{label}: UNCLASSIFIABLE\n  member of library class {}, whose source is unavailable; \
             the analysis cannot prove it dead (§3.3)\n",
            program.class(member.class).name
        ));
        return Ok(out);
    }
    if !liveness.is_live(member) {
        out.push_str(&format!(
            "{label}: DEAD\n  never read, address-taken, or otherwise livened in code reachable \
             from main\n"
        ));
        return Ok(out);
    }

    let reason = liveness
        .reason(member)
        .expect("live member always has a reason");
    out.push_str(&format!("{label}: LIVE ({reason})\n"));
    let mut seen = HashSet::from([member]);
    explain_origin(program, callgraph, liveness, member, reason, 1, &mut seen, &mut out);
    Ok(out)
}

/// Appends the explanation of one member's origin at `depth` (two spaces
/// of indent per level), recursing through union witnesses with `seen` as
/// the cycle guard.
#[allow(clippy::too_many_arguments)]
fn explain_origin(
    program: &Program,
    callgraph: &CallGraph,
    liveness: &Liveness,
    member: MemberRef,
    reason: LiveReason,
    depth: usize,
    seen: &mut HashSet<MemberRef>,
    out: &mut String,
) {
    let pad = "  ".repeat(depth);
    let Some(origin) = liveness.origin(member) else {
        // Unreachable for members marked by this crate's engines, but a
        // hand-built Liveness may lack provenance.
        out.push_str(&format!("{pad}(no provenance recorded)\n"));
        return;
    };
    match origin {
        Origin::Access { func } => {
            let verb = match reason {
                LiveReason::Read => "read",
                LiveReason::AddressTaken => "address taken",
                LiveReason::PointerToMember => "named by a pointer-to-member expression",
                LiveReason::VolatileWrite => "written through its volatile qualifier",
                // An Access origin only carries direct-access reasons.
                other => return out.push_str(&format!("{pad}{other} (inconsistent provenance)\n")),
            };
            out.push_str(&format!("{pad}{verb} in {}\n", site_label(program, func)));
            push_call_chain(program, callgraph, func, &pad, out);
        }
        Origin::MarkAll { func, root } => {
            let root_name = &program.class(root).name;
            let trigger = match reason {
                LiveReason::Sizeof => format!("a conservative sizeof({root_name})"),
                _ => "an unsafe cast".to_string(),
            };
            out.push_str(&format!(
                "{pad}swept live by MarkAllContainedMembers: {trigger} in {} forced every member \
                 contained in {root_name} live\n",
                site_label(program, func)
            ));
            push_call_chain(program, callgraph, func, &pad, out);
        }
        Origin::Union { root, via } => {
            let via_label = member_label(program, via);
            out.push_str(&format!(
                "{pad}livened by union propagation: union {} contains live member {via_label}, so \
                 every member it contains becomes live\n",
                program.class(root).name
            ));
            if !seen.insert(via) {
                out.push_str(&format!("{pad}  (witness {via_label} already explained above)\n"));
                return;
            }
            let Some(via_reason) = liveness.reason(via) else {
                return;
            };
            out.push_str(&format!("{pad}because {via_label} is LIVE ({via_reason}):\n"));
            explain_origin(
                program,
                callgraph,
                liveness,
                via,
                via_reason,
                depth + 1,
                seen,
                out,
            );
        }
    }
}

/// Appends the `call chain:` line for the function containing an inducing
/// access (nothing for the global initializers, which need no chain).
fn push_call_chain(
    program: &Program,
    callgraph: &CallGraph,
    func: Option<FuncId>,
    pad: &str,
    out: &mut String,
) {
    let Some(func) = func else {
        return;
    };
    match witness_path(program, callgraph, func) {
        Some(path) => {
            let chain: Vec<String> = path
                .iter()
                .map(|&f| program.func_display_name(f))
                .collect();
            out.push_str(&format!("{pad}call chain: {}\n", chain.join(" -> ")));
        }
        None => out.push_str(&format!(
            "{pad}call chain: {} (call-graph root: reachable by conservative assumption, not by \
             calls from main)\n",
            program.func_display_name(func)
        )),
    }
}

/// `<global initializers>` or the function's display name.
fn site_label(program: &Program, func: Option<FuncId>) -> String {
    match func {
        Some(f) => program.func_display_name(f),
        None => "<global initializers> (run unconditionally before main)".to_string(),
    }
}

/// `Class::member` for display.
fn member_label(program: &Program, member: MemberRef) -> String {
    let class = program.class(member.class);
    format!("{}::{}", class.name, class.members[member.index as usize].name)
}

/// Resolves a `Class::member` spec against the program.
fn resolve_spec(program: &Program, spec: &str) -> Result<MemberRef, ExplainError> {
    let (class_name, member_name) = spec.split_once("::").ok_or_else(|| {
        ExplainError::BadRequest(format!("invalid member spec '{spec}': expected Class::member"))
    })?;
    let cid = program
        .class_by_name(class_name)
        .ok_or_else(|| ExplainError::NotFound(format!("unknown class '{class_name}'")))?;
    let idx = program
        .class(cid)
        .members
        .iter()
        .position(|m| m.name == member_name)
        .ok_or_else(|| {
            ExplainError::NotFound(format!(
                "class '{class_name}' has no data member '{member_name}'"
            ))
        })?;
    Ok(MemberRef::new(cid, idx))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::AnalysisPipeline;

    fn run(src: &str) -> AnalysisPipeline {
        AnalysisPipeline::from_source(src).expect("pipeline")
    }

    fn explain_run(run: &AnalysisPipeline, spec: &str) -> String {
        explain(run.program(), run.callgraph(), run.liveness(), spec).expect("explain")
    }

    #[test]
    fn live_member_gets_chain_from_main() {
        let run = run("class A { public: int m; };\n\
             int helper(A* a) { return a->m; }\n\
             int main() { A a; return helper(&a); }");
        let text = explain_run(&run, "A::m");
        assert!(text.starts_with("A::m: LIVE (read)"), "{text}");
        assert!(text.contains("read in helper"), "{text}");
        assert!(text.contains("call chain: main -> helper"), "{text}");
    }

    #[test]
    fn dead_member_says_so() {
        let run = run("class A { public: int w; };\n\
             int main() { A a; a.w = 1; return 0; }");
        let text = explain_run(&run, "A::w");
        assert!(text.starts_with("A::w: DEAD"), "{text}");
        assert!(text.contains("never read"), "{text}");
    }

    #[test]
    fn union_explanation_recurses_to_the_witness() {
        let run = run("union U { int i; float f; };\n\
             int main() { U u; return u.i; }");
        let text = explain_run(&run, "U::f");
        assert!(text.starts_with("U::f: LIVE (union propagation)"), "{text}");
        assert!(text.contains("contains live member U::i"), "{text}");
        assert!(text.contains("because U::i is LIVE (read)"), "{text}");
        assert!(text.contains("call chain: main"), "{text}");
    }

    #[test]
    fn markall_explanation_names_the_root() {
        let run = run("class A { public: int m; };\n\
             int main() { A* a = new A(); long v = reinterpret_cast<long>(a); return 0; }");
        let text = explain_run(&run, "A::m");
        assert!(text.starts_with("A::m: LIVE (unsafe cast)"), "{text}");
        assert!(text.contains("MarkAllContainedMembers"), "{text}");
        assert!(text.contains("contained in A"), "{text}");
        assert!(text.contains("call chain: main"), "{text}");
    }

    #[test]
    fn unknown_specs_are_errors() {
        let run = run("class A { public: int m; }; int main() { A a; return a.m; }");
        assert!(explain(run.program(), run.callgraph(), run.liveness(), "A::nope").is_err());
        assert!(explain(run.program(), run.callgraph(), run.liveness(), "Nope::m").is_err());
        assert!(explain(run.program(), run.callgraph(), run.liveness(), "plain").is_err());
    }

    #[test]
    fn malformed_and_unknown_specs_are_distinct_stable_errors_in_both_engines() {
        use crate::analysis::AnalysisConfig;
        use crate::pipeline::Engine;
        use ddm_callgraph::Algorithm;

        let src = "class A { public: int m; }; int main() { A a; return a.m; }";
        for engine in [Engine::Walk, Engine::Summary] {
            let run = AnalysisPipeline::with_config_engine(
                src,
                AnalysisConfig::default(),
                Algorithm::Rta,
                1,
                engine,
            )
            .expect("pipeline");
            let at = |spec: &str| {
                explain(run.program(), run.callgraph(), run.liveness(), spec).unwrap_err()
            };

            let malformed = at("plain");
            assert_eq!(malformed.kind(), "bad_request", "engine={engine}");
            assert_eq!(
                malformed.to_string(),
                "invalid member spec 'plain': expected Class::member",
                "engine={engine}"
            );

            let no_class = at("Nope::m");
            assert_eq!(no_class.kind(), "not_found", "engine={engine}");
            assert_eq!(no_class.to_string(), "unknown class 'Nope'", "engine={engine}");

            let no_member = at("A::nope");
            assert_eq!(no_member.kind(), "not_found", "engine={engine}");
            assert_eq!(
                no_member.to_string(),
                "class 'A' has no data member 'nope'",
                "engine={engine}"
            );

            assert_ne!(
                malformed.to_string(),
                no_member.to_string(),
                "clients must be able to tell bad request from not found"
            );
        }
    }
}
