//! The dead-data-member detection algorithm (the paper's Figure 2).
//!
//! `DetectUnusedDataMembers` in the paper:
//!
//! 1. mark all data members dead, all classes not-visited;
//! 2. build a call graph;
//! 3. for every statement in every reachable function, mark live each
//!    member that is read or whose address is taken, with special cases
//!    for `delete`/`free` operands, qualified accesses, pointer-to-member
//!    expressions, unsafe casts (`MarkAllContainedMembers`), `volatile`
//!    writes, and `sizeof`;
//! 4. propagate liveness through unions.
//!
//! The traversal itself is provided by
//! [`ddm_hierarchy::walk_function`]; this module supplies the liveness
//! rules and the `MarkAllContainedMembers` closure.

use crate::liveness::{LiveReason, Liveness, Origin};
use ddm_callgraph::CallGraph;
use ddm_cppfront::ast::{ClassKind, Type};
use ddm_hierarchy::{
    by_value_class, classify_cast, strip_indirections, walk_function, walk_globals, CastEvent,
    CastSafety, ClassId, EventVisitor, FnSummary, FuncId, LiveStep, MarkAllCause,
    MemberAccessEvent, MemberAccessKind, MemberLookup, MemberRef, Program, ProgramSummary,
    TypeError,
};
use ddm_telemetry::{Counters, EventClass, Telemetry, LANE_MAIN};
use std::collections::HashSet;
use std::sync::mpsc;

/// Minimum reachable-function count before
/// [`DeadMemberAnalysis::run_jobs`] shards the scan across worker
/// threads. Below it, per-round thread and channel traffic exceeds the
/// microsecond-scale scan itself — `BENCH_suite.json` showed every suite
/// program (16–85 reachable functions) running 2–8× *slower* at
/// `--jobs 8` than sequentially. Results are bit-identical on both
/// paths, so the cut is purely an execution-shape decision; like the
/// extraction threshold it is a fixed count, not CPU-derived, to keep
/// runs reproducible across machines.
pub const SEQUENTIAL_SCAN_THRESHOLD: usize = 256;

/// How uses of `sizeof` are treated (§3.2).
///
/// By default `sizeof` is conservative: all members of the measured class
/// become live, because eliminating members would change the program's
/// behaviour if the size value is observable. When the user has verified
/// that `sizeof` is only used for storage allocation (true for all of the
/// paper's benchmarks), it can be ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SizeofPolicy {
    /// Mark all contained members of the measured type live.
    #[default]
    Conservative,
    /// Ignore `sizeof` entirely (user-verified allocation-only usage).
    Ignore,
}

/// Configuration of one analysis run.
#[derive(Debug, Clone, Default)]
pub struct AnalysisConfig {
    /// Treatment of `sizeof` (§3.2).
    pub sizeof_policy: SizeofPolicy,
    /// When true, C-style and `static_cast` down-casts are assumed safe
    /// (the paper verified this by hand for all benchmarks; unsafe casts
    /// then only arise from `reinterpret_cast` and unrelated-type casts).
    pub assume_safe_downcasts: bool,
    /// Names of classes that belong to (simulated) libraries whose source
    /// is unavailable. Their members are unclassifiable (§3.3).
    pub library_classes: HashSet<String>,
}

/// The dead-data-member detector.
///
/// # Examples
///
/// ```
/// use ddm_core::{AnalysisConfig, DeadMemberAnalysis};
/// use ddm_callgraph::{CallGraph, CallGraphOptions};
/// use ddm_hierarchy::{MemberLookup, Program};
///
/// let tu = ddm_cppfront::parse(
///     "class A { public: int used; int written_only; };\n\
///      int main() { A a; a.written_only = 4; return a.used; }",
/// ).unwrap();
/// let program = Program::build(&tu).unwrap();
/// let lookup = MemberLookup::new(&program);
/// let graph = CallGraph::build(&program, &lookup, &CallGraphOptions::default()).unwrap();
/// let analysis = DeadMemberAnalysis::new(&program, AnalysisConfig::default());
/// let liveness = analysis.run(&graph).unwrap();
/// let a = program.class_by_name("A").unwrap();
/// assert!(liveness.is_live(ddm_hierarchy::MemberRef::new(a, 0)));
/// assert!(liveness.is_dead(ddm_hierarchy::MemberRef::new(a, 1)));
/// ```
#[derive(Debug)]
pub struct DeadMemberAnalysis<'p> {
    program: &'p Program,
    config: AnalysisConfig,
}

impl<'p> DeadMemberAnalysis<'p> {
    /// Creates an analysis over `program` with `config`.
    pub fn new(program: &'p Program, config: AnalysisConfig) -> Self {
        DeadMemberAnalysis { program, config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &AnalysisConfig {
        &self.config
    }

    /// Runs the algorithm against a previously built call graph.
    ///
    /// # Errors
    ///
    /// Propagates [`TypeError`]s from walking reachable function bodies.
    pub fn run(&self, callgraph: &CallGraph) -> Result<Liveness, TypeError> {
        self.run_with(callgraph, &Telemetry::disabled())
    }

    /// [`DeadMemberAnalysis::run`] with telemetry: the scan and the union
    /// post-pass are spanned, and the scan's deterministic counters are
    /// recorded.
    ///
    /// # Errors
    ///
    /// Propagates [`TypeError`]s from walking reachable function bodies.
    pub fn run_with(
        &self,
        callgraph: &CallGraph,
        telemetry: &Telemetry,
    ) -> Result<Liveness, TypeError> {
        let scan_span = telemetry.span(LANE_MAIN, || {
            format!("liveness scan ({} fns)", callgraph.reachable_count())
        });
        let mut marker = self.base_marker()?;

        // Every statement of every function reachable in the call graph.
        let lookup = MemberLookup::new(self.program);
        for func in callgraph.reachable() {
            marker.current = Some(func);
            let mut sink = Sink {
                marker: &mut marker,
            };
            walk_function(self.program, &lookup, func, &mut sink)?;
        }
        drop(scan_span);
        telemetry.update_stats(|s| {
            s.scan_rounds += 1;
            s.scan_shards = s.scan_shards.max(1);
        });

        Self::union_post_pass(&mut marker, telemetry);
        telemetry.add_counters(&marker.counters);
        Ok(marker.liveness)
    }

    /// The shared tail of every engine: the union fixpoint, spanned, with
    /// the expansion counters derived from the merged visited set (so
    /// they are independent of how the scan was sharded).
    fn union_post_pass(marker: &mut Marker<'_, '_>, telemetry: &Telemetry) {
        let union_span = telemetry.span(LANE_MAIN, || "union post-pass".into());
        marker.counters.markall_classes_expanded = marker.visited.len() as u64;
        marker.propagate_unions();
        marker.counters.union_classes_livened =
            marker.visited.len() as u64 - marker.counters.markall_classes_expanded;
        drop(union_span);
        emit_liveness_events(telemetry, &marker.counters);
    }

    /// Runs the algorithm with the reachable-function scan sharded across
    /// `jobs` worker threads.
    ///
    /// The result — live set, unclassifiable set, *and* recorded
    /// [`LiveReason`]s — is bit-identical to [`DeadMemberAnalysis::run`]
    /// for any worker count:
    ///
    /// * per-function marking is a pure function of the body (the
    ///   paper's rules never consult the current liveness state), so
    ///   every worker produces the same delta regardless of what the
    ///   others have found;
    /// * [`CallGraph::reachable_shards`] hands each worker a contiguous,
    ///   order-preserving slice, and deltas are [`Liveness::merge`]d in
    ///   shard order, which reproduces the sequential scan's
    ///   first-mark-wins reason for every member;
    /// * the scan follows the same delta discipline as the call-graph
    ///   fixpoint: its worklist is the newly reachable frontier, which —
    ///   the call graph being final before the scan starts — is the whole
    ///   reachable set in round 0 and empty ever after, so a single
    ///   productive round is the fixpoint (a confirming round asserts
    ///   this under `cfg(debug_assertions)`), and the union-propagation
    ///   fixpoint then runs on the merged state exactly as in the
    ///   sequential path.
    ///
    /// `jobs <= 1` — and, since the sharded machinery costs more than it
    /// saves on small programs, any graph with fewer than
    /// [`SEQUENTIAL_SCAN_THRESHOLD`] reachable functions — falls back to
    /// the sequential implementation.
    ///
    /// # Errors
    ///
    /// Propagates [`TypeError`]s from walking reachable function bodies;
    /// when several shards fail, the error from the earliest function in
    /// scan order is returned, matching the sequential path.
    pub fn run_jobs(&self, callgraph: &CallGraph, jobs: usize) -> Result<Liveness, TypeError> {
        self.run_jobs_with(callgraph, jobs, &Telemetry::disabled())
    }

    /// [`DeadMemberAnalysis::run_jobs`] with telemetry.
    ///
    /// # Errors
    ///
    /// As for [`DeadMemberAnalysis::run_jobs`].
    pub fn run_jobs_with(
        &self,
        callgraph: &CallGraph,
        jobs: usize,
        telemetry: &Telemetry,
    ) -> Result<Liveness, TypeError> {
        if jobs <= 1 || callgraph.reachable_count() < SEQUENTIAL_SCAN_THRESHOLD {
            telemetry.update_stats(|s| s.scan_sequential_fastpath = jobs > 1);
            return self.run_with(callgraph, telemetry);
        }
        self.run_jobs_sharded(callgraph, jobs, telemetry)
    }

    /// The sharded scan, unconditionally: persistent workers, shard-order
    /// reduction, re-scan rounds to a fixpoint. [`run_jobs`] routes here
    /// above the size threshold; tests call it directly to exercise the
    /// worker machinery (and its counter determinism) on programs of any
    /// size.
    ///
    /// [`run_jobs`]: DeadMemberAnalysis::run_jobs
    ///
    /// # Errors
    ///
    /// As for [`DeadMemberAnalysis::run_jobs`].
    pub fn run_jobs_sharded(
        &self,
        callgraph: &CallGraph,
        jobs: usize,
        telemetry: &Telemetry,
    ) -> Result<Liveness, TypeError> {
        let mut marker = self.base_marker()?;
        let shards = callgraph.reachable_shards(jobs);
        let program = self.program;
        let config = &self.config;
        let mut rounds: u64 = 0;
        let mut merges: u64 = 0;
        let mut busy: u64 = 0;

        // Persistent workers, one per shard, that live across scan
        // rounds: each builds its `MemberLookup` (whose subobject cache
        // is neither Sync nor Send) exactly once, inside its own thread,
        // and re-scans its slice on command. Channels are unbounded, so
        // neither side ever blocks on a send.
        let scan_result: Result<(), TypeError> = std::thread::scope(|scope| {
            type Delta = Result<(Liveness, HashSet<ClassId>, Counters), TypeError>;
            let workers: Vec<(mpsc::Sender<()>, mpsc::Receiver<Delta>)> = shards
                .iter()
                .enumerate()
                .map(|(shard_ix, shard)| {
                    let (cmd_tx, cmd_rx) = mpsc::channel::<()>();
                    let (out_tx, out_rx) = mpsc::channel::<Delta>();
                    scope.spawn(move || {
                        let lane = u32::try_from(shard_ix + 1).unwrap_or(u32::MAX);
                        let lookup = MemberLookup::new(program);
                        let mut round = 0u64;
                        while cmd_rx.recv().is_ok() {
                            // One round: walk the slice into a private
                            // delta (own liveness, own
                            // MarkAllContainedMembers visited set).
                            let round_span = telemetry.span(lane, || {
                                format!("scan round {round} shard {shard_ix} ({} fns)", shard.len())
                            });
                            round += 1;
                            let mut worker = Marker {
                                program,
                                liveness: Liveness::new(),
                                visited: HashSet::new(),
                                config,
                                current: None,
                                counters: Counters::default(),
                            };
                            let delta = (|| {
                                for &func in shard {
                                    worker.current = Some(func);
                                    let mut sink = Sink {
                                        marker: &mut worker,
                                    };
                                    walk_function(program, &lookup, func, &mut sink)?;
                                }
                                Ok((worker.liveness, worker.visited, worker.counters))
                            })();
                            drop(round_span);
                            if out_tx.send(delta).is_err() {
                                break;
                            }
                        }
                    });
                    (cmd_tx, out_rx)
                })
                .collect();

            // Delta discipline: the scan worklist is the newly reachable
            // frontier, and the call graph is final before the scan
            // starts, so round 0's frontier is the entire reachable set
            // and every later frontier is empty. Marking is a pure
            // function of the body (never of the current liveness), so
            // the single productive round reaches the fixpoint — the
            // worklist-empty condition replaces the old
            // re-scan-until-nothing-changes loop.
            for (cmd, _) in &workers {
                cmd.send(()).expect("analysis worker alive");
            }
            // Deterministic reduction: fold the deltas in shard order, so
            // an earlier shard's mark always wins — exactly the
            // sequential scan order. The visited sets union into the
            // shared marker for the union-propagation stage (the union of
            // per-worker closures equals the sequential closure). An
            // error likewise surfaces in shard order, matching the
            // sequential path.
            for (_, out) in &workers {
                let (liveness, visited, counters) = out.recv().expect("analysis worker delta")?;
                marker.liveness.merge(&liveness);
                marker.visited.extend(visited);
                merges += 1;
                busy += 1;
                marker.counters.add(&counters);
            }
            rounds = 1;

            // Debug cross-check of the worklist-empty condition: one
            // confirming round must contribute nothing new. Excluded
            // from the stats so debug and release report the same
            // execution shape.
            #[cfg(debug_assertions)]
            {
                for (cmd, _) in &workers {
                    cmd.send(()).expect("analysis worker alive");
                }
                let mut changed = false;
                for (_, out) in &workers {
                    let (liveness, visited, _counters) =
                        out.recv().expect("analysis worker delta")?;
                    changed |= marker.liveness.merge(&liveness);
                    marker.visited.extend(visited);
                }
                assert!(
                    !changed,
                    "a confirming scan round found new marks after the productive round"
                );
            }

            // Dropping `workers` closes the command channels and the
            // workers exit before the scope joins them.
            Ok(())
        });
        scan_result?;
        telemetry.update_stats(|s| {
            s.scan_rounds += rounds;
            s.scan_shards = s.scan_shards.max(shards.len() as u64);
            s.liveness_merges += merges;
            s.worker_busy_transitions += busy;
        });

        Self::union_post_pass(&mut marker, telemetry);
        telemetry.add_counters(&marker.counters);
        Ok(marker.liveness)
    }

    /// Runs the algorithm over precomputed walk-once summaries instead of
    /// re-walking ASTs: replays each reachable function's [`LiveStep`]s in
    /// the sequential scan order, resolves configuration-gated steps
    /// (down-casts, `sizeof`) at replay time, and expands
    /// `MarkAllContainedMembers` and the union fixpoint over the
    /// summaries' precomputed containment closures. The result is
    /// bit-identical to [`DeadMemberAnalysis::run`] on the same call
    /// graph.
    ///
    /// # Errors
    ///
    /// Surfaces the [`TypeError`]s recorded in the summaries of reachable
    /// functions, in the order the walking scan would hit them.
    pub fn run_summary(
        &self,
        summary: &ProgramSummary,
        callgraph: &CallGraph,
    ) -> Result<Liveness, TypeError> {
        self.run_summary_with(summary, callgraph, &Telemetry::disabled())
    }

    /// [`DeadMemberAnalysis::run_summary`] with telemetry: the replay and
    /// union post-pass are spanned, and the replay's deterministic
    /// counters — bit-identical to the walking engine's — are recorded.
    ///
    /// # Errors
    ///
    /// As for [`DeadMemberAnalysis::run_summary`].
    pub fn run_summary_with(
        &self,
        summary: &ProgramSummary,
        callgraph: &CallGraph,
        telemetry: &Telemetry,
    ) -> Result<Liveness, TypeError> {
        self.run_summary_counted(summary, callgraph, telemetry)
            .map(|(liveness, _)| liveness)
    }

    /// [`DeadMemberAnalysis::run_summary_with`], also returning the
    /// scan's deterministic counters. The telemetry handle may be
    /// disabled (it drops counters); callers persisting the converged
    /// state need the counter values regardless, so they are returned
    /// directly.
    ///
    /// # Errors
    ///
    /// As for [`DeadMemberAnalysis::run_summary`].
    pub fn run_summary_counted(
        &self,
        summary: &ProgramSummary,
        callgraph: &CallGraph,
        telemetry: &Telemetry,
    ) -> Result<(Liveness, Counters), TypeError> {
        let scan_span = telemetry.span(LANE_MAIN, || {
            format!("liveness replay ({} fns)", callgraph.reachable_count())
        });
        let library: HashSet<ClassId> = self
            .config
            .library_classes
            .iter()
            .filter_map(|n| self.program.class_by_name(n))
            .collect();

        let mut marker = SummaryMarker {
            program: self.program,
            summary,
            liveness: Liveness::with_member_index(summary.member_index().clone()),
            visited: HashSet::new(),
            config: &self.config,
            counters: Counters::default(),
        };

        // Library members are unclassifiable from the start.
        for (cid, class) in self.program.classes() {
            if library.contains(&cid) {
                for idx in 0..class.members.len() {
                    marker
                        .liveness
                        .mark_unclassifiable(MemberRef::new(cid, idx));
                }
            }
        }

        // Global initializers run unconditionally before `main`.
        marker.replay(None, summary.globals()?);
        let mut replays: u64 = 1;

        // Every reachable function, in id order — the sequential scan.
        for func in callgraph.reachable() {
            marker.replay(Some(func), summary.function(func)?);
            replays += 1;
        }
        drop(scan_span);
        telemetry.update_stats(|s| {
            s.scan_rounds += 1;
            s.scan_shards = s.scan_shards.max(1);
            s.summary_replays += replays;
        });

        let union_span = telemetry.span(LANE_MAIN, || "union post-pass".into());
        marker.counters.markall_classes_expanded = marker.visited.len() as u64;
        marker.propagate_unions();
        marker.counters.union_classes_livened =
            marker.visited.len() as u64 - marker.counters.markall_classes_expanded;
        drop(union_span);
        emit_liveness_events(telemetry, &marker.counters);
        telemetry.add_counters(&marker.counters);
        Ok((marker.liveness, marker.counters))
    }

    /// The shared pre-scan state: everything dead, library members
    /// unclassifiable, global initializers walked (they run
    /// unconditionally before `main`).
    fn base_marker(&self) -> Result<Marker<'p, '_>, TypeError> {
        let library: HashSet<ClassId> = self
            .config
            .library_classes
            .iter()
            .filter_map(|n| self.program.class_by_name(n))
            .collect();

        let mut marker = Marker {
            program: self.program,
            liveness: Liveness::new(),
            visited: HashSet::new(),
            config: &self.config,
            current: None,
            counters: Counters::default(),
        };

        // Library members are unclassifiable from the start.
        for (cid, class) in self.program.classes() {
            if library.contains(&cid) {
                for idx in 0..class.members.len() {
                    marker
                        .liveness
                        .mark_unclassifiable(MemberRef::new(cid, idx));
                }
            }
        }

        let lookup = MemberLookup::new(self.program);
        let mut sink = Sink {
            marker: &mut marker,
        };
        walk_globals(self.program, &lookup, &mut sink)?;
        Ok(marker)
    }
}

/// Re-emits a persisted liveness scan's telemetry — the deterministic
/// `liveness_scan` / `liveness_union` events, the counters, the
/// metrics, and the scan stats — exactly as
/// [`DeadMemberAnalysis::run_summary_with`] over `reachable_count`
/// reachable functions would. Snapshot warm starts that reuse a stored
/// [`Liveness`] call this instead of re-scanning.
pub fn replay_liveness_telemetry(
    telemetry: &Telemetry,
    reachable_count: usize,
    counters: &Counters,
) {
    telemetry.update_stats(|s| {
        s.scan_rounds += 1;
        s.scan_shards = s.scan_shards.max(1);
        s.summary_replays += 1 + reachable_count as u64;
    });
    emit_liveness_events(telemetry, counters);
    telemetry.add_counters(counters);
}

/// Flight-recorder tail of every liveness engine: the scan totals and
/// the union post-pass outcome, read from the merged counters (which are
/// jobs- and engine-invariant at this point), so both events are det
/// class no matter which engine or shard count produced them.
fn emit_liveness_events(telemetry: &Telemetry, counters: &Counters) {
    telemetry.event(EventClass::Deterministic, "liveness_scan", || {
        vec![
            ("reads", counters.scan_reads.into()),
            ("address_taken", counters.scan_address_taken.into()),
            ("ptr_to_member", counters.scan_ptr_to_member.into()),
            ("volatile_writes", counters.scan_volatile_writes.into()),
            ("markall_triggers", counters.markall_triggers.into()),
        ]
    });
    telemetry.event(EventClass::Deterministic, "liveness_union", || {
        vec![
            ("classes_expanded", counters.markall_classes_expanded.into()),
            ("rounds", counters.union_rounds.into()),
            ("classes_livened", counters.union_classes_livened.into()),
        ]
    });
    telemetry.metrics(|m| {
        m.counter_add("liveness/scan_reads", counters.scan_reads);
        m.counter_add("liveness/markall_triggers", counters.markall_triggers);
        m.hist_record("liveness/union_rounds", counters.union_rounds);
        m.hist_record(
            "liveness/union_classes_livened",
            counters.union_classes_livened,
        );
    });
}

struct Marker<'p, 'c> {
    program: &'p Program,
    liveness: Liveness,
    /// The paper's per-class "visited" marking for
    /// `MarkAllContainedMembers` (line 4 / line 38).
    visited: HashSet<ClassId>,
    config: &'c AnalysisConfig,
    /// The function whose body is being scanned, stamped into each mark's
    /// [`Origin`]. `None` during the global-initializer walk.
    current: Option<FuncId>,
    /// Deterministic event counts for this marker's slice of the scan.
    counters: Counters,
}

impl Marker<'_, '_> {
    /// `MarkAllContainedMembers` (Figure 2, lines 36–50): marks every data
    /// member of `class` live, recursing into by-value member classes and
    /// direct base classes, with duplicate suppression via the visited set.
    /// Every mark in the expansion carries the triggering `origin`.
    fn mark_all_contained(&mut self, class: ClassId, reason: LiveReason, origin: Origin) {
        if !self.visited.insert(class) {
            return;
        }
        let info = self.program.class(class);
        for (idx, m) in info.members.iter().enumerate() {
            self.liveness
                .mark_live_from(MemberRef::new(class, idx), reason, origin);
            if let Some(name) = by_value_class(&m.ty) {
                if let Some(id) = self.program.class_by_name(name) {
                    self.mark_all_contained(id, reason, origin);
                }
            }
        }
        let bases: Vec<ClassId> = info.bases.iter().map(|b| b.id).collect();
        for b in bases {
            self.mark_all_contained(b, reason, origin);
        }
    }

    /// The smallest live [`MemberRef`] directly or indirectly contained in
    /// `class`, or `None` when none is live (the union rule's trigger).
    /// Taking the *minimum* — rather than the first hit of some traversal —
    /// makes the witness recorded in [`Origin::Union`] independent of the
    /// walk order, so both engines agree on it.
    fn min_live_contained(&self, class: ClassId) -> Option<MemberRef> {
        let mut seen = HashSet::new();
        let mut stack = vec![class];
        let mut min: Option<MemberRef> = None;
        while let Some(c) = stack.pop() {
            if !seen.insert(c) {
                continue;
            }
            let info = self.program.class(c);
            for (idx, m) in info.members.iter().enumerate() {
                let r = MemberRef::new(c, idx);
                if self.liveness.is_live(r) && min.map_or(true, |cur| r < cur) {
                    min = Some(r);
                }
                if let Some(name) = by_value_class(&m.ty) {
                    if let Some(id) = self.program.class_by_name(name) {
                        stack.push(id);
                    }
                }
            }
            stack.extend(info.bases.iter().map(|b| b.id));
        }
        min
    }

    /// Union propagation (Figure 2, lines 9–11), to a fixpoint since
    /// marking a union's contents may liven members of another union.
    /// Counts every fixpoint iteration — including the final, confirming
    /// one — into `union_rounds`.
    fn propagate_unions(&mut self) {
        loop {
            self.counters.union_rounds += 1;
            let mut changed = false;
            for (cid, class) in self.program.classes() {
                if class.kind != ClassKind::Union {
                    continue;
                }
                if self.visited.contains(&cid) {
                    continue;
                }
                if let Some(via) = self.min_live_contained(cid) {
                    self.mark_all_contained(
                        cid,
                        LiveReason::UnionPropagation,
                        Origin::Union { root: cid, via },
                    );
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// Classifies a cast as unsafe per §3, resolving the shared static
    /// classification ([`classify_cast`]) against this run's down-cast
    /// policy.
    fn cast_is_unsafe(&self, ev: &CastEvent) -> bool {
        match classify_cast(self.program, ev) {
            CastSafety::Safe => false,
            CastSafety::Unsafe => true,
            CastSafety::UnsafeDowncast => !self.config.assume_safe_downcasts,
        }
    }
}

/// The summary engine's counterpart of [`Marker`]: the same liveness
/// rules, driven by recorded [`LiveStep`]s instead of AST events, with
/// `MarkAllContainedMembers` flattened over the precomputed containment
/// closures. The flat expansion marks exactly the classes the recursive
/// walk would: any visited class already has its entire closure visited,
/// so each call marks `closure(class)` minus the previously visited set
/// either way.
struct SummaryMarker<'p, 's, 'c> {
    program: &'p Program,
    summary: &'s ProgramSummary,
    liveness: Liveness,
    visited: HashSet<ClassId>,
    config: &'c AnalysisConfig,
    counters: Counters,
}

impl SummaryMarker<'_, '_, '_> {
    /// Replays one function's liveness facts in body order, stamping
    /// `func` into each mark's [`Origin`] (`None` for the global
    /// initializers). The counters increment exactly where the walking
    /// engine's [`Sink`] increments them — one per surviving step — so the
    /// totals are engine-independent.
    fn replay(&mut self, func: Option<FuncId>, s: &FnSummary) {
        for step in &s.live_steps {
            match step {
                LiveStep::Access { member, kind } => {
                    let reason = match kind {
                        MemberAccessKind::Read => {
                            self.counters.scan_reads += 1;
                            LiveReason::Read
                        }
                        MemberAccessKind::AddressTaken => {
                            self.counters.scan_address_taken += 1;
                            LiveReason::AddressTaken
                        }
                        MemberAccessKind::PointerToMember => {
                            self.counters.scan_ptr_to_member += 1;
                            LiveReason::PointerToMember
                        }
                        MemberAccessKind::VolatileWrite => {
                            self.counters.scan_volatile_writes += 1;
                            LiveReason::VolatileWrite
                        }
                    };
                    self.liveness
                        .mark_live_from(*member, reason, Origin::Access { func });
                }
                LiveStep::MarkAll { class, cause } => {
                    // Configuration gates resolve here, so one summary
                    // serves every configuration.
                    let reason = match cause {
                        MarkAllCause::UnsafeCast => LiveReason::UnsafeCast,
                        MarkAllCause::UnsafeDowncast => {
                            if self.config.assume_safe_downcasts {
                                continue;
                            }
                            LiveReason::UnsafeCast
                        }
                        MarkAllCause::Sizeof => {
                            if self.config.sizeof_policy == SizeofPolicy::Ignore {
                                continue;
                            }
                            LiveReason::Sizeof
                        }
                    };
                    self.counters.markall_triggers += 1;
                    self.mark_all_contained(*class, reason, Origin::MarkAll { func, root: *class });
                }
            }
        }
    }

    /// `MarkAllContainedMembers` as a flat sweep of the precomputed
    /// closure, each mark carrying the triggering `origin`.
    fn mark_all_contained(&mut self, class: ClassId, reason: LiveReason, origin: Origin) {
        for &c in self.summary.contained_classes(class) {
            if !self.visited.insert(c) {
                continue;
            }
            for idx in 0..self.program.class(c).members.len() {
                self.liveness
                    .mark_live_from(MemberRef::new(c, idx), reason, origin);
            }
        }
    }

    /// The smallest live [`MemberRef`] contained in `class` — over the
    /// same closure set [`Marker::min_live_contained`] walks, so both
    /// engines pick the same union witness.
    fn min_live_contained(&self, class: ClassId) -> Option<MemberRef> {
        let mut min: Option<MemberRef> = None;
        for &c in self.summary.contained_classes(class) {
            for idx in 0..self.program.class(c).members.len() {
                let r = MemberRef::new(c, idx);
                if self.liveness.is_live(r) && min.map_or(true, |cur| r < cur) {
                    min = Some(r);
                }
            }
        }
        min
    }

    /// Union propagation (Figure 2, lines 9–11) to a fixpoint, iterating
    /// classes in the same order — and counting the same `union_rounds` —
    /// as [`Marker::propagate_unions`].
    fn propagate_unions(&mut self) {
        loop {
            self.counters.union_rounds += 1;
            let mut changed = false;
            for (cid, class) in self.program.classes() {
                if class.kind != ClassKind::Union {
                    continue;
                }
                if self.visited.contains(&cid) {
                    continue;
                }
                if let Some(via) = self.min_live_contained(cid) {
                    self.mark_all_contained(
                        cid,
                        LiveReason::UnionPropagation,
                        Origin::Union { root: cid, via },
                    );
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
    }
}

struct Sink<'a, 'p, 'c> {
    marker: &'a mut Marker<'p, 'c>,
}

impl EventVisitor for Sink<'_, '_, '_> {
    fn member_access(&mut self, ev: &MemberAccessEvent) {
        let member = &self.marker.program.class(ev.member.class).members[ev.member.index as usize];
        let origin = Origin::Access {
            func: self.marker.current,
        };
        if ev.is_store_target {
            // "The act of storing a value into a data member cannot affect
            // the program's observable behavior by itself" — except for
            // volatile members (footnote 1).
            if member.is_volatile {
                self.marker.counters.scan_volatile_writes += 1;
                self.marker
                    .liveness
                    .mark_live_from(ev.member, LiveReason::VolatileWrite, origin);
            }
            return;
        }
        if ev.is_delete_operand {
            // "A data member whose address is passed to the delete or free
            // system functions does not have to be marked as live."
            return;
        }
        let reason = if ev.address_taken {
            self.marker.counters.scan_address_taken += 1;
            LiveReason::AddressTaken
        } else {
            self.marker.counters.scan_reads += 1;
            LiveReason::Read
        };
        self.marker.liveness.mark_live_from(ev.member, reason, origin);
    }

    fn ptr_to_member(&mut self, member: MemberRef, _span: ddm_cppfront::Span) {
        // "&Z::m ... we simply assume that any member whose offset is
        // computed may be accessed somewhere in the program."
        self.marker.counters.scan_ptr_to_member += 1;
        let origin = Origin::Access {
            func: self.marker.current,
        };
        self.marker
            .liveness
            .mark_live_from(member, LiveReason::PointerToMember, origin);
    }

    fn cast(&mut self, ev: &CastEvent) {
        if !self.marker.cast_is_unsafe(ev) {
            return;
        }
        // "let S be the type of e'; call MarkAllContainedMembers(S)".
        let operand = strip_indirections(&ev.operand);
        if let Some(name) = operand.named() {
            if let Some(id) = self.marker.program.class_by_name(name) {
                self.marker.counters.markall_triggers += 1;
                let origin = Origin::MarkAll {
                    func: self.marker.current,
                    root: id,
                };
                self.marker
                    .mark_all_contained(id, LiveReason::UnsafeCast, origin);
            }
        }
    }

    fn sizeof_of(&mut self, ty: &Type, _span: ddm_cppfront::Span) {
        if self.marker.config.sizeof_policy == SizeofPolicy::Ignore {
            return;
        }
        let ty = strip_indirections(ty);
        if let Some(name) = ty.named() {
            if let Some(id) = self.marker.program.class_by_name(name) {
                self.marker.counters.markall_triggers += 1;
                let origin = Origin::MarkAll {
                    func: self.marker.current,
                    root: id,
                };
                self.marker
                    .mark_all_contained(id, LiveReason::Sizeof, origin);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddm_callgraph::{Algorithm, CallGraphOptions};
    use ddm_cppfront::parse;

    fn run(src: &str) -> (Program, Liveness) {
        run_with(src, AnalysisConfig::default(), Algorithm::Rta)
    }

    fn run_with(src: &str, config: AnalysisConfig, algorithm: Algorithm) -> (Program, Liveness) {
        let tu = parse(src).expect("parse");
        let program = Program::build(&tu).expect("sema");
        let liveness = {
            let lookup = MemberLookup::new(&program);
            let cg_options = CallGraphOptions {
                algorithm,
                library_classes: config
                    .library_classes
                    .iter()
                    .filter_map(|n| program.class_by_name(n))
                    .collect(),
                ..Default::default()
            };
            let graph = CallGraph::build(&program, &lookup, &cg_options).expect("callgraph");
            DeadMemberAnalysis::new(&program, config)
                .run(&graph)
                .expect("analysis")
        };
        (program, liveness)
    }

    fn member(p: &Program, class: &str, name: &str) -> MemberRef {
        let cid = p.class_by_name(class).unwrap();
        let idx = p
            .class(cid)
            .members
            .iter()
            .position(|m| m.name == name)
            .unwrap();
        MemberRef::new(cid, idx)
    }

    #[test]
    fn read_member_is_live_written_member_is_dead() {
        let (p, l) = run("class A { public: int r; int w; };\n\
             int main() { A a; a.w = 1; return a.r; }");
        assert!(l.is_live(member(&p, "A", "r")));
        assert!(l.is_dead(member(&p, "A", "w")));
    }

    #[test]
    fn never_accessed_member_is_dead() {
        let (p, l) = run("class A { public: int never; }; int main() { A a; return 0; }");
        assert!(l.is_dead(member(&p, "A", "never")));
    }

    #[test]
    fn member_accessed_only_in_unreachable_code_is_dead() {
        let (p, l) = run("class A { public: int m; };\n\
             int ghost() { A a; return a.m; }\n\
             int main() { A a; return 0; }");
        assert!(l.is_dead(member(&p, "A", "m")));
    }

    #[test]
    fn address_taken_member_is_live() {
        let (p, l) = run("class A { public: int m; };\n\
             int main() { A a; int* p = &a.m; a.m = 2; return 0; }");
        assert!(l.is_live(member(&p, "A", "m")));
        assert_eq!(
            l.reason(member(&p, "A", "m")),
            Some(LiveReason::AddressTaken)
        );
    }

    #[test]
    fn volatile_member_live_when_only_written() {
        let (p, l) = run("class Dev { public: volatile int ctrl; int scratch; };\n\
             int main() { Dev d; d.ctrl = 1; d.scratch = 2; return 0; }");
        assert!(l.is_live(member(&p, "Dev", "ctrl")));
        assert_eq!(
            l.reason(member(&p, "Dev", "ctrl")),
            Some(LiveReason::VolatileWrite)
        );
        assert!(l.is_dead(member(&p, "Dev", "scratch")));
    }

    #[test]
    fn delete_and_free_operands_do_not_liven() {
        let (p, l) = run("class Node { public: int* heap_buf; Node* child; };\n\
             int main() { Node n; delete n.child; free(n.heap_buf); return 0; }");
        assert!(l.is_dead(member(&p, "Node", "child")));
        assert!(l.is_dead(member(&p, "Node", "heap_buf")));
    }

    #[test]
    fn pointer_to_member_livens() {
        let (p, l) = run("class A { public: int m; int other; };\n\
             int main() { int A::* pm = &A::m; A a; return a.*pm; }");
        assert!(l.is_live(member(&p, "A", "m")));
        assert_eq!(
            l.reason(member(&p, "A", "m")),
            Some(LiveReason::PointerToMember)
        );
        assert!(l.is_dead(member(&p, "A", "other")));
    }

    #[test]
    fn unsafe_downcast_marks_all_contained_members_of_operand_type() {
        let (p, l) = run("class S { public: int s1; int s2; };\n\
             class T : public S { public: int t1; };\n\
             int main() { S* s = new T(); T* t = (T*)s; return 0; }");
        // Down-cast S* → T* is unsafe by default: S's members become live.
        assert!(l.is_live(member(&p, "S", "s1")));
        assert!(l.is_live(member(&p, "S", "s2")));
        assert_eq!(
            l.reason(member(&p, "S", "s1")),
            Some(LiveReason::UnsafeCast)
        );
        // T's own member is not contained in S.
        assert!(l.is_dead(member(&p, "T", "t1")));
    }

    #[test]
    fn verified_downcasts_can_be_assumed_safe() {
        let (p, l) = run_with(
            "class S { public: int s1; };\n\
             class T : public S { public: int t1; };\n\
             int main() { S* s = new T(); T* t = (T*)s; return 0; }",
            AnalysisConfig {
                assume_safe_downcasts: true,
                ..Default::default()
            },
            Algorithm::Rta,
        );
        assert!(l.is_dead(member(&p, "S", "s1")));
        assert!(l.is_dead(member(&p, "T", "t1")));
    }

    #[test]
    fn upcast_is_safe() {
        let (p, l) = run("class S { public: int s1; };\n\
             class T : public S { public: int t1; };\n\
             int main() { T* t = new T(); S* s = (S*)t; return 0; }");
        assert!(l.is_dead(member(&p, "S", "s1")));
        assert!(l.is_dead(member(&p, "T", "t1")));
    }

    #[test]
    fn reinterpret_cast_is_always_unsafe() {
        let (p, l) = run("class A { public: int m; };\n\
             int main() { A* a = new A(); long v = reinterpret_cast<long>(a); return 0; }");
        assert!(l.is_live(member(&p, "A", "m")));
    }

    #[test]
    fn union_with_one_live_member_livens_all() {
        let (p, l) = run("union U { int i; float f; char bytes[4]; };\n\
             int main() { U u; u.f = 1.5; return u.i; }");
        assert!(l.is_live(member(&p, "U", "i")));
        assert!(l.is_live(member(&p, "U", "f")));
        assert!(l.is_live(member(&p, "U", "bytes")));
    }

    #[test]
    fn union_with_no_live_members_stays_dead() {
        let (p, l) = run("union U { int i; float f; };\n\
             int main() { U u; u.i = 3; return 0; }");
        assert!(l.is_dead(member(&p, "U", "i")));
        assert!(l.is_dead(member(&p, "U", "f")));
    }

    #[test]
    fn sizeof_conservative_vs_ignore() {
        let src = "class A { public: int m1; int m2; };\n\
                   int main() { return sizeof(A); }";
        let (p, l) = run_with(src, AnalysisConfig::default(), Algorithm::Rta);
        assert!(l.is_live(member(&p, "A", "m1")));
        assert_eq!(l.reason(member(&p, "A", "m1")), Some(LiveReason::Sizeof));
        let (p2, l2) = run_with(
            src,
            AnalysisConfig {
                sizeof_policy: SizeofPolicy::Ignore,
                ..Default::default()
            },
            Algorithm::Rta,
        );
        assert!(l2.is_dead(member(&p2, "A", "m1")));
        assert!(l2.is_dead(member(&p2, "A", "m2")));
    }

    #[test]
    fn library_class_members_are_unclassifiable() {
        let (p, l) = run_with(
            "class LibString { public: char* data; int len; int capacity; };\n\
             int main() { LibString s; return s.len; }",
            AnalysisConfig {
                library_classes: ["LibString".to_string()].into_iter().collect(),
                ..Default::default()
            },
            Algorithm::Rta,
        );
        for name in ["data", "len", "capacity"] {
            let m = member(&p, "LibString", name);
            assert!(!m_is_classified(&l, m), "{name} must be unclassifiable");
        }
    }

    fn m_is_classified(l: &Liveness, m: MemberRef) -> bool {
        l.is_dead(m)
    }

    #[test]
    fn figure1_classification_matches_paper() {
        // The running example: expected classifications from §2/§3.1 under
        // the RTA-style call graph (B::mb1, C::mc1, B::mb3 conservatively
        // live; ma2, mn2, ma3 dead).
        let src = "
            class N { public: int mn1; int mn2; };
            class A { public: virtual int f() { return ma1; } int ma1; int ma2; int ma3; };
            class B : public A { public: virtual int f() { return mb1; } int mb1; N mb2; int mb3; int mb4; };
            class C : public A { public: virtual int f() { return mc1; } int mc1; };
            int foo(int* x) { return (*x) + 1; }
            int main() {
                A a; B b; C c; A* ap;
                a.ma3 = b.mb3 + 1;
                int i = 10;
                if (i < 20) { ap = &a; } else { ap = &b; }
                return ap->f() + b.mb2.mn1 + foo(&b.mb4);
            }";
        let (p, l) = run(src);
        // Live per the paper's analysis of its own algorithm:
        assert!(l.is_live(member(&p, "A", "ma1")), "ma1 read in A::f");
        assert!(l.is_live(member(&p, "N", "mn1")), "mn1 read in main");
        assert!(l.is_live(member(&p, "B", "mb2")), "mb2 on a read path");
        assert!(l.is_live(member(&p, "B", "mb4")), "mb4 address taken");
        assert!(
            l.is_live(member(&p, "B", "mb3")),
            "mb3 read (value unused, but conservative)"
        );
        assert!(
            l.is_live(member(&p, "B", "mb1")),
            "mb1 read in reachable B::f"
        );
        assert!(
            l.is_live(member(&p, "C", "mc1")),
            "mc1 read in reachable C::f"
        );
        // Dead:
        assert!(l.is_dead(member(&p, "A", "ma2")), "ma2 never accessed");
        assert!(l.is_dead(member(&p, "N", "mn2")), "mn2 never accessed");
        assert!(l.is_dead(member(&p, "A", "ma3")), "ma3 only written");
        assert_eq!(l.dead_members(&p).len(), 3);
    }

    #[test]
    fn compound_assignment_livens_target() {
        let (p, l) = run("class A { public: int acc; };\n\
             int main() { A a; a.acc += 5; return 0; }");
        assert!(l.is_live(member(&p, "A", "acc")), "`+=` reads the member");
    }

    #[test]
    fn increment_livens_target() {
        let (p, l) = run("class A { public: int n1; int n2; };\n\
             int main() { A a; a.n1++; --a.n2; return 0; }");
        assert!(l.is_live(member(&p, "A", "n1")));
        assert!(l.is_live(member(&p, "A", "n2")));
    }

    #[test]
    fn ctor_initialization_does_not_liven() {
        let (p, l) = run("class A { public: int x; int y; A() : x(1) { y = 2; } };\n\
             int main() { A a; return 0; }");
        assert!(l.is_dead(member(&p, "A", "x")));
        assert!(l.is_dead(member(&p, "A", "y")));
    }

    #[test]
    fn liveness_monotone_in_callgraph_precision() {
        // dead(RTA) ⊇ dead(CHA) ⊇ dead(Everything).
        let src = "
            class A { public: virtual int f() { return m1; } int m1; };
            class B : public A { public: virtual int f() { return m2; } int m2; };
            int orphan() { B b; return b.m2; }
            int main() { A a; return a.f(); }";
        let count = |alg| {
            let (p, l) = run_with(src, AnalysisConfig::default(), alg);
            l.dead_members(&p).len()
        };
        let rta = count(Algorithm::Rta);
        let cha = count(Algorithm::Cha);
        let all = count(Algorithm::Everything);
        assert!(rta >= cha, "rta={rta} cha={cha}");
        assert!(cha >= all, "cha={cha} all={all}");
        assert!(rta > all, "the example is built to show a difference");
    }

    #[test]
    fn mark_all_contained_recurses_through_value_members_and_bases() {
        let (p, l) = run("class Inner { public: int deep; };\n\
             class Base { public: int inherited; };\n\
             class Outer : public Base { public: Inner inner; int own; };\n\
             int main() { Outer* o = new Outer(); long v = reinterpret_cast<long>(o); return 0; }");
        assert!(l.is_live(member(&p, "Outer", "own")));
        assert!(l.is_live(member(&p, "Outer", "inner")));
        assert!(l.is_live(member(&p, "Inner", "deep")));
        assert!(l.is_live(member(&p, "Base", "inherited")));
    }
}

#[cfg(test)]
mod union_edge_tests {
    use super::*;
    use ddm_callgraph::{CallGraph, CallGraphOptions};
    use ddm_cppfront::parse;

    fn liveness(src: &str) -> (Program, Liveness) {
        let tu = parse(src).expect("parse");
        let program = Program::build(&tu).expect("sema");
        let l = {
            let lookup = MemberLookup::new(&program);
            let graph = CallGraph::build(&program, &lookup, &CallGraphOptions::default()).unwrap();
            DeadMemberAnalysis::new(&program, AnalysisConfig::default())
                .run(&graph)
                .unwrap()
        };
        (program, l)
    }

    fn member(p: &Program, class: &str, name: &str) -> MemberRef {
        let cid = p.class_by_name(class).unwrap();
        let idx = p
            .class(cid)
            .members
            .iter()
            .position(|m| m.name == name)
            .unwrap();
        MemberRef::new(cid, idx)
    }

    #[test]
    fn union_nested_in_union_propagates_transitively() {
        // Liveness of the outer union's int must reach members nested two
        // levels down (the union fixpoint of Figure 2 lines 9-11).
        let (p, l) = liveness(
            "union Inner { short s; char c; };\n\
             union Outer { int i; Inner nested; };\n\
             int main() { Outer u; return u.i; }",
        );
        assert!(l.is_live(member(&p, "Outer", "i")));
        assert!(l.is_live(member(&p, "Outer", "nested")));
        assert!(l.is_live(member(&p, "Inner", "s")));
        assert!(l.is_live(member(&p, "Inner", "c")));
    }

    #[test]
    fn class_containing_union_does_not_auto_liven() {
        // A union inside a class only fires the rule when one of ITS
        // members is live; sibling class members are unaffected.
        let (p, l) = liveness(
            "union U { int a; int b; };\n\
             class Holder { public: U u; int other; };\n\
             int main() { Holder h; h.other = 1; return 0; }",
        );
        assert!(l.is_dead(member(&p, "U", "a")));
        assert!(l.is_dead(member(&p, "U", "b")));
        assert!(l.is_dead(member(&p, "Holder", "other")));
        // `u` itself: never read or address-taken either.
        assert!(l.is_dead(member(&p, "Holder", "u")));
    }

    #[test]
    fn union_rule_fires_through_base_class_of_contained_class() {
        let (p, l) = liveness(
            "struct Base { int inherited; };\n\
             struct Payload : public Base { int own; };\n\
             union U { Payload p; int raw; };\n\
             int main() { U u; return u.raw; }",
        );
        assert!(l.is_live(member(&p, "Base", "inherited")));
        assert!(l.is_live(member(&p, "Payload", "own")));
    }
}
