//! Immutable analysis epochs and the swap cell that publishes them.
//!
//! An [`EpochSnapshot`] is the complete, frozen result of one project
//! analysis run: the linked program, call graph, liveness, used-class
//! set, and the run's deterministic counters, stamped with a
//! monotonically increasing epoch id. Snapshots are plain data behind
//! an `Arc` — no locks, no interior mutability — so any number of
//! reader threads can answer `report`/`explain`/`stats` queries from
//! one concurrently, and cloning the handle is a refcount bump.
//!
//! [`EpochCell`] is the single mutable point in serve mode: an
//! `ArcSwap`-style slot (hand-rolled over `Mutex<Option<Arc<_>>>`)
//! holding the current epoch. The builder thread constructs the next
//! snapshot entirely off to the side and publishes it with one
//! [`EpochCell::store`]; readers that loaded the previous `Arc` keep a
//! fully consistent world until they drop it. No reader can ever
//! observe a half-built epoch, because the only shared state is the
//! slot and the slot only ever holds finished snapshots.

use crate::analysis::AnalysisConfig;
use crate::explain::{explain, ExplainError};
use crate::liveness::Liveness;
use crate::pipeline::Engine;
use crate::report::{render_analysis, Report};
use ddm_callgraph::CallGraph;
use ddm_cppfront::SourceSet;
use ddm_hierarchy::{ClassId, LinkedProgram, Program};
use ddm_telemetry::Counters;
use std::collections::HashSet;
use std::sync::{Arc, Mutex};

/// One frozen analysis result. See the module docs for the sharing
/// contract; construction goes through
/// [`ProjectPipeline::run_epoch`](crate::ProjectPipeline::run_epoch).
#[derive(Debug)]
pub struct EpochSnapshot {
    pub(crate) epoch: u64,
    pub(crate) sources: SourceSet,
    pub(crate) files: Vec<String>,
    pub(crate) linked: LinkedProgram,
    pub(crate) callgraph: CallGraph,
    pub(crate) liveness: Liveness,
    pub(crate) used: HashSet<ClassId>,
    pub(crate) config: AnalysisConfig,
    pub(crate) engine: Engine,
    pub(crate) counters: Counters,
}

impl EpochSnapshot {
    /// The epoch id this snapshot was published as (one-shot runs: 0).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The per-TU source maps, in input order.
    pub fn sources(&self) -> &SourceSet {
        &self.sources
    }

    /// The input file names, in input order.
    pub fn files(&self) -> &[String] {
        &self.files
    }

    /// The linked whole-program view with its per-TU provenance.
    pub fn linked(&self) -> &LinkedProgram {
        &self.linked
    }

    /// The linked program model.
    pub fn program(&self) -> &Program {
        self.linked.program()
    }

    /// The call graph that scoped the analysis.
    pub fn callgraph(&self) -> &CallGraph {
        &self.callgraph
    }

    /// The per-member classification.
    pub fn liveness(&self) -> &Liveness {
        &self.liveness
    }

    /// The used-class set.
    pub fn used(&self) -> &HashSet<ClassId> {
        &self.used
    }

    /// The configuration the run used.
    pub fn config(&self) -> &AnalysisConfig {
        &self.config
    }

    /// The engine the run used.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// The deterministic counters the run accumulated on its telemetry
    /// handle. Meaningful when the build used a fresh enabled handle
    /// (serve mode builds one per epoch); all-zero under a disabled
    /// handle.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Builds the report over the linked program.
    pub fn report(&self) -> Report {
        Report::new(self.linked.program(), &self.liveness, &self.used)
    }

    /// The full analysis output, byte-identical to what a one-shot
    /// `ddm` run over the same files prints to stdout.
    pub fn render_report(&self, layout: bool) -> String {
        let report = self.report();
        render_analysis(
            self.linked.program(),
            &self.callgraph,
            &self.liveness,
            &report,
            layout,
        )
    }

    /// The `--explain` text for `spec`, byte-identical to the one-shot
    /// CLI's stdout for the same query.
    ///
    /// # Errors
    ///
    /// Propagates [`ExplainError`] (`bad_request` for a malformed spec,
    /// `not_found` for a well-formed spec naming nothing).
    pub fn render_explain(&self, spec: &str) -> Result<String, ExplainError> {
        explain(self.linked.program(), &self.callgraph, &self.liveness, spec)
    }

    /// The `== deterministic counters ==` section of `--stats`,
    /// byte-identical to the same section of a one-shot run's stderr
    /// (the deterministic-counter contract makes the section identical
    /// across jobs, engines, and cache states, so it is the one part of
    /// `--stats` a byte-equality oracle can pin).
    pub fn render_counters(&self) -> String {
        format!(
            "== deterministic counters ==\n{}",
            self.counters.render_table()
        )
    }
}

/// The swap cell serve mode publishes epochs through: readers
/// [`load`](EpochCell::load) the current `Arc` (a refcount bump under a
/// momentary mutex — never held across any analysis or rendering work),
/// the builder [`store`](EpochCell::store)s a finished snapshot to
/// publish it atomically. Readers holding the previous `Arc` are
/// undisturbed; the old epoch is freed when its last reader drops it.
#[derive(Debug, Default)]
pub struct EpochCell {
    slot: Mutex<Option<Arc<EpochSnapshot>>>,
}

impl EpochCell {
    /// An empty cell (no epoch published yet).
    pub fn new() -> EpochCell {
        EpochCell::default()
    }

    /// The current snapshot, or `None` before the first publish.
    pub fn load(&self) -> Option<Arc<EpochSnapshot>> {
        self.slot.lock().expect("epoch cell poisoned").clone()
    }

    /// Atomically replaces the published snapshot.
    pub fn store(&self, snapshot: Arc<EpochSnapshot>) {
        *self.slot.lock().expect("epoch cell poisoned") = Some(snapshot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::project::ProjectPipeline;
    use ddm_callgraph::Algorithm;
    use ddm_telemetry::Telemetry;

    fn snapshot(epoch: u64) -> Arc<EpochSnapshot> {
        let inputs = vec![(
            "one.cpp".to_string(),
            "class A { public: int m; int w; }; int main() { A a; return a.m; }".to_string(),
        )];
        ProjectPipeline::run_epoch(
            &inputs,
            AnalysisConfig::default(),
            Algorithm::Rta,
            1,
            Engine::Summary,
            None,
            &Telemetry::enabled(),
            epoch,
        )
        .expect("build")
    }

    #[test]
    fn snapshots_are_shareable_across_threads() {
        let snap = snapshot(1);
        let report = snap.render_report(false);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let snap = Arc::clone(&snap);
                let report = report.clone();
                scope.spawn(move || {
                    assert_eq!(snap.render_report(false), report);
                    assert_eq!(snap.epoch(), 1);
                });
            }
        });
    }

    #[test]
    fn cell_swaps_epochs_without_disturbing_held_readers() {
        let cell = EpochCell::new();
        assert!(cell.load().is_none());
        cell.store(snapshot(1));
        let held = cell.load().expect("published");
        cell.store(snapshot(2));
        assert_eq!(held.epoch(), 1, "a held Arc still sees its epoch");
        assert_eq!(cell.load().expect("published").epoch(), 2);
    }

    #[test]
    fn counters_capture_the_build_handles_totals() {
        let snap = snapshot(1);
        assert!(snap.counters().members_live >= 1);
        assert!(snap.render_counters().starts_with("== deterministic counters ==\n"));
        assert!(snap.render_counters().contains("members_live"));
    }
}
