//! Multi-TU batch front end with incremental re-analysis.
//!
//! [`ProjectPipeline`] accepts N named sources, runs the per-TU front
//! end (parse → model → walk-once summary → [`TuModule`] extraction)
//! sharded across the worker pool, links the modules into one program
//! ([`ddm_hierarchy::link`]), and drives the existing delta-fixpoint
//! call graph and liveness over the linked result. Both engines produce
//! bit-identical artifacts for every worker count, exactly like the
//! single-TU [`AnalysisPipeline`](crate::AnalysisPipeline).
//!
//! With a cache directory, per-TU modules persist across runs keyed by
//! the FNV-1a content hash of the TU source (plus a format version and
//! a configuration fingerprint in the envelope). A warm run re-parses
//! and re-summarizes only the TUs whose content changed and produces
//! byte-identical reports, `--explain` output, and deterministic
//! counters versus a cold cacheless run: the linked model is always
//! assembled from module records, so a summary resolved from cache
//! cannot drift from one extracted fresh. Only the summary engine
//! consults the cache — the walk engine re-walks bodies and therefore
//! always needs every parse.
//!
//! Entries are published atomically (write to a process-unique temp
//! file, then rename), so concurrent writers sharing one cache
//! directory and processes killed mid-write can never leave a torn
//! `tu-<hash>.json` behind; dangling temps are swept the next time the
//! directory is opened. The `DDM_CACHE_FAULT` environment variable
//! injects crashes into the write path for the torture tests.

use crate::analysis::{replay_liveness_telemetry, AnalysisConfig, DeadMemberAnalysis};
use crate::epoch::EpochSnapshot;
use crate::liveness::Liveness;
use crate::pipeline::{emit_classification_event, Engine, PipelineError};
use crate::report::Report;
use crate::snapshot::{snapshot_fingerprint, AnalysisSnapshot, SNAPSHOT_FILE};
use ddm_callgraph::{replay_schedule, Algorithm, CallGraph, CallGraphOptions, CgSchedule};
use ddm_cppfront::{parse, SourceMap, SourceSet};
use ddm_hierarchy::{
    body_walk_count, fnv1a64, hash_hex, link_delta_ref, link_with, used_classes, ClassId, FuncId,
    LinkDelta, LinkError, LinkedProgram, MemberLookup, Program, ProgramSummary, TuModule,
    TypeError,
};
use ddm_telemetry::{Counters, EventClass, Telemetry, LANE_MAIN};
use std::collections::HashSet;
use std::error::Error;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Any error a project run can produce.
#[derive(Debug)]
pub enum ProjectError {
    /// A failure attributed to one translation unit: its own parse,
    /// semantic, or body-walk error, or an analysis-phase error traced
    /// back to the TU whose body produced it.
    Tu {
        /// The TU's file name.
        file: String,
        /// The underlying failure.
        error: PipelineError,
    },
    /// Conflicting definitions across translation units.
    Link(LinkError),
}

impl fmt::Display for ProjectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProjectError::Tu { file, error } => write!(f, "{file}: {error}"),
            ProjectError::Link(e) => write!(f, "{e}"),
        }
    }
}

impl Error for ProjectError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ProjectError::Tu { error, .. } => Some(error),
            ProjectError::Link(e) => Some(e),
        }
    }
}

/// A completed multi-TU analysis run.
///
/// Since the epoch refactor this is a thin handle over an immutable
/// [`EpochSnapshot`] behind an `Arc`: one-shot callers keep the same
/// accessor surface they always had, while serve mode takes the
/// snapshot itself ([`ProjectPipeline::snapshot`]) and shares it across
/// reader threads.
#[derive(Debug)]
pub struct ProjectPipeline {
    snapshot: Arc<EpochSnapshot>,
}

/// The configuration fingerprint stored in every cache envelope. Only
/// configuration that changes what a *per-TU summary* contains belongs
/// here (today: whether §3.1 points-to refinement ran, which is implied
/// by the call-graph algorithm). Options that act at link time or later
/// — `sizeof` policy, down-cast policy, library classes — deliberately
/// do not invalidate cached modules.
pub fn config_fingerprint(algorithm: Algorithm) -> String {
    format!("v1;refine={}", u8::from(algorithm == Algorithm::Pta))
}

/// The cache file for a TU with the given source hash.
fn cache_path(dir: &Path, source_hash: u64) -> PathBuf {
    dir.join(format!("tu-{}.json", hash_hex(source_hash)))
}

/// Crash-injection points inside the cache write path, enabled by the
/// `DDM_CACHE_FAULT` environment variable. Torture tests use these to
/// prove a process dying mid-publish can never leave a torn
/// `tu-<hash>.json` behind: the next run must recompute and produce
/// byte-identical output with zero invalidations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CacheFault {
    /// Abort after writing half of the first entry's bytes to its temp
    /// file (a torn temp, never a torn final).
    KillMidWrite,
    /// Abort after fully writing the first entry's temp file but before
    /// renaming it over the final name (a complete but unpublished temp).
    KillPreRename,
}

/// The fault selected by `DDM_CACHE_FAULT`, read once per process.
/// Unset or unrecognized values disable injection.
fn cache_fault() -> Option<CacheFault> {
    static FAULT: std::sync::OnceLock<Option<CacheFault>> = std::sync::OnceLock::new();
    *FAULT.get_or_init(|| match std::env::var("DDM_CACHE_FAULT").as_deref() {
        Ok("kill-mid-write") => Some(CacheFault::KillMidWrite),
        Ok("kill-pre-rename") => Some(CacheFault::KillPreRename),
        _ => None,
    })
}

/// Atomically publishes one cache entry: the document is written to a
/// process-unique temp file inside `dir`, then renamed over the final
/// `tu-<hash>.json`. Readers therefore observe either no entry or a
/// complete one — a crash between the write and the rename leaves only
/// a dangling temp, which [`sweep_dangling_temps`] removes on the next
/// open. Best-effort like all cache I/O: any failure simply means the
/// entry is recomputed next time.
fn publish_entry(dir: &Path, source_hash: u64, doc: &str) {
    let tmp = dir.join(format!(
        "tu-{}.json.tmp.{}",
        hash_hex(source_hash),
        std::process::id()
    ));
    let written = (|| -> std::io::Result<()> {
        use std::io::Write as _;
        let mut f = std::fs::File::create(&tmp)?;
        if cache_fault() == Some(CacheFault::KillMidWrite) {
            f.write_all(&doc.as_bytes()[..doc.len() / 2])?;
            let _ = f.sync_all();
            std::process::abort();
        }
        f.write_all(doc.as_bytes())?;
        Ok(())
    })();
    match written {
        Ok(()) => {
            if cache_fault() == Some(CacheFault::KillPreRename) {
                std::process::abort();
            }
            let _ = std::fs::rename(&tmp, cache_path(dir, source_hash));
        }
        Err(_) => {
            let _ = std::fs::remove_file(&tmp);
        }
    }
}

/// Minimum age (by mtime) before [`sweep_dangling_temps`] removes a
/// dangling temp. A temp younger than this may belong to a live sibling
/// writer mid-publish — deleting it would kill that writer's rename and
/// force a recompute, which a daemon re-probing every epoch would do
/// constantly. A crashed writer's temp ages past the gate and is
/// collected on a later open; until then it is harmless garbage.
const TEMP_SWEEP_MIN_AGE: std::time::Duration = std::time::Duration::from_secs(60);

/// Whether a dangling temp is old enough to sweep. Falls back to
/// sweeping (the historical behavior) when the filesystem reports no
/// mtime; a temp whose mtime sits in the future is treated as fresh.
fn temp_old_enough(entry: &std::fs::DirEntry) -> bool {
    let Ok(modified) = entry.metadata().and_then(|m| m.modified()) else {
        return true;
    };
    match std::time::SystemTime::now().duration_since(modified) {
        Ok(age) => age >= TEMP_SWEEP_MIN_AGE,
        Err(_) => false,
    }
}

/// Removes dangling `tu-*.json.tmp.*` and `analysis.snap.tmp.*` files
/// left by a crashed writer. Runs when a cache directory is opened for
/// probing. Only temps older than [`TEMP_SWEEP_MIN_AGE`] are removed,
/// so a live concurrent writer's in-flight temp survives the probe and
/// its rename still publishes; fresh temps are skipped silently and
/// collected by a later open once they age past the gate.
fn sweep_dangling_temps(dir: &Path, telemetry: &Telemetry) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let snap_tmp = format!("{SNAPSHOT_FILE}.tmp.");
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if (name.starts_with("tu-") && name.contains(".json.tmp")) || name.starts_with(&snap_tmp) {
            if !temp_old_enough(&entry) {
                continue;
            }
            let _ = std::fs::remove_file(entry.path());
            telemetry.event(EventClass::Observational, "cache_temp_swept", || {
                vec![("temp", name.as_ref().into())]
            });
        }
    }
}

/// Classifies a [`TuModule::from_json`] rejection into the cache
/// invalidation reasons the flight recorder reports. Anything that is
/// not one of the three envelope mismatches is a corrupt or truncated
/// document (including torn writes and dangling-reference records).
fn invalidation_reason(err: &str) -> &'static str {
    match err {
        "format version mismatch" => "version_skew",
        "configuration fingerprint mismatch" => "config_fingerprint",
        "source hash mismatch" => "source_hash",
        _ => "corrupt",
    }
}

/// Decides whether the persisted fixpoint can be replayed verbatim over
/// the freshly linked program, given the summary diff of the edit.
///
/// The argument (see DESIGN.md §5i): unchanged TUs contribute records
/// identical to the snapshot's. A stable class space means every class,
/// method, member, and dispatch-table id is preserved, and the root set
/// (which depends only on `main` and the library-class virtual
/// overrides) is preserved too — provided `main` itself did not appear.
/// Free-function names are globally unique, so matching each stored
/// reachable function's display name at its stored id proves the id
/// assignment of the whole reachable region survived; requiring that no
/// reachable name was edited or removed proves each replayed summary is
/// the one the fixpoint converged over. By induction on the worklist
/// rounds the new reachable closure, its schedule, and the liveness
/// facts it derives equal the stored ones exactly. Everything outside
/// the reachable region (added, removed, or edited unreachable
/// functions) can, by definition, never be pulled in: its only entry
/// points are calls from reachable functions, all of which are
/// unchanged.
fn fixpoint_reusable(snap: &AnalysisSnapshot, delta: &LinkDelta, program: &Program) -> bool {
    if !delta.class_space_stable() {
        return false;
    }
    if snap.class_count as usize != program.class_count()
        || snap.function_count as usize > program.function_count()
    {
        return false;
    }
    let named = |list: &[String], name: &str| {
        list.binary_search_by(|n| n.as_str().cmp(name)).is_ok()
    };
    // A newly appearing `main` would change the root set without ever
    // being named by the stored reachable region.
    if named(&delta.fns_added, "main") {
        return false;
    }
    for (id, name) in &snap.reachable_names {
        let id = *id as usize;
        if id >= program.function_count() {
            return false;
        }
        if named(&delta.fns_changed, name) || named(&delta.fns_removed, name) {
            return false;
        }
        if program.func_display_name(FuncId::from_index(id)) != *name {
            return false;
        }
    }
    true
}

impl ProjectPipeline {
    /// Runs the multi-TU pipeline over `inputs` (name, source) pairs.
    ///
    /// `cache_dir`, when set and the engine is [`Engine::Summary`],
    /// enables the persistent module cache: entries are looked up by
    /// content hash before the per-TU front end runs, and every freshly
    /// computed module is written back. Cache I/O is best-effort — an
    /// unreadable, corrupt, version-mismatched, or fingerprint-mismatched
    /// entry counts as an invalidation and is recomputed (and
    /// overwritten), never trusted.
    ///
    /// # Errors
    ///
    /// [`ProjectError::Tu`] for the first failing TU (by input order,
    /// independent of worker scheduling), [`ProjectError::Link`] for
    /// cross-TU definition conflicts.
    #[allow(clippy::too_many_arguments)]
    pub fn run(
        inputs: &[(String, String)],
        config: AnalysisConfig,
        algorithm: Algorithm,
        jobs: usize,
        engine: Engine,
        cache_dir: Option<&Path>,
        telemetry: &Telemetry,
    ) -> Result<ProjectPipeline, ProjectError> {
        Self::run_epoch(inputs, config, algorithm, jobs, engine, cache_dir, telemetry, 0)
            .map(|snapshot| ProjectPipeline { snapshot })
    }

    /// [`ProjectPipeline::run`] for serve mode: the same pipeline, but
    /// the result is returned as a bare [`EpochSnapshot`] stamped with
    /// `epoch`, ready to publish through an
    /// [`EpochCell`](crate::EpochCell).
    ///
    /// The snapshot stores the deterministic counters read off
    /// `telemetry` at the end of the run, so a serve builder should pass
    /// a fresh handle per epoch (a handle shared across runs would
    /// accumulate).
    ///
    /// # Errors
    ///
    /// Exactly as [`ProjectPipeline::run`].
    #[allow(clippy::too_many_arguments)]
    pub fn run_epoch(
        inputs: &[(String, String)],
        config: AnalysisConfig,
        algorithm: Algorithm,
        jobs: usize,
        engine: Engine,
        cache_dir: Option<&Path>,
        telemetry: &Telemetry,
        epoch: u64,
    ) -> Result<Arc<EpochSnapshot>, ProjectError> {
        let walks_before = body_walk_count();
        let fingerprint = config_fingerprint(algorithm);
        let refine = algorithm == Algorithm::Pta;
        let cache = match engine {
            Engine::Summary => cache_dir,
            // The walk engine re-walks every body, so it needs every
            // parse regardless; it neither reads nor writes the cache.
            Engine::Walk => None,
        };

        // --- Cache probe: content-hash every input, load what we can.
        // A valid analysis snapshot short-circuits the per-TU JSON probe
        // for every unchanged TU (its module decodes straight from the
        // snapshot); changed TUs still go through the JSON probe, so the
        // summary cache keeps its hit/miss/invalidation semantics. ---
        let frontend_start = Instant::now();
        let snap_fingerprint = snapshot_fingerprint(&config, algorithm);
        let mut hits = 0u64;
        let mut invalidations = 0u64;
        let hashes: Vec<u64> = inputs
            .iter()
            .map(|(_, source)| fnv1a64(source.as_bytes()))
            .collect();
        let mut snapshot: Option<AnalysisSnapshot> = None;
        // Rendered summary-entry size per TU, filled by whichever path
        // first learns it (snapshot, cache entry on disk, or the
        // write-back render). `None` means nobody rendered it yet; the
        // metrics histogram renders on demand for those.
        let mut byte_lens: Vec<Option<u64>> = vec![None; inputs.len()];
        // The snapshot's stored modules, moved (not cloned) out of the
        // envelope: unchanged TUs take theirs during the probe, leaving
        // `Some` behind exactly at changed positions — the previous-side
        // modules the summary diff needs.
        let mut snap_modules: Vec<Option<TuModule>> = Vec::new();
        let mut modules: Vec<Option<TuModule>> = {
            let _probe = telemetry.span(LANE_MAIN, || {
                format!("cache probe ({} TUs)", inputs.len())
            });
            if let Some(dir) = cache {
                sweep_dangling_temps(dir, telemetry);
                // Snapshot outcomes differ cold vs warm, so every
                // snapshot event is obs class, like the probe events.
                match AnalysisSnapshot::load(dir, &snap_fingerprint) {
                    Ok(snap) if snap.source_hashes.len() == inputs.len() => {
                        telemetry.event(EventClass::Observational, "snapshot_loaded", || {
                            vec![
                                ("tus", snap.source_hashes.len().into()),
                                ("functions", u64::from(snap.function_count).into()),
                            ]
                        });
                        snapshot = Some(snap);
                        let snap = snapshot.as_mut().expect("just set");
                        snap_modules =
                            std::mem::take(&mut snap.modules).into_iter().map(Some).collect();
                    }
                    Ok(_) => {
                        telemetry.event(EventClass::Observational, "snapshot_rejected", || {
                            vec![("reason", "tu_count".into())]
                        });
                    }
                    Err(reason) => {
                        // A plainly absent snapshot is the ordinary cold
                        // case, not worth an event.
                        if reason != "missing" {
                            telemetry.event(
                                EventClass::Observational,
                                "snapshot_rejected",
                                || vec![("reason", reason.as_str().into())],
                            );
                        }
                    }
                }
            }
            inputs
                .iter()
                .zip(&hashes)
                .enumerate()
                .map(|(i, ((file, _), &hash))| {
                    let dir = cache?;
                    if let Some(snap) = &snapshot {
                        if snap.source_hashes[i] == hash {
                            // Unchanged since the snapshot: its module is
                            // already in memory and is moved out, not
                            // cloned. Keyed by content, so a renamed file
                            // still hits. The entry size was recorded
                            // when the snapshot was written, so the hit
                            // costs no JSON render.
                            let mut module =
                                snap_modules[i].take().expect("snapshot module taken once");
                            module.file = file.clone();
                            let bytes = snap.summary_bytes[i];
                            byte_lens[i] = Some(bytes);
                            telemetry.event(EventClass::Observational, "tu_cache_hit", || {
                                vec![
                                    ("file", file.as_str().into()),
                                    ("hash", hash_hex(hash).into()),
                                    ("bytes", bytes.into()),
                                ]
                            });
                            hits += 1;
                            return Some(module);
                        }
                    }
                    let doc = match std::fs::read_to_string(cache_path(dir, hash)) {
                        Ok(doc) => doc,
                        Err(_) => {
                            // Cache outcomes differ cold vs warm by
                            // definition, so every probe event is obs
                            // class (the det stream must be identical
                            // across cache states).
                            telemetry.event(EventClass::Observational, "tu_cache_miss", || {
                                vec![("file", file.as_str().into()), ("hash", hash_hex(hash).into())]
                            });
                            return None;
                        }
                    };
                    match TuModule::from_json(&doc, &fingerprint, hash) {
                        Ok(mut module) => {
                            // Entries are keyed by content, not by path:
                            // the same bytes under a new name hit.
                            module.file = file.clone();
                            hits += 1;
                            byte_lens[i] = Some(doc.len() as u64);
                            telemetry.event(EventClass::Observational, "tu_cache_hit", || {
                                vec![
                                    ("file", file.as_str().into()),
                                    ("hash", hash_hex(hash).into()),
                                    ("bytes", doc.len().into()),
                                ]
                            });
                            Some(module)
                        }
                        Err(err) => {
                            invalidations += 1;
                            telemetry.event(
                                EventClass::Observational,
                                "tu_cache_invalidated",
                                || {
                                    vec![
                                        ("file", file.as_str().into()),
                                        ("hash", hash_hex(hash).into()),
                                        ("reason", invalidation_reason(&err).into()),
                                    ]
                                },
                            );
                            None
                        }
                    }
                })
                .collect()
        };
        let misses = inputs.len() as u64 - hits;
        if cache.is_some() {
            telemetry.event(EventClass::Observational, "cache_probe_done", || {
                vec![
                    ("tus", inputs.len().into()),
                    ("hits", hits.into()),
                    ("misses", misses.into()),
                    ("invalidated", invalidations.into()),
                ]
            });
            telemetry.metrics(|m| {
                m.counter_add("cache/hits", hits);
                m.counter_add("cache/misses", misses);
                m.counter_add("cache/invalidations", invalidations);
            });
        }

        // --- Per-TU front end, sharded across the worker pool. Results
        // land in input order; the first error by input index wins, no
        // matter which worker hit it first. ---
        let todo: Vec<usize> = (0..inputs.len()).filter(|&i| modules[i].is_none()).collect();
        let mut parsed: Vec<Option<Program>> = inputs.iter().map(|_| None).collect();
        {
            use std::sync::atomic::{AtomicUsize, Ordering};
            use std::sync::Mutex;

            let _front = telemetry.span(LANE_MAIN, || {
                format!("tu front end ({} of {} TUs)", todo.len(), inputs.len())
            });
            let workers = jobs.max(1).min(todo.len().max(1));
            let next = AtomicUsize::new(0);
            type TuOutcome = Result<(TuModule, Program), PipelineError>;
            let slots: Vec<Mutex<Option<TuOutcome>>> =
                todo.iter().map(|_| Mutex::new(None)).collect();

            std::thread::scope(|scope| {
                for w in 0..workers {
                    let lane = u32::try_from(w + 1).unwrap_or(u32::MAX);
                    let next = &next;
                    let slots = &slots;
                    let todo = &todo;
                    scope.spawn(move || loop {
                        let n = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&i) = todo.get(n) else {
                            break;
                        };
                        let (file, source) = &inputs[i];
                        let _tu_span = telemetry.span(lane, || format!("tu {file}"));
                        let outcome = (|| {
                            let unit = parse(source)?;
                            let program = Program::build(&unit)?;
                            let summary = ProgramSummary::build(&program, refine, 1);
                            let map = SourceMap::new(file.clone(), source.clone());
                            let module = TuModule::extract(&unit, &program, &summary, &map);
                            Ok((module, program))
                        })();
                        *slots[n].lock().expect("tu slot poisoned") = Some(outcome);
                    });
                }
            });

            for (n, slot) in slots.into_iter().enumerate() {
                let i = todo[n];
                let outcome = slot
                    .into_inner()
                    .expect("tu slot poisoned")
                    .expect("every TU is analysed exactly once");
                match outcome {
                    Ok((module, program)) => {
                        modules[i] = Some(module);
                        parsed[i] = Some(program);
                    }
                    Err(error) => {
                        return Err(ProjectError::Tu {
                            file: inputs[i].0.clone(),
                            error,
                        });
                    }
                }
            }
        }
        let mut modules: Vec<TuModule> = modules
            .into_iter()
            .map(|m| m.expect("every TU has a module after the front end"))
            .collect();

        // --- Write back the freshly computed modules (best-effort). ---
        if let Some(dir) = cache {
            let _write = telemetry.span(LANE_MAIN, || {
                format!("cache write ({} entries)", todo.len())
            });
            let _ = std::fs::create_dir_all(dir);
            for &i in &todo {
                let doc = modules[i].to_json(&fingerprint);
                byte_lens[i] = Some(doc.len() as u64);
                publish_entry(dir, hashes[i], &doc);
                telemetry.event(EventClass::Observational, "tu_cache_publish", || {
                    vec![
                        ("file", inputs[i].0.as_str().into()),
                        ("hash", hash_hex(hashes[i]).into()),
                        ("bytes", doc.len().into()),
                    ]
                });
            }
        }

        // TU summary sizes, recorded for *every* module (not just the
        // written-back ones) in input order, so the bucket counts are
        // identical cold or warm. Sizes learned during the probe or the
        // write-back are reused; only modules nobody rendered (the
        // cacheless run) pay for a render here, and only when metrics
        // collection is on.
        telemetry.metrics(|m| {
            for (module, len) in modules.iter().zip(&byte_lens) {
                let bytes =
                    len.unwrap_or_else(|| module.to_json(&fingerprint).len() as u64);
                m.hist_record("frontend/tu_summary_bytes", bytes);
            }
        });

        // --- Summary diff vs the snapshot, over borrowed module lists.
        // An unchanged TU's previous side is the current module itself
        // (content-identical by hash), so nothing is cloned and a
        // content-identical TU under a new name is not a change; a
        // changed TU's previous side is the module left behind in
        // `snap_modules`. The delta drives the fixpoint-reuse gate
        // below. ---
        let frontend_ns = frontend_start.elapsed().as_nanos() as u64;
        let delta: Option<LinkDelta> = snapshot.as_ref().map(|_| {
            let previous: Vec<&TuModule> = snap_modules
                .iter()
                .enumerate()
                .map(|(i, old)| old.as_ref().unwrap_or(&modules[i]))
                .collect();
            link_delta_ref(&previous, &modules)
        });
        if let Some(delta) = &delta {
            telemetry.event(EventClass::Observational, "link_delta", || {
                vec![
                    ("tus_changed", delta.tus_changed.len().into()),
                    ("fns_added", delta.fns_added.len().into()),
                    ("fns_removed", delta.fns_removed.len().into()),
                    ("fns_changed", delta.fns_changed.len().into()),
                    (
                        "classes_changed",
                        (delta.classes_added.len()
                            + delta.classes_removed.len()
                            + delta.classes_changed.len())
                        .into(),
                    ),
                    (
                        "class_space_stable",
                        u64::from(delta.class_space_stable()).into(),
                    ),
                ]
            });
        }

        // --- Link. ---
        let link_start = Instant::now();
        let link_span = telemetry.span(LANE_MAIN, || format!("link ({} TUs)", modules.len()));
        let linked = link_with(&modules, &parsed, telemetry).map_err(ProjectError::Link)?;
        drop(link_span);
        let link_ns = link_start.elapsed().as_nanos() as u64;

        #[cfg(debug_assertions)]
        if engine == Engine::Summary && hits == 0 {
            // A cold link must resolve to exactly the summary a fresh
            // walk of the linked program would extract; the cache layer
            // then inherits this identity byte for byte.
            let fresh = ProgramSummary::build(linked.program(), refine, 1);
            for i in 0..linked.program().function_count() {
                let fid = ddm_hierarchy::FuncId::from_index(i);
                debug_assert_eq!(
                    linked.summary().function(fid).ok(),
                    fresh.function(fid).ok(),
                    "linked summary diverged from a fresh walk (fn {i})"
                );
            }
            debug_assert_eq!(linked.summary().globals().ok(), fresh.globals().ok());
        }

        // --- Whole-program phases on the linked model, identical to the
        // single-TU pipeline. ---
        let program = linked.program();
        let cg_options = CallGraphOptions {
            algorithm,
            library_classes: config
                .library_classes
                .iter()
                .filter_map(|n| program.class_by_name(n))
                .collect(),
            jobs,
        };
        let attribute = |e: TypeError| -> ProjectError {
            let file = linked
                .locate_error(&e)
                .map(|t| modules[t].file.clone())
                .unwrap_or_else(|| "<linked program>".to_string());
            ProjectError::Tu {
                file,
                error: PipelineError::Type(e),
            }
        };
        // --- Fixpoint-reuse gate: with a snapshot in hand and a summary
        // diff that provably cannot perturb the converged fixpoint, the
        // stored call graph and liveness are replayed instead of re-run.
        // `Everything` builds no schedule (and is trivial to rebuild),
        // so it never replays. ---
        let reusable = match (&snapshot, &delta) {
            (Some(snap), Some(delta))
                if engine == Engine::Summary && algorithm != Algorithm::Everything =>
            {
                fixpoint_reusable(snap, delta, program)
            }
            _ => false,
        };
        if let Some(delta) = &delta {
            let frontier = delta.frontier_len();
            let total = program.function_count();
            telemetry.event(EventClass::Observational, "fixpoint_invalidate", || {
                vec![
                    ("frontier_fns", frontier.into()),
                    ("total_fns", total.into()),
                    ("reused", u64::from(reusable).into()),
                ]
            });
        }

        let mut callgraph_ns = 0u64;
        let mut liveness_ns = 0u64;
        let mut fixpoint_reused = false;
        // The converged schedule and scan counters of whichever path
        // ran, kept for the snapshot write-back.
        let mut schedule: Option<CgSchedule> = None;
        let mut scan_counters: Option<Counters> = None;
        let (callgraph, liveness, used) = match engine {
            Engine::Walk => {
                let lookup = MemberLookup::new(program);
                let cg_start = Instant::now();
                let cg_span = telemetry.span(LANE_MAIN, || "callgraph".to_string());
                let callgraph = CallGraph::build_with(program, &lookup, &cg_options, telemetry)
                    .map_err(attribute)?;
                drop(cg_span);
                callgraph_ns = cg_start.elapsed().as_nanos() as u64;
                let live_start = Instant::now();
                let liveness = DeadMemberAnalysis::new(program, config.clone())
                    .run_jobs_with(&callgraph, jobs, telemetry)
                    .map_err(attribute)?;
                liveness_ns = live_start.elapsed().as_nanos() as u64;
                let used_span = telemetry.span(LANE_MAIN, || "used classes".to_string());
                let used = used_classes(program, &lookup).map_err(attribute)?;
                drop(used_span);
                (callgraph, liveness, used)
            }
            Engine::Summary => {
                let mut replayed: Option<(CallGraph, Liveness)> = None;
                if reusable {
                    let snap = snapshot.as_ref().expect("the gate implies a snapshot");
                    let cg_start = Instant::now();
                    let cg_span = telemetry.span(LANE_MAIN, || "callgraph".to_string());
                    match CallGraph::from_parts(
                        snap.callgraph.clone(),
                        program.function_count(),
                        program.class_count(),
                    ) {
                        Ok(callgraph) => {
                            replay_schedule(&callgraph, &snap.schedule, telemetry);
                            drop(cg_span);
                            callgraph_ns = cg_start.elapsed().as_nanos() as u64;
                            let live_start = Instant::now();
                            let liveness = Liveness::from_parts(
                                &snap.liveness,
                                Some(linked.summary().member_index().clone()),
                            );
                            replay_liveness_telemetry(
                                telemetry,
                                callgraph.reachable_count(),
                                &snap.liveness_counters,
                            );
                            liveness_ns = live_start.elapsed().as_nanos() as u64;
                            schedule = Some(snap.schedule.clone());
                            scan_counters = Some(snap.liveness_counters);
                            fixpoint_reused = true;
                            replayed = Some((callgraph, liveness));
                        }
                        Err(reason) => {
                            // Structurally impossible after the gate; if
                            // it ever fires, fall back to a fresh run.
                            drop(cg_span);
                            telemetry.event(
                                EventClass::Observational,
                                "snapshot_rejected",
                                || vec![("reason", reason.as_str().into())],
                            );
                        }
                    }
                }
                let (callgraph, liveness) = match replayed {
                    Some(pair) => pair,
                    None => {
                        let cg_start = Instant::now();
                        let cg_span = telemetry.span(LANE_MAIN, || "callgraph".to_string());
                        let (callgraph, fresh_schedule) = CallGraph::build_from_summary_schedule(
                            program,
                            linked.summary(),
                            &cg_options,
                            telemetry,
                        )
                        .map_err(attribute)?;
                        drop(cg_span);
                        callgraph_ns = cg_start.elapsed().as_nanos() as u64;
                        let live_start = Instant::now();
                        let (liveness, fresh_counters) =
                            DeadMemberAnalysis::new(program, config.clone())
                                .run_summary_counted(linked.summary(), &callgraph, telemetry)
                                .map_err(attribute)?;
                        liveness_ns = live_start.elapsed().as_nanos() as u64;
                        schedule = Some(fresh_schedule);
                        scan_counters = Some(fresh_counters);
                        (callgraph, liveness)
                    }
                };
                let used_span = telemetry.span(LANE_MAIN, || "used classes".to_string());
                let used = linked.summary().used_classes(program).map_err(attribute)?;
                drop(used_span);
                (callgraph, liveness, used)
            }
        };

        // Debug builds cross-check every replayed fixpoint against a
        // fresh one, bit for bit: graph, schedule, classification,
        // origins, and scan counters must all agree, or the reuse gate
        // let an unsound edit through.
        #[cfg(debug_assertions)]
        if fixpoint_reused {
            let quiet = Telemetry::disabled();
            let (fresh_cg, mut fresh_schedule) = CallGraph::build_from_summary_schedule(
                program,
                linked.summary(),
                &cg_options,
                &quiet,
            )
            .map_err(attribute)?;
            debug_assert_eq!(
                fresh_cg, callgraph,
                "replayed call graph diverged from a fresh fixpoint"
            );
            // The interner digests the whole program — unreachable and
            // freshly added functions included — so its size may
            // legitimately drift under a gate-passing edit. It feeds
            // exec stats only, never the deterministic stream.
            if let Some(stored) = schedule.as_ref() {
                fresh_schedule.interned_symbols = stored.interned_symbols;
                fresh_schedule.arena_bytes = stored.arena_bytes;
            }
            debug_assert_eq!(
                Some(&fresh_schedule),
                schedule.as_ref(),
                "replayed schedule diverged from a fresh fixpoint"
            );
            let (fresh_liveness, fresh_counters) = DeadMemberAnalysis::new(program, config.clone())
                .run_summary_counted(linked.summary(), &fresh_cg, &quiet)
                .map_err(attribute)?;
            debug_assert_eq!(
                fresh_liveness, liveness,
                "replayed liveness diverged from a fresh scan"
            );
            debug_assert_eq!(
                fresh_liveness.to_parts().origins,
                liveness.to_parts().origins,
                "replayed origins diverged from a fresh scan"
            );
            debug_assert_eq!(
                Some(fresh_counters),
                scan_counters,
                "replayed scan counters diverged from a fresh scan"
            );
        }

        let snapshot_warm = u64::from(snapshot.is_some());
        let reused_fns = if fixpoint_reused {
            callgraph.reachable_count() as u64
        } else {
            0
        };
        let frontier_fns = delta.as_ref().map_or(0, |d| d.frontier_len() as u64);
        telemetry.update_stats(|s| {
            s.engine = engine.to_string();
            s.jobs = jobs as u64;
            s.bodies_walked += body_walk_count() - walks_before;
            s.tu_modules = inputs.len() as u64;
            s.tu_cache_hits = hits;
            s.tu_cache_misses = misses;
            s.tu_cache_invalidations = invalidations;
            s.tus_parsed = todo.len() as u64;
            s.tus_summarized = todo.len() as u64;
            s.frontend_ns += frontend_ns;
            s.link_ns += link_ns;
            s.callgraph_ns += callgraph_ns;
            s.liveness_ns += liveness_ns;
            s.snapshot_warm_starts += snapshot_warm;
            s.snapshot_reused_fns += reused_fns;
            s.snapshot_frontier_fns += frontier_fns;
        });
        let mut tail = Counters::default();
        tail.reachable_functions = callgraph.reachable_count() as u64;
        tail.callgraph_edges = callgraph.edge_count() as u64;
        tail.instantiated_classes = callgraph.instantiated().len() as u64;
        for (cid, class) in program.classes() {
            for idx in 0..class.members.len() {
                let m = ddm_hierarchy::MemberRef::new(cid, idx);
                if liveness.is_unclassifiable(m) {
                    tail.members_unclassifiable += 1;
                } else if liveness.is_live(m) {
                    tail.members_live += 1;
                } else {
                    tail.members_dead += 1;
                }
            }
        }
        telemetry.add_counters(&tail);
        emit_classification_event(telemetry, &tail);

        // --- Snapshot write-back (best-effort, atomic). Skipped when
        // nothing changed and the fixpoint was replayed: the published
        // snapshot is already byte-identical to what we would write. ---
        if let Some(dir) = cache {
            let unchanged = delta.as_ref().is_some_and(|d| d.is_empty());
            if !(unchanged && fixpoint_reused) {
                if let (Some(schedule), Some(scan_counters)) = (&schedule, &scan_counters) {
                    let _snap_span =
                        telemetry.span(LANE_MAIN, || "snapshot write".to_string());
                    let snap = AnalysisSnapshot {
                        fingerprint: snap_fingerprint.clone(),
                        source_hashes: hashes.clone(),
                        summary_bytes: modules
                            .iter()
                            .zip(&byte_lens)
                            .map(|(m, len)| {
                                len.unwrap_or_else(|| m.to_json(&fingerprint).len() as u64)
                            })
                            .collect(),
                        // The module list is dead after this point, so
                        // the snapshot takes it instead of cloning it.
                        modules: std::mem::take(&mut modules),
                        reachable_names: callgraph
                            .reachable()
                            .map(|f| (f.index() as u32, program.func_display_name(f)))
                            .collect(),
                        class_count: program.class_count() as u32,
                        function_count: program.function_count() as u32,
                        callgraph: callgraph.to_parts(),
                        schedule: schedule.clone(),
                        liveness: liveness.to_parts(),
                        liveness_counters: *scan_counters,
                    };
                    let _ = std::fs::create_dir_all(dir);
                    snap.save(dir);
                    telemetry.event(EventClass::Observational, "snapshot_publish", || {
                        vec![
                            ("tus", snap.source_hashes.len().into()),
                            ("functions", u64::from(snap.function_count).into()),
                        ]
                    });
                }
            }
        }

        let mut sources = SourceSet::new();
        for (file, source) in inputs {
            sources.push(SourceMap::new(file.clone(), source.clone()));
        }
        Ok(Arc::new(EpochSnapshot {
            epoch,
            sources,
            files: inputs.iter().map(|(f, _)| f.clone()).collect(),
            linked,
            callgraph,
            liveness,
            used,
            config,
            engine,
            counters: telemetry.counters(),
        }))
    }

    /// A shared handle to the underlying immutable snapshot (a refcount
    /// bump — this is what serve-mode readers clone per query).
    pub fn snapshot(&self) -> Arc<EpochSnapshot> {
        Arc::clone(&self.snapshot)
    }

    /// The per-TU source maps, in input order.
    pub fn sources(&self) -> &SourceSet {
        self.snapshot.sources()
    }

    /// The input file names, in input order.
    pub fn files(&self) -> &[String] {
        self.snapshot.files()
    }

    /// The linked whole-program view with its per-TU provenance.
    pub fn linked(&self) -> &LinkedProgram {
        self.snapshot.linked()
    }

    /// The linked program model.
    pub fn program(&self) -> &Program {
        self.snapshot.program()
    }

    /// The call graph that scoped the analysis.
    pub fn callgraph(&self) -> &CallGraph {
        self.snapshot.callgraph()
    }

    /// The per-member classification.
    pub fn liveness(&self) -> &Liveness {
        self.snapshot.liveness()
    }

    /// The used-class set.
    pub fn used(&self) -> &HashSet<ClassId> {
        self.snapshot.used()
    }

    /// The configuration the run used.
    pub fn config(&self) -> &AnalysisConfig {
        self.snapshot.config()
    }

    /// The engine the run used.
    pub fn engine(&self) -> Engine {
        self.snapshot.engine()
    }

    /// Builds the report over the linked program.
    pub fn report(&self) -> Report {
        self.snapshot.report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HEADER: &str = "\
class Sensor {
public:
    Sensor(int s) : reading(s), stale(0) { }
    virtual ~Sensor() { }
    virtual int read() { return reading; }
    int reading;
    int stale;
};
";

    fn inputs() -> Vec<(String, String)> {
        vec![
            (
                "main.cpp".to_string(),
                format!("{HEADER}int poll(Sensor* s);\nint main() {{ Sensor s(4); return poll(&s); }}"),
            ),
            (
                "poll.cpp".to_string(),
                format!("{HEADER}int poll(Sensor* s) {{ return s->read(); }}"),
            ),
        ]
    }

    fn run(
        inputs: &[(String, String)],
        engine: Engine,
        jobs: usize,
        cache: Option<&Path>,
    ) -> ProjectPipeline {
        ProjectPipeline::run(
            inputs,
            AnalysisConfig::default(),
            Algorithm::Rta,
            jobs,
            engine,
            cache,
            &Telemetry::disabled(),
        )
        .expect("project run")
    }

    #[test]
    fn engines_and_worker_counts_agree_on_the_linked_report() {
        let inputs = inputs();
        let reference = run(&inputs, Engine::Summary, 1, None).report().to_string();
        assert!(reference.contains("Sensor"));
        for engine in [Engine::Walk, Engine::Summary] {
            for jobs in [1, 4] {
                let got = run(&inputs, engine, jobs, None).report().to_string();
                assert_eq!(got, reference, "engine={engine} jobs={jobs}");
            }
        }
    }

    #[test]
    fn single_tu_project_matches_the_single_tu_pipeline() {
        let src = format!("{HEADER}int main() {{ Sensor s(4); return s.read(); }}");
        let single = crate::AnalysisPipeline::from_source(&src)
            .unwrap()
            .report()
            .to_string();
        let project = run(
            &[("one.cpp".to_string(), src)],
            Engine::Summary,
            1,
            None,
        )
        .report()
        .to_string();
        assert_eq!(project, single);
    }

    #[test]
    fn warm_run_reuses_every_module_and_matches_cold() {
        let dir = std::env::temp_dir().join(format!("ddm-proj-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let inputs = inputs();

        let cold_tel = Telemetry::enabled();
        let cold = ProjectPipeline::run(
            &inputs,
            AnalysisConfig::default(),
            Algorithm::Rta,
            2,
            Engine::Summary,
            Some(&dir),
            &cold_tel,
        )
        .unwrap();
        let cold_stats = cold_tel.stats();
        assert_eq!(cold_stats.tu_cache_hits, 0);
        assert_eq!(cold_stats.tus_summarized, 2);

        let warm_tel = Telemetry::enabled();
        let warm = ProjectPipeline::run(
            &inputs,
            AnalysisConfig::default(),
            Algorithm::Rta,
            2,
            Engine::Summary,
            Some(&dir),
            &warm_tel,
        )
        .unwrap();
        let warm_stats = warm_tel.stats();
        assert_eq!(warm_stats.tu_cache_hits, 2);
        assert_eq!(warm_stats.tus_parsed, 0);
        assert_eq!(warm_stats.tus_summarized, 0);

        assert_eq!(warm.report().to_string(), cold.report().to_string());
        assert_eq!(
            format!("{:?}", warm_tel.counters().rows()),
            format!("{:?}", cold_tel.counters().rows()),
            "deterministic counters must not see the cache"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn per_tu_errors_carry_their_file() {
        let mut bad = inputs();
        bad[1].1 = "class {".to_string();
        let err = ProjectPipeline::run(
            &bad,
            AnalysisConfig::default(),
            Algorithm::Rta,
            4,
            Engine::Summary,
            None,
            &Telemetry::disabled(),
        )
        .unwrap_err();
        match err {
            ProjectError::Tu { file, error } => {
                assert_eq!(file, "poll.cpp");
                assert!(matches!(error, PipelineError::Parse(_)));
            }
            other => panic!("expected a TU error, got {other}"),
        }
    }

    #[test]
    fn link_conflicts_surface_as_link_errors() {
        let a = ("a.cpp".to_string(), "int twice() { return 1; }\nint main() { return twice(); }".to_string());
        let b = ("b.cpp".to_string(), "int twice() { return 2; }".to_string());
        let err = ProjectPipeline::run(
            &[a, b],
            AnalysisConfig::default(),
            Algorithm::Rta,
            1,
            Engine::Summary,
            None,
            &Telemetry::disabled(),
        )
        .unwrap_err();
        assert!(matches!(err, ProjectError::Link(_)));
        assert!(err.to_string().contains("function `twice` defined differently"));
    }
}
