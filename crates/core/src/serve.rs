//! `ddm serve` — the long-running analysis daemon.
//!
//! Speaks line-delimited JSON over a reader/writer pair (the CLI wires
//! up stdin/stdout): one request per line, one response line per
//! request, responses in request order. Requests:
//!
//! | request | effect |
//! |---|---|
//! | `{"cmd":"analyze","files":[...]}` | set the file list, build epoch 1 (synchronous) |
//! | `{"cmd":"notify","changed":[...]}` | rebuild in the background; add `"wait":1` to block until published |
//! | `{"cmd":"report"}` | the analysis report + call-graph line |
//! | `{"cmd":"explain","member":"C::m"}` | the provenance text for one member |
//! | `{"cmd":"stats"}` | the deterministic-counters section of `--stats` |
//! | `{"cmd":"epoch"}` | current epoch id, rebuild status, last build timings |
//! | `{"cmd":"shutdown"}` | acknowledge and exit cleanly (EOF works too) |
//!
//! Every `report`/`explain`/`stats` response is **byte-identical to a
//! fresh one-shot `ddm` invocation over the same file state** — the
//! queries render through the exact functions the CLI prints through
//! ([`render_report`](crate::EpochSnapshot::render_report),
//! [`render_explain`](crate::EpochSnapshot::render_explain),
//! [`render_counters`](crate::EpochSnapshot::render_counters)), so the
//! oracle holds by
//! construction. Every response carries the epoch id it was answered
//! from; a query that lands during a background rebuild is served from
//! the previous epoch and tagged with that epoch's id.
//!
//! Threading: N reader threads answer queries from the current
//! [`EpochSnapshot`](crate::EpochSnapshot) via the [`EpochCell`] swap
//! cell (the only shared
//! mutable point, locked for a refcount bump only); one builder thread
//! consumes change notifications, re-reads the files, runs the
//! incremental [`ProjectPipeline`] path (snapshot probe → link delta →
//! fixpoint replay or re-solve) with a **fresh telemetry handle per
//! epoch**, and publishes the next epoch atomically. Readers are never
//! blocked by a rebuild. A writer thread reorders responses by request
//! sequence number so concurrent readers cannot interleave output.
//!
//! Each epoch's flight-recorder events are drained to `--log-out`
//! (appended, with an `epoch_published` marker per epoch) when the
//! build finishes, so the bounded event log is a per-epoch bound, not a
//! process-lifetime one, and any overflow ends that epoch's stream with
//! an explicit `log_truncated` record.

use crate::analysis::AnalysisConfig;
use crate::epoch::EpochCell;
use crate::pipeline::Engine;
use crate::project::ProjectPipeline;
use ddm_callgraph::Algorithm;
use ddm_telemetry::{json, EventClass, Telemetry};
use std::collections::BTreeMap;
use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Configuration for one [`serve`] session (the analysis knobs the CLI
/// would otherwise pass per invocation, fixed for the daemon's life).
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Analysis configuration (§3.2/§3.3 policies, library classes).
    pub config: AnalysisConfig,
    /// Call-graph builder.
    pub algorithm: Algorithm,
    /// Worker count: sizes the analysis pool *and* the query reader
    /// pool.
    pub jobs: usize,
    /// Analysis engine (only [`Engine::Summary`] consults the cache).
    pub engine: Engine,
    /// Persistent cache directory; enables the PR-9 incremental path
    /// (per-TU summary cache + `analysis.snap` warm starts).
    pub cache_dir: Option<PathBuf>,
    /// Flight-recorder NDJSON sink, drained once per epoch (appended;
    /// truncated when the session starts).
    pub log_out: Option<PathBuf>,
    /// Event-class filter for `log_out` (`None` = both classes).
    pub log_filter: Option<EventClass>,
}

/// A query answerable from the published snapshot alone.
enum Query {
    Report,
    Explain(String),
    Stats,
}

impl Query {
    fn cmd(&self) -> &'static str {
        match self {
            Query::Report => "report",
            Query::Explain(_) => "explain",
            Query::Stats => "stats",
        }
    }
}

/// One rebuild request for the builder thread. `done` is present for
/// synchronous requests (`analyze`, `notify` with `wait`): the main
/// loop blocks on it so the response carries the new epoch.
struct BuildJob {
    files: Vec<String>,
    done: Option<Sender<Result<u64, String>>>,
}

/// Observational facts about the most recent build, surfaced by the
/// `epoch` query.
#[derive(Debug, Default, Clone)]
struct BuildInfo {
    build_ns: u64,
    snapshot_warm_starts: u64,
    events_dropped: u64,
    error: Option<String>,
}

/// State shared between the main loop, the reader pool, and the
/// builder.
struct Shared {
    cell: EpochCell,
    /// Last published epoch id (0 = nothing published).
    epoch: AtomicU64,
    /// Builds queued or running; `> 0` renders as `"building":true`.
    pending_builds: AtomicU64,
    last_build: Mutex<BuildInfo>,
}

const NO_EPOCH_MSG: &str = "no analysis epoch published yet; send analyze first";

fn ok_output(cmd: &str, epoch: u64, output: &str) -> String {
    format!(
        "{{\"ok\":true,\"cmd\":\"{cmd}\",\"epoch\":{epoch},\"output\":\"{}\"}}",
        json::escape(output)
    )
}

fn error_line(cmd: &str, kind: &str, message: &str) -> String {
    format!(
        "{{\"ok\":false,\"cmd\":\"{cmd}\",\"error\":\"{kind}\",\"message\":\"{}\"}}",
        json::escape(message)
    )
}

/// Answers one query against the currently published epoch.
fn answer_query(shared: &Shared, query: &Query) -> String {
    let Some(snap) = shared.cell.load() else {
        return error_line(query.cmd(), "no_epoch", NO_EPOCH_MSG);
    };
    let epoch = snap.epoch();
    match query {
        Query::Report => ok_output("report", epoch, &snap.render_report(false)),
        Query::Stats => ok_output("stats", epoch, &snap.render_counters()),
        Query::Explain(spec) => match snap.render_explain(spec) {
            Ok(text) => ok_output("explain", epoch, &text),
            Err(e) => format!(
                "{{\"ok\":false,\"cmd\":\"explain\",\"epoch\":{epoch},\"error\":\"{}\",\"message\":\"{}\"}}",
                e.kind(),
                json::escape(e.message())
            ),
        },
    }
}

fn epoch_response(shared: &Shared) -> String {
    let epoch = shared.epoch.load(Ordering::SeqCst);
    let building = shared.pending_builds.load(Ordering::SeqCst) > 0;
    let info = shared.last_build.lock().expect("build info poisoned").clone();
    let mut out = format!(
        "{{\"ok\":true,\"cmd\":\"epoch\",\"epoch\":{epoch},\"building\":{building},\
         \"build_ns\":{},\"snapshot_warm_starts\":{},\"events_dropped\":{}",
        info.build_ns, info.snapshot_warm_starts, info.events_dropped
    );
    if let Some(err) = &info.error {
        out.push_str(&format!(",\"last_error\":\"{}\"", json::escape(err)));
    }
    out.push('}');
    out
}

/// Reads the files, runs one epoch build with a fresh telemetry handle,
/// drains the epoch's events to the log sink, and publishes the result.
fn run_build(opts: &ServeOptions, files: &[String], shared: &Shared) -> Result<u64, String> {
    let mut inputs = Vec::with_capacity(files.len());
    for file in files {
        let source =
            std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;
        inputs.push((file.clone(), source));
    }
    let telemetry = Telemetry::configured(opts.log_out.is_some(), false);
    let epoch = shared.epoch.load(Ordering::SeqCst) + 1;
    let started = Instant::now();
    let snap = ProjectPipeline::run_epoch(
        &inputs,
        opts.config.clone(),
        opts.algorithm,
        opts.jobs.max(1),
        opts.engine,
        opts.cache_dir.as_deref(),
        &telemetry,
        epoch,
    )
    .map_err(|e| e.to_string())?;
    let build_ns = started.elapsed().as_nanos() as u64;
    telemetry.event(EventClass::Observational, "epoch_published", || {
        vec![("epoch", epoch.into()), ("build_ns", build_ns.into())]
    });
    // Drain before reading the stats so any drop count this epoch
    // produced is already folded into `events_dropped`.
    let drained = opts
        .log_out
        .as_ref()
        .map(|_| telemetry.drain_events_ndjson(opts.log_filter));
    let stats = telemetry.stats();
    if let (Some(path), Some(payload)) = (&opts.log_out, drained) {
        let appended = std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(path)
            .and_then(|mut f| f.write_all(payload.as_bytes()));
        if let Err(e) = appended {
            eprintln!("error: cannot append to {}: {e}", path.display());
        }
    }
    shared.cell.store(snap);
    shared.epoch.store(epoch, Ordering::SeqCst);
    let mut info = shared.last_build.lock().expect("build info poisoned");
    info.build_ns = build_ns;
    info.snapshot_warm_starts = stats.snapshot_warm_starts;
    info.events_dropped += stats.events_dropped;
    info.error = None;
    Ok(epoch)
}

/// Whether a request's `wait` field asks for a synchronous rebuild
/// (`"wait":1` and `"wait":true` both count).
fn wants_wait(request: &json::Value) -> bool {
    match request.get("wait") {
        Some(v) => v.as_bool() == Some(true) || v.as_int().is_some_and(|i| i != 0),
        None => false,
    }
}

/// Runs the daemon until `shutdown` or EOF on `input`. See the module
/// docs for the protocol.
///
/// # Errors
///
/// Only transport failures (a read error on `input`, every response
/// consumer gone) — protocol-level problems are answered as
/// `{"ok":false,...}` response lines, and build failures leave the
/// previous epoch published.
pub fn serve(
    opts: &ServeOptions,
    input: impl BufRead,
    output: impl Write + Send,
) -> Result<(), String> {
    if let Some(path) = &opts.log_out {
        // The session log is append-per-epoch; start it empty.
        std::fs::write(path, "").map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    let shared = Shared {
        cell: EpochCell::new(),
        epoch: AtomicU64::new(0),
        pending_builds: AtomicU64::new(0),
        last_build: Mutex::new(BuildInfo::default()),
    };
    let shared = &shared;

    let (write_tx, write_rx) = channel::<(u64, String)>();
    let (query_tx, query_rx) = channel::<(u64, Query)>();
    let (build_tx, build_rx) = channel::<BuildJob>();
    let query_rx = Arc::new(Mutex::new(query_rx));

    std::thread::scope(|scope| -> Result<(), String> {
        // Writer: reorders responses by sequence number so the output
        // order is the request order no matter which reader finished
        // first.
        scope.spawn(move || {
            let mut output = output;
            let mut next = 0u64;
            let mut pending: BTreeMap<u64, String> = BTreeMap::new();
            while let Ok((seq, line)) = write_rx.recv() {
                pending.insert(seq, line);
                let mut wrote = false;
                while let Some(line) = pending.remove(&next) {
                    let _ = output.write_all(line.as_bytes());
                    let _ = output.write_all(b"\n");
                    next += 1;
                    wrote = true;
                }
                if wrote {
                    let _ = output.flush();
                }
            }
            let _ = output.flush();
        });

        // Reader pool: pull queries off the shared channel, answer from
        // the published snapshot, never touch the builder.
        for _ in 0..opts.jobs.max(1) {
            let query_rx = Arc::clone(&query_rx);
            let write_tx = write_tx.clone();
            scope.spawn(move || loop {
                let job = query_rx.lock().expect("query channel poisoned").recv();
                let Ok((seq, query)) = job else {
                    break;
                };
                if write_tx.send((seq, answer_query(shared, &query))).is_err() {
                    break;
                }
            });
        }

        // Builder: the only thread that runs the pipeline or stores the
        // cell. Processes jobs in order; each success publishes the
        // next epoch.
        scope.spawn(move || {
            while let Ok(job) = build_rx.recv() {
                let result = run_build(opts, &job.files, shared);
                if let Err(e) = &result {
                    shared.last_build.lock().expect("build info poisoned").error =
                        Some(e.clone());
                }
                shared.pending_builds.fetch_sub(1, Ordering::SeqCst);
                if let Some(done) = job.done {
                    let _ = done.send(result);
                }
            }
        });

        let mut seq = 0u64;
        let mut files: Vec<String> = Vec::new();
        let respond = |seq: u64, line: String| -> Result<(), String> {
            write_tx
                .send((seq, line))
                .map_err(|_| "response writer gone".to_string())
        };
        let build = |files: Vec<String>| -> Result<Result<u64, String>, String> {
            let (done_tx, done_rx) = channel();
            shared.pending_builds.fetch_add(1, Ordering::SeqCst);
            build_tx
                .send(BuildJob {
                    files,
                    done: Some(done_tx),
                })
                .map_err(|_| "builder gone".to_string())?;
            done_rx.recv().map_err(|_| "builder gone".to_string())
        };

        for line in input.lines() {
            let line = line.map_err(|e| format!("request read failed: {e}"))?;
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            let this_seq = seq;
            seq += 1;
            let request = match json::parse(trimmed) {
                Ok(v) => v,
                Err(e) => {
                    respond(
                        this_seq,
                        error_line("?", "bad_request", &format!("invalid request JSON: {e}")),
                    )?;
                    continue;
                }
            };
            let Some(cmd) = request.get("cmd").and_then(json::Value::as_str) else {
                respond(
                    this_seq,
                    error_line("?", "bad_request", "request needs a string cmd field"),
                )?;
                continue;
            };
            match cmd {
                "analyze" => {
                    let listed: Option<Vec<String>> =
                        request.get("files").and_then(json::Value::as_arr).map(|arr| {
                            arr.iter()
                                .filter_map(|v| v.as_str().map(str::to_string))
                                .collect()
                        });
                    let new_files = match listed {
                        Some(f) if !f.is_empty() => f,
                        _ => {
                            respond(
                                this_seq,
                                error_line(
                                    "analyze",
                                    "bad_request",
                                    "analyze needs a non-empty files array of strings",
                                ),
                            )?;
                            continue;
                        }
                    };
                    files = new_files;
                    let response = match build(files.clone())? {
                        Ok(epoch) => format!(
                            "{{\"ok\":true,\"cmd\":\"analyze\",\"epoch\":{epoch},\"tus\":{}}}",
                            files.len()
                        ),
                        Err(msg) => error_line("analyze", "analysis", &msg),
                    };
                    respond(this_seq, response)?;
                }
                "notify" => {
                    if shared.epoch.load(Ordering::SeqCst) == 0 {
                        respond(this_seq, error_line("notify", "no_epoch", NO_EPOCH_MSG))?;
                        continue;
                    }
                    let Some(changed) = request.get("changed").and_then(json::Value::as_arr)
                    else {
                        respond(
                            this_seq,
                            error_line("notify", "bad_request", "notify needs a changed array"),
                        )?;
                        continue;
                    };
                    let unknown = changed.iter().find_map(|v| match v.as_str() {
                        Some(name) if files.iter().any(|f| f == name) => None,
                        Some(name) => Some(name.to_string()),
                        None => Some("<non-string entry>".to_string()),
                    });
                    if let Some(name) = unknown {
                        respond(
                            this_seq,
                            error_line(
                                "notify",
                                "bad_request",
                                &format!("changed file '{name}' is not part of the analyzed set"),
                            ),
                        )?;
                        continue;
                    }
                    if wants_wait(&request) {
                        let response = match build(files.clone())? {
                            Ok(epoch) => format!(
                                "{{\"ok\":true,\"cmd\":\"notify\",\"epoch\":{epoch},\"building\":false}}"
                            ),
                            Err(msg) => error_line("notify", "analysis", &msg),
                        };
                        respond(this_seq, response)?;
                    } else {
                        shared.pending_builds.fetch_add(1, Ordering::SeqCst);
                        build_tx
                            .send(BuildJob {
                                files: files.clone(),
                                done: None,
                            })
                            .map_err(|_| "builder gone".to_string())?;
                        let epoch = shared.epoch.load(Ordering::SeqCst);
                        respond(
                            this_seq,
                            format!(
                                "{{\"ok\":true,\"cmd\":\"notify\",\"epoch\":{epoch},\"building\":true}}"
                            ),
                        )?;
                    }
                }
                "report" => {
                    query_tx
                        .send((this_seq, Query::Report))
                        .map_err(|_| "reader pool gone".to_string())?;
                }
                "explain" => {
                    let Some(member) = request.get("member").and_then(json::Value::as_str) else {
                        respond(
                            this_seq,
                            error_line(
                                "explain",
                                "bad_request",
                                "explain needs a member field (\"Class::member\")",
                            ),
                        )?;
                        continue;
                    };
                    query_tx
                        .send((this_seq, Query::Explain(member.to_string())))
                        .map_err(|_| "reader pool gone".to_string())?;
                }
                "stats" => {
                    query_tx
                        .send((this_seq, Query::Stats))
                        .map_err(|_| "reader pool gone".to_string())?;
                }
                "epoch" => {
                    respond(this_seq, epoch_response(shared))?;
                }
                "shutdown" => {
                    let epoch = shared.epoch.load(Ordering::SeqCst);
                    respond(
                        this_seq,
                        format!("{{\"ok\":true,\"cmd\":\"shutdown\",\"epoch\":{epoch}}}"),
                    )?;
                    break;
                }
                other => {
                    respond(
                        this_seq,
                        error_line(other, "bad_request", &format!("unknown cmd '{other}'")),
                    )?;
                }
            }
        }

        // Closing the channels retires the pool, the builder, and then
        // the writer (whose last sender is a reader's clone); the scope
        // joins them all before returning.
        drop(query_tx);
        drop(build_tx);
        drop(write_tx);
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn temp_project(tag: &str) -> (std::path::PathBuf, Vec<String>) {
        let dir = std::env::temp_dir().join(format!("ddm-serve-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let main = dir.join("main.cpp");
        let lib = dir.join("lib.cpp");
        std::fs::write(
            &main,
            "class Gauge { public: Gauge(int v) : value(v), spare(0) { } \
             int get() { return value; } int value; int spare; };\n\
             int reading();\nint main() { return reading(); }\n",
        )
        .expect("write main");
        std::fs::write(
            &lib,
            "class Gauge { public: Gauge(int v) : value(v), spare(0) { } \
             int get() { return value; } int value; int spare; };\n\
             int reading() { Gauge g(7); return g.get(); }\n",
        )
        .expect("write lib");
        let files = vec![
            main.to_string_lossy().into_owned(),
            lib.to_string_lossy().into_owned(),
        ];
        (dir, files)
    }

    fn default_opts() -> ServeOptions {
        ServeOptions {
            config: AnalysisConfig::default(),
            algorithm: Algorithm::Rta,
            jobs: 2,
            engine: Engine::Summary,
            cache_dir: None,
            log_out: None,
            log_filter: None,
        }
    }

    fn drive(opts: &ServeOptions, requests: &[String]) -> Vec<json::Value> {
        let input = requests.join("\n") + "\n";
        let mut out: Vec<u8> = Vec::new();
        serve(opts, Cursor::new(input), &mut out).expect("serve");
        let text = String::from_utf8(out).expect("utf8");
        text.lines().map(|l| json::parse(l).expect("response json")).collect()
    }

    fn field<'v>(v: &'v json::Value, key: &str) -> &'v json::Value {
        v.get(key).unwrap_or_else(|| panic!("missing {key}"))
    }

    #[test]
    fn protocol_round_trip_matches_the_pipeline_byte_for_byte() {
        let (dir, files) = temp_project("roundtrip");
        let opts = default_opts();
        let file_list = files
            .iter()
            .map(|f| format!("\"{}\"", json::escape(f)))
            .collect::<Vec<_>>()
            .join(",");
        let responses = drive(
            &opts,
            &[
                format!("{{\"cmd\":\"analyze\",\"files\":[{file_list}]}}"),
                "{\"cmd\":\"report\"}".to_string(),
                "{\"cmd\":\"explain\",\"member\":\"Gauge::value\"}".to_string(),
                "{\"cmd\":\"stats\"}".to_string(),
                "{\"cmd\":\"epoch\"}".to_string(),
                "{\"cmd\":\"shutdown\"}".to_string(),
            ],
        );
        assert_eq!(responses.len(), 6);
        for r in &responses {
            assert_eq!(field(r, "ok").as_bool(), Some(true), "{}", r.render());
        }

        // The oracle: a fresh one-shot run over the same files.
        let inputs: Vec<(String, String)> = files
            .iter()
            .map(|f| (f.clone(), std::fs::read_to_string(f).expect("read")))
            .collect();
        let telemetry = Telemetry::enabled();
        let oracle = ProjectPipeline::run(
            &inputs,
            AnalysisConfig::default(),
            Algorithm::Rta,
            2,
            Engine::Summary,
            None,
            &telemetry,
        )
        .expect("oracle run")
        .snapshot();

        assert_eq!(
            field(&responses[1], "output").as_str().expect("report output"),
            oracle.render_report(false)
        );
        assert_eq!(
            field(&responses[2], "output").as_str().expect("explain output"),
            oracle.render_explain("Gauge::value").expect("explain")
        );
        assert_eq!(
            field(&responses[3], "output").as_str().expect("stats output"),
            format!(
                "== deterministic counters ==\n{}",
                telemetry.counters().render_table()
            )
        );
        for r in &responses[1..4] {
            assert_eq!(field(r, "epoch").as_int(), Some(1));
        }
        assert_eq!(field(&responses[4], "epoch").as_int(), Some(1));
        assert_eq!(field(&responses[4], "building").as_bool(), Some(false));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn queries_before_analyze_and_bad_requests_are_typed_errors() {
        let (dir, files) = temp_project("errors");
        let opts = default_opts();
        let file_list = files
            .iter()
            .map(|f| format!("\"{}\"", json::escape(f)))
            .collect::<Vec<_>>()
            .join(",");
        let responses = drive(
            &opts,
            &[
                "{\"cmd\":\"report\"}".to_string(),
                "not json".to_string(),
                "{\"cmd\":\"frobnicate\"}".to_string(),
                "{\"cmd\":\"notify\",\"changed\":[]}".to_string(),
                format!("{{\"cmd\":\"analyze\",\"files\":[{file_list}]}}"),
                "{\"cmd\":\"explain\",\"member\":\"plain\"}".to_string(),
                "{\"cmd\":\"explain\",\"member\":\"Gauge::nope\"}".to_string(),
                format!(
                    "{{\"cmd\":\"notify\",\"changed\":[\"unrelated.cpp\"],\"wait\":1}}"
                ),
                "{\"cmd\":\"shutdown\"}".to_string(),
            ],
        );
        assert_eq!(responses.len(), 9);
        let error_of = |i: usize| field(&responses[i], "error").as_str().expect("error kind");
        assert_eq!(error_of(0), "no_epoch");
        assert_eq!(error_of(1), "bad_request");
        assert_eq!(error_of(2), "bad_request");
        assert_eq!(error_of(3), "no_epoch", "notify before analyze");
        assert_eq!(field(&responses[4], "ok").as_bool(), Some(true));
        assert_eq!(error_of(5), "bad_request", "malformed explain spec");
        assert!(
            field(&responses[5], "message")
                .as_str()
                .expect("message")
                .contains("expected Class::member")
        );
        assert_eq!(error_of(6), "not_found", "unknown member");
        assert!(
            field(&responses[6], "message")
                .as_str()
                .expect("message")
                .contains("no data member")
        );
        assert_eq!(error_of(7), "bad_request", "unknown changed file");
        assert_eq!(field(&responses[8], "ok").as_bool(), Some(true));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn notify_wait_republishes_and_bumps_the_epoch() {
        let (dir, files) = temp_project("notify");
        let cache = dir.join("cache");
        let mut opts = default_opts();
        opts.cache_dir = Some(cache);
        let file_list = files
            .iter()
            .map(|f| format!("\"{}\"", json::escape(f)))
            .collect::<Vec<_>>()
            .join(",");
        // The file edit has to happen between requests; with a static
        // request script the second build sees the same bytes, which is
        // still a legitimate epoch bump (same content, new epoch id).
        let responses = drive(
            &opts,
            &[
                format!("{{\"cmd\":\"analyze\",\"files\":[{file_list}]}}"),
                format!(
                    "{{\"cmd\":\"notify\",\"changed\":[\"{}\"],\"wait\":1}}",
                    json::escape(&files[0])
                ),
                "{\"cmd\":\"report\"}".to_string(),
                "{\"cmd\":\"epoch\"}".to_string(),
            ],
        );
        assert_eq!(responses.len(), 4, "EOF shuts down cleanly without a shutdown cmd");
        assert_eq!(field(&responses[0], "epoch").as_int(), Some(1));
        assert_eq!(field(&responses[1], "epoch").as_int(), Some(2));
        assert_eq!(field(&responses[1], "building").as_bool(), Some(false));
        assert_eq!(field(&responses[2], "epoch").as_int(), Some(2));
        assert_eq!(
            field(&responses[3], "snapshot_warm_starts").as_int(),
            Some(1),
            "the rebuild must warm-start from the analysis snapshot"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
