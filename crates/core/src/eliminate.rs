//! Dead-data-member *elimination*: the space optimization the paper
//! motivates ("we believe that this optimization should be incorporated
//! in any optimizing compiler", §4.4).
//!
//! Given an analysis result, [`eliminate`] produces transformed source
//! in which eligible dead members are removed from their classes, their
//! constructor-initializer entries are dropped, statements that store
//! into them are reduced to their (side-effecting) right-hand sides, and
//! any remaining accesses — which can only occur in unreachable code —
//! are replaced by the member type's zero value so the program still
//! compiles. Removing a member shrinks every object of every class that
//! contains it, which is precisely the saving the paper's Table 2 /
//! Figure 4 quantify.
//!
//! The transformation is deliberately conservative: a dead member is
//! *eligible* only when rewriting is provably safe on syntactic grounds
//! (see [`eliminate`] for the exact rules). Ineligible dead members are
//! simply kept — dropping an optimization opportunity is always sound.

use crate::liveness::Liveness;
use crate::pipeline::AnalysisPipeline;
use ddm_cppfront::ast::{
    Block, Expr, ExprKind, LocalInit, Stmt, StmtKind, TranslationUnit, Type, TypeKind,
};
use ddm_cppfront::print_unit;
use ddm_hierarchy::{MemberRef, Program};
use ddm_telemetry::{EventClass, Telemetry};

use std::collections::{HashMap, HashSet};

/// The outcome of a dead-member elimination run.
#[derive(Debug, Clone)]
pub struct Elimination {
    /// Transformed source (pretty-printed).
    pub source: String,
    /// `Class::member` names that were removed.
    pub removed: Vec<String>,
    /// Dead members that were kept because rewriting them was not
    /// provably safe (each with the reason).
    pub kept: Vec<(String, KeepReason)>,
}

/// Why a dead member was not eliminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeepReason {
    /// Another (live) member, local, global, parameter, function, or
    /// enumerator shares the name, so syntactic rewriting could damage
    /// a live entity.
    NameCollision,
    /// The member's type has no zero literal (e.g. a by-value class).
    NoDefaultValue,
    /// A constructor initializes it with a side-effecting expression.
    ImpureInitializer,
    /// A store into it appears in a non-statement position.
    EmbeddedStore,
    /// A pointer-to-member expression names it.
    PointerToMember,
}

impl std::fmt::Display for KeepReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            KeepReason::NameCollision => "name collision",
            KeepReason::NoDefaultValue => "no zero value for the member type",
            KeepReason::ImpureInitializer => "side-effecting constructor initializer",
            KeepReason::EmbeddedStore => "store in expression position",
            KeepReason::PointerToMember => "named by a pointer-to-member expression",
        })
    }
}

/// Eliminates eligible dead members from the analysed program.
///
/// # Examples
///
/// ```
/// use ddm_core::{eliminate, AnalysisPipeline};
///
/// let run = AnalysisPipeline::from_source(
///     "class A { public: int keep; int drop; };\n\
///      int main() { A a; a.drop = 9; return a.keep; }",
/// )?;
/// let result = eliminate(&run);
/// assert_eq!(result.removed, vec!["A::drop"]);
/// assert!(!result.source.contains("drop"));
/// # Ok::<(), ddm_core::PipelineError>(())
/// ```
///
/// Eligibility rules (all must hold for a dead member `C::m`):
///
/// 1. no live member anywhere in the program is also named `m`, and no
///    local, parameter, global, free function, or enumerator is named
///    `m` (then every syntactic occurrence of `m` denotes a dead member
///    and may be rewritten);
/// 2. the member's type has a zero literal (integers, floats, pointers);
/// 3. every constructor-initializer entry for `m` has side-effect-free
///    arguments;
/// 4. every assignment whose target accesses `m` is a statement by
///    itself (so it can be reduced to its right-hand side);
/// 5. no pointer-to-member expression names `m`.
pub fn eliminate(pipeline: &AnalysisPipeline) -> Elimination {
    eliminate_with(pipeline, &Telemetry::disabled())
}

/// [`eliminate`] with telemetry: every removal and every keep-with-reason
/// decision lands in the flight recorder. Elimination reads only the
/// analysed program and its liveness verdicts — all of them engine- and
/// jobs-invariant — and its own output is sorted, so every elimination
/// event is deterministic class.
pub fn eliminate_with(pipeline: &AnalysisPipeline, telemetry: &Telemetry) -> Elimination {
    let program = pipeline.program();
    let tu = pipeline.translation_unit();
    let liveness = pipeline.liveness();

    let mut scan = Scan::default();
    scan.collect(tu);

    let mut removed = Vec::new();
    let mut kept = Vec::new();
    // name → default expression for its (unique) dead member.
    let mut eliminable: HashMap<String, Expr> = HashMap::new();

    for (cid, class) in program.classes() {
        for (idx, member) in class.members.iter().enumerate() {
            let mref = MemberRef::new(cid, idx);
            if !liveness.is_dead(mref) {
                continue;
            }
            let qualified = format!("{}::{}", class.name, member.name);
            match check_eligibility(program, liveness, &scan, &member.name, &member.ty) {
                Err(reason) => kept.push((qualified, reason)),
                Ok(default) => {
                    eliminable.insert(member.name.clone(), default);
                    removed.push(qualified);
                }
            }
        }
    }

    let mut transformed = tu.clone();
    let names: HashSet<String> = eliminable.keys().cloned().collect();
    for class in &mut transformed.classes {
        class.data_members.retain(|m| !names.contains(&m.name));
        for method in &mut class.methods {
            method.inits.retain(|init| !names.contains(&init.name));
            if let Some(body) = &mut method.body {
                rewrite_block(body, &eliminable);
            }
        }
    }
    for func in &mut transformed.functions {
        if let Some(body) = &mut func.body {
            rewrite_block(body, &eliminable);
        }
    }
    for global in &mut transformed.globals {
        if let Some(init) = &mut global.init {
            rewrite_expr(init, &eliminable);
        }
    }

    removed.sort();
    kept.sort_by(|a, b| a.0.cmp(&b.0));
    for member in &removed {
        telemetry.event(EventClass::Deterministic, "eliminate_remove", || {
            vec![("member", member.as_str().into())]
        });
    }
    for (member, reason) in &kept {
        telemetry.event(EventClass::Deterministic, "eliminate_keep", || {
            vec![
                ("member", member.as_str().into()),
                ("reason", reason.to_string().into()),
            ]
        });
    }
    telemetry.event(EventClass::Deterministic, "elimination_done", || {
        vec![("removed", removed.len().into()), ("kept", kept.len().into())]
    });
    telemetry.metrics(|m| {
        m.gauge_set("eliminate/removed", removed.len() as i64);
        m.gauge_set("eliminate/kept", kept.len() as i64);
    });
    Elimination {
        source: print_unit(&transformed),
        removed,
        kept,
    }
}

/// Names bound to things that are not data members, plus structural
/// facts needed for the eligibility check.
#[derive(Default)]
struct Scan {
    non_member_names: HashSet<String>,
    ptr_to_member_names: HashSet<String>,
    embedded_store_names: HashSet<String>,
    impure_init_names: HashSet<String>,
}

impl Scan {
    fn collect(&mut self, tu: &TranslationUnit) {
        for g in &tu.globals {
            self.non_member_names.insert(g.name.clone());
        }
        for e in &tu.enums {
            for (n, _) in &e.variants {
                self.non_member_names.insert(n.clone());
            }
        }
        for f in &tu.functions {
            self.non_member_names.insert(f.name.clone());
            self.function(f);
        }
        for c in &tu.classes {
            for m in &c.methods {
                self.function(m);
                for init in &m.inits {
                    if !init.args.iter().all(is_pure) {
                        self.impure_init_names.insert(init.name.clone());
                    }
                }
            }
        }
    }

    fn function(&mut self, f: &ddm_cppfront::ast::FunctionDecl) {
        for p in &f.params {
            self.non_member_names.insert(p.name.clone());
        }
        if let Some(body) = &f.body {
            self.block(body);
        }
    }

    fn block(&mut self, b: &Block) {
        for s in &b.stmts {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Expr(e) => {
                // A statement-level assignment's own store is fine; its
                // sub-expressions are scanned in expression position.
                if let ExprKind::Assign { lhs, rhs, .. } = &e.kind {
                    self.expr_skip_store_target(lhs);
                    self.expr(rhs);
                } else {
                    self.expr(e);
                }
            }
            StmtKind::Decl(d) => {
                self.non_member_names.insert(d.name.clone());
                match &d.init {
                    LocalInit::Default => {}
                    LocalInit::Expr(e) => self.expr(e),
                    LocalInit::Ctor(args) => args.iter().for_each(|a| self.expr(a)),
                }
            }
            StmtKind::If { cond, then, els } => {
                self.expr(cond);
                self.stmt(then);
                if let Some(e) = els {
                    self.stmt(e);
                }
            }
            StmtKind::While { cond, body } | StmtKind::DoWhile { body, cond } => {
                self.expr(cond);
                self.stmt(body);
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(i) = init {
                    self.stmt(i);
                }
                if let Some(c) = cond {
                    self.expr(c);
                }
                if let Some(st) = step {
                    self.expr(st);
                }
                self.stmt(body);
            }
            StmtKind::Switch { scrutinee, arms } => {
                self.expr(scrutinee);
                for arm in arms {
                    if let Some(v) = &arm.value {
                        self.expr(v);
                    }
                    for st in &arm.stmts {
                        self.stmt(st);
                    }
                }
            }
            StmtKind::Return(Some(e)) => self.expr(e),
            StmtKind::Block(b) => self.block(b),
            _ => {}
        }
    }

    /// Scans the target of a statement-level store: the final member
    /// access is the store itself (allowed), but its base is an ordinary
    /// expression.
    fn expr_skip_store_target(&mut self, lhs: &Expr) {
        match &lhs.kind {
            ExprKind::Member { base, .. } => self.expr(base),
            ExprKind::Ident(_) => {}
            other => {
                let _ = other;
                self.expr(lhs);
            }
        }
    }

    fn expr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::PtrToMember { member, .. } => {
                self.ptr_to_member_names.insert(member.clone());
            }
            ExprKind::Assign { lhs, rhs, .. } => {
                // An assignment in expression position: its target cannot
                // be reduced away.
                match &lhs.kind {
                    ExprKind::Member { name, base, .. } => {
                        self.embedded_store_names.insert(name.clone());
                        self.expr(base);
                    }
                    ExprKind::Ident(name) => {
                        self.embedded_store_names.insert(name.clone());
                    }
                    _ => self.expr(lhs),
                }
                self.expr(rhs);
            }
            _ => each_child(e, |child| self.expr(child)),
        }
    }
}

fn check_eligibility(
    program: &Program,
    liveness: &Liveness,
    scan: &Scan,
    name: &str,
    ty: &Type,
) -> Result<Expr, KeepReason> {
    // Rule 1: name uniqueness against live members and non-member names.
    if scan.non_member_names.contains(name) {
        return Err(KeepReason::NameCollision);
    }
    for (cid, class) in program.classes() {
        for (idx, m) in class.members.iter().enumerate() {
            if m.name == name && !liveness.is_dead(MemberRef::new(cid, idx)) {
                return Err(KeepReason::NameCollision);
            }
        }
        for &fid in &class.methods {
            if program.function(fid).name == name {
                return Err(KeepReason::NameCollision);
            }
        }
    }
    // Rule 2: a zero literal exists for the type.
    let default = default_expr(ty).ok_or(KeepReason::NoDefaultValue)?;
    // Rule 3: pure initializers only.
    if scan.impure_init_names.contains(name) {
        return Err(KeepReason::ImpureInitializer);
    }
    // Rule 4: no embedded stores.
    if scan.embedded_store_names.contains(name) {
        return Err(KeepReason::EmbeddedStore);
    }
    // Rule 5: never named by a pointer-to-member.
    if scan.ptr_to_member_names.contains(name) {
        return Err(KeepReason::PointerToMember);
    }
    Ok(default)
}

/// The zero literal for a member type, if one exists.
fn default_expr(ty: &Type) -> Option<Expr> {
    let kind = match &ty.kind {
        TypeKind::Bool | TypeKind::Char | TypeKind::Short | TypeKind::Int | TypeKind::Long => {
            ExprKind::IntLit(0)
        }
        TypeKind::Float | TypeKind::Double => ExprKind::FloatLit(0.0),
        TypeKind::Pointer(_) | TypeKind::MemberPointer { .. } => ExprKind::Null,
        _ => return None,
    };
    Some(Expr::new(kind, ddm_cppfront::Span::dummy()))
}

/// True when evaluating `e` has no side effects.
fn is_pure(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::IntLit(_)
        | ExprKind::FloatLit(_)
        | ExprKind::BoolLit(_)
        | ExprKind::CharLit(_)
        | ExprKind::StrLit(_)
        | ExprKind::Null
        | ExprKind::This
        | ExprKind::Ident(_)
        | ExprKind::SizeofType(_)
        | ExprKind::PtrToMember { .. } => true,
        ExprKind::Member { base, .. } => is_pure(base),
        ExprKind::Index { base, index } => is_pure(base) && is_pure(index),
        ExprKind::Unary { op, expr } => {
            use ddm_cppfront::ast::UnaryOp;
            !matches!(op, UnaryOp::PreInc | UnaryOp::PreDec) && is_pure(expr)
        }
        ExprKind::Binary { lhs, rhs, .. } => is_pure(lhs) && is_pure(rhs),
        ExprKind::Cond { cond, then, els } => is_pure(cond) && is_pure(then) && is_pure(els),
        ExprKind::Cast { expr, .. } => is_pure(expr),
        ExprKind::SizeofExpr(_) => true,
        ExprKind::PtrMemApply { base, ptr, .. } => is_pure(base) && is_pure(ptr),
        ExprKind::Comma { lhs, rhs } => is_pure(lhs) && is_pure(rhs),
        ExprKind::Postfix { .. }
        | ExprKind::Assign { .. }
        | ExprKind::Call { .. }
        | ExprKind::New { .. }
        | ExprKind::Delete { .. } => false,
    }
}

/// Applies a closure to every direct child expression.
fn each_child(e: &Expr, mut f: impl FnMut(&Expr)) {
    match &e.kind {
        ExprKind::Member { base, .. } => f(base),
        ExprKind::Index { base, index } => {
            f(base);
            f(index);
        }
        ExprKind::Call { callee, args } => {
            f(callee);
            args.iter().for_each(f);
        }
        ExprKind::Unary { expr, .. }
        | ExprKind::Postfix { expr, .. }
        | ExprKind::SizeofExpr(expr) => f(expr),
        ExprKind::Binary { lhs, rhs, .. } | ExprKind::Comma { lhs, rhs } => {
            f(lhs);
            f(rhs);
        }
        ExprKind::Assign { lhs, rhs, .. } => {
            f(lhs);
            f(rhs);
        }
        ExprKind::Cond { cond, then, els } => {
            f(cond);
            f(then);
            f(els);
        }
        ExprKind::Cast { expr, .. } | ExprKind::Delete { expr, .. } => f(expr),
        ExprKind::New {
            args, array_len, ..
        } => {
            args.iter().for_each(&mut f);
            if let Some(len) = array_len {
                f(len);
            }
        }
        ExprKind::PtrMemApply { base, ptr, .. } => {
            f(base);
            f(ptr);
        }
        _ => {}
    }
}

fn rewrite_block(b: &mut Block, eliminable: &HashMap<String, Expr>) {
    for s in &mut b.stmts {
        rewrite_stmt(s, eliminable);
    }
}

fn rewrite_stmt(s: &mut Stmt, eliminable: &HashMap<String, Expr>) {
    // First: a statement-level store into an eliminated member becomes
    // its right-hand side (kept for side effects) or an empty statement.
    if let StmtKind::Expr(e) = &mut s.kind {
        let target_name = match &e.kind {
            ExprKind::Assign { op, lhs, .. } if op.binary_op().is_none() => match &lhs.kind {
                ExprKind::Member { name, .. } => Some(name.clone()),
                ExprKind::Ident(name) => Some(name.clone()),
                _ => None,
            },
            _ => None,
        };
        if let Some(name) = target_name {
            if eliminable.contains_key(&name) {
                let ExprKind::Assign { lhs, rhs, .. } = &mut e.kind else {
                    unreachable!("matched above")
                };
                // The base of the removed access may itself have side
                // effects (e.g. `f()->m = rhs`); keep it via a comma.
                let base_effect = match &lhs.kind {
                    ExprKind::Member { base, .. } if !is_pure(base) => Some((**base).clone()),
                    _ => None,
                };
                let mut replacement = (**rhs).clone();
                rewrite_expr(&mut replacement, eliminable);
                s.kind = match (base_effect, is_pure(&replacement)) {
                    (None, true) => StmtKind::Empty,
                    (None, false) => StmtKind::Expr(replacement),
                    (Some(mut base), pure_rhs) => {
                        rewrite_expr(&mut base, eliminable);
                        if pure_rhs {
                            StmtKind::Expr(base)
                        } else {
                            let span = s.span;
                            StmtKind::Expr(Expr::new(
                                ExprKind::Comma {
                                    lhs: Box::new(base),
                                    rhs: Box::new(replacement),
                                },
                                span,
                            ))
                        }
                    }
                };
                return;
            }
        }
    }
    match &mut s.kind {
        StmtKind::Expr(e) => rewrite_expr(e, eliminable),
        StmtKind::Decl(d) => match &mut d.init {
            LocalInit::Default => {}
            LocalInit::Expr(e) => rewrite_expr(e, eliminable),
            LocalInit::Ctor(args) => args.iter_mut().for_each(|a| rewrite_expr(a, eliminable)),
        },
        StmtKind::If { cond, then, els } => {
            rewrite_expr(cond, eliminable);
            rewrite_stmt(then, eliminable);
            if let Some(e) = els {
                rewrite_stmt(e, eliminable);
            }
        }
        StmtKind::While { cond, body } | StmtKind::DoWhile { body, cond } => {
            rewrite_expr(cond, eliminable);
            rewrite_stmt(body, eliminable);
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            if let Some(i) = init {
                rewrite_stmt(i, eliminable);
            }
            if let Some(c) = cond {
                rewrite_expr(c, eliminable);
            }
            if let Some(st) = step {
                rewrite_expr(st, eliminable);
            }
            rewrite_stmt(body, eliminable);
        }
        StmtKind::Switch { scrutinee, arms } => {
            rewrite_expr(scrutinee, eliminable);
            for arm in arms {
                if let Some(v) = &mut arm.value {
                    rewrite_expr(v, eliminable);
                }
                for st in &mut arm.stmts {
                    rewrite_stmt(st, eliminable);
                }
            }
        }
        StmtKind::Return(Some(e)) => rewrite_expr(e, eliminable),
        StmtKind::Block(b) => rewrite_block(b, eliminable),
        _ => {}
    }
}

/// Replaces remaining accesses to eliminated members (which only occur
/// in unreachable code) with the member's zero value.
fn rewrite_expr(e: &mut Expr, eliminable: &HashMap<String, Expr>) {
    let replace_with = match &e.kind {
        ExprKind::Member { base, name, .. } if eliminable.contains_key(name) && is_pure(base) => {
            Some(eliminable[name].clone())
        }
        ExprKind::Ident(name) if eliminable.contains_key(name) => Some(eliminable[name].clone()),
        _ => None,
    };
    if let Some(mut replacement) = replace_with {
        replacement.span = e.span;
        *e = replacement;
        return;
    }
    // Impure-base member accesses keep the base evaluation via a comma.
    if let ExprKind::Member { base, name, .. } = &e.kind {
        if eliminable.contains_key(name) {
            let mut base = (**base).clone();
            rewrite_expr(&mut base, eliminable);
            let default = eliminable[name].clone();
            e.kind = ExprKind::Comma {
                lhs: Box::new(base),
                rhs: Box::new(default),
            };
            return;
        }
    }
    mutate_children(e, |child| rewrite_expr(child, eliminable));
}

fn mutate_children(e: &mut Expr, mut f: impl FnMut(&mut Expr)) {
    match &mut e.kind {
        ExprKind::Member { base, .. } => f(base),
        ExprKind::Index { base, index } => {
            f(base);
            f(index);
        }
        ExprKind::Call { callee, args } => {
            f(callee);
            args.iter_mut().for_each(f);
        }
        ExprKind::Unary { expr, .. }
        | ExprKind::Postfix { expr, .. }
        | ExprKind::SizeofExpr(expr) => f(expr),
        ExprKind::Binary { lhs, rhs, .. } | ExprKind::Comma { lhs, rhs } => {
            f(lhs);
            f(rhs);
        }
        ExprKind::Assign { lhs, rhs, .. } => {
            f(lhs);
            f(rhs);
        }
        ExprKind::Cond { cond, then, els } => {
            f(cond);
            f(then);
            f(els);
        }
        ExprKind::Cast { expr, .. } | ExprKind::Delete { expr, .. } => f(expr),
        ExprKind::New {
            args, array_len, ..
        } => {
            args.iter_mut().for_each(&mut f);
            if let Some(len) = array_len {
                f(len);
            }
        }
        ExprKind::PtrMemApply { base, ptr, .. } => {
            f(base);
            f(ptr);
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_elimination(src: &str) -> (AnalysisPipeline, Elimination) {
        let pipeline = AnalysisPipeline::from_source(src).expect("pipeline");
        let result = eliminate(&pipeline);
        (pipeline, result)
    }

    #[test]
    fn removes_write_only_member_and_its_stores() {
        let (_, r) = run_elimination(
            "class A { public: int live; int dead_field; };\n\
             int main() { A a; a.dead_field = 1; a.live = 2; return a.live; }",
        );
        assert_eq!(r.removed, vec!["A::dead_field"]);
        assert!(!r.source.contains("dead_field"), "{}", r.source);
        // The transformed program still analyzes and has nothing dead.
        let again = AnalysisPipeline::from_source(&r.source).expect("re-analyze");
        assert!(again.report().dead_member_names().is_empty());
    }

    #[test]
    fn store_with_side_effecting_rhs_keeps_the_call() {
        let (_, r) = run_elimination(
            "class A { public: int scratch; };\n\
             int counter = 0;\n\
             int tick() { counter = counter + 1; return counter; }\n\
             int main() { A a; a.scratch = tick(); return counter; }",
        );
        assert_eq!(r.removed, vec!["A::scratch"]);
        assert!(
            r.source.contains("tick()"),
            "call must survive:\n{}",
            r.source
        );
    }

    #[test]
    fn reads_in_unreachable_code_become_zero() {
        let (_, r) = run_elimination(
            "class A { public: int ghost; };\n\
             int spooky(A* a) { return a->ghost; }\n\
             int main() { A a; a.ghost = 5; return 0; }",
        );
        assert_eq!(r.removed, vec!["A::ghost"]);
        assert!(!r.source.contains("ghost"), "{}", r.source);
        assert!(AnalysisPipeline::from_source(&r.source).is_ok());
    }

    #[test]
    fn ctor_initializer_entries_are_dropped() {
        let (_, r) = run_elimination(
            "class A { public: int keep; int drop_me; A() : keep(1), drop_me(2) { } };\n\
             int main() { A a; return a.keep; }",
        );
        assert_eq!(r.removed, vec!["A::drop_me"]);
        assert!(!r.source.contains("drop_me"));
        let again = AnalysisPipeline::from_source(&r.source).expect("re-analyze");
        assert_eq!(again.program().class_count(), 1);
    }

    #[test]
    fn name_collision_with_live_member_blocks_elimination() {
        let (_, r) = run_elimination(
            "class A { public: int m; };\n\
             class B { public: int m; };\n\
             int main() { A a; B b; a.m = 1; return b.m; }",
        );
        // A::m is dead but shares its name with the live B::m.
        assert!(r.removed.is_empty());
        assert_eq!(r.kept.len(), 1);
        assert_eq!(r.kept[0].1, KeepReason::NameCollision);
    }

    #[test]
    fn local_variable_collision_blocks_elimination() {
        let (_, r) = run_elimination(
            "class A { public: int total; };\n\
             int main() { A a; a.total = 9; int total = 3; return total; }",
        );
        assert!(r.removed.is_empty());
        assert_eq!(r.kept[0].1, KeepReason::NameCollision);
    }

    #[test]
    fn class_typed_member_is_kept() {
        let (_, r) = run_elimination(
            "class Inner { public: int x; };\n\
             class A { public: Inner part; int z; };\n\
             int main() { A a; return a.z; }",
        );
        // `part` (class-typed) has no zero literal; Inner::x is dead but
        // eliminable, A::part is kept.
        assert!(r
            .kept
            .iter()
            .any(|(n, why)| n == "A::part" && *why == KeepReason::NoDefaultValue));
    }

    #[test]
    fn pointer_member_becomes_nullptr_in_unreachable_reads() {
        let (_, r) = run_elimination(
            "class Node { public: Node* stale_link; int v; };\n\
             Node* walk(Node* n) { return n->stale_link; }\n\
             int main() { Node n; n.stale_link = nullptr; return n.v; }",
        );
        assert!(r.removed.contains(&"Node::stale_link".to_string()));
        assert!(r.source.contains("nullptr"), "{}", r.source);
        assert!(AnalysisPipeline::from_source(&r.source).is_ok());
    }

    #[test]
    fn behaviour_is_preserved_on_figure_one() {
        let src = "
            class N { public: int mn1; int mn2; };
            class A { public: virtual int f() { return ma1; } int ma1; int ma2; int ma3; };
            class B : public A { public: virtual int f() { return mb1; } int mb1; N mb2; int mb3; int mb4; };
            class C : public A { public: virtual int f() { return mc1; } int mc1; };
            int foo(int* x) { return (*x) + 1; }
            int main() {
                A a; B b; C c; A* ap;
                a.ma3 = b.mb3 + 1;
                int i = 10;
                if (i < 20) { ap = &a; } else { ap = &b; }
                return ap->f() + b.mb2.mn1 + foo(&b.mb4);
            }";
        let (pipeline, r) = run_elimination(src);
        assert_eq!(r.removed, vec!["A::ma2", "A::ma3", "N::mn2"]);
        // Execute both versions: identical observable behaviour, and the
        // objects must not grow.
        use ddm_hierarchy::Program;
        let before = pipeline.program();
        let after_tu = ddm_cppfront::parse(&r.source).expect("reparse");
        let after = Program::build(&after_tu).expect("sema");
        let a_before = before.class_by_name("A").unwrap();
        let a_after = after.class_by_name("A").unwrap();
        let lb = ddm_hierarchy::LayoutEngine::new(before);
        let la = ddm_hierarchy::LayoutEngine::new(&after);
        assert!(
            la.layout(a_after).size < lb.layout(a_before).size,
            "A must shrink after losing ma2 and ma3"
        );
    }
}
