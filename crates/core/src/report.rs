//! Human- and machine-readable analysis reports.

use crate::liveness::{LiveReason, Liveness};
use ddm_callgraph::CallGraph;
use ddm_hierarchy::{ClassId, MemberRef, Program};
use std::collections::HashSet;
use std::fmt;

/// Renders the full analysis output — the report, the call-graph
/// summary line, and (optionally) the per-class layout table — exactly
/// as the `ddm` CLI prints it to stdout. Serve mode answers `report`
/// queries through this same function, which is what makes its
/// responses byte-identical to a one-shot CLI run by construction
/// rather than by parallel maintenance.
pub fn render_analysis(
    program: &Program,
    callgraph: &CallGraph,
    liveness: &Liveness,
    report: &Report,
    layout: bool,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{report}");
    let _ = writeln!(
        out,
        "call graph ({}): {} reachable functions, {} edges",
        callgraph.algorithm(),
        callgraph.reachable_count(),
        callgraph.edge_count()
    );

    if layout {
        use ddm_hierarchy::LayoutEngine;
        let layouts = LayoutEngine::new(program);
        for (cid, class) in program.classes() {
            let layout = layouts.layout(cid);
            let _ = writeln!(
                out,
                "layout {} : size {} align {}{}{}",
                class.name,
                layout.size,
                layout.align,
                if layout.has_vptr { ", vptr" } else { "" },
                if layout.overhead > 0 {
                    format!(", {} overhead bytes", layout.overhead)
                } else {
                    String::new()
                }
            );
            for slot in &layout.fields {
                let owner = &program.class(slot.member.class).name;
                let member = &program.class(slot.member.class).members[slot.member.index as usize];
                let marker = if liveness.is_dead(slot.member) {
                    " [DEAD]"
                } else {
                    ""
                };
                let _ = writeln!(
                    out,
                    "    +{:<4} {:<4} {}::{}{}",
                    slot.offset, slot.size, owner, member.name, marker
                );
            }
        }
    }
    out
}

/// Statistics for one class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassReport {
    /// The class.
    pub class: ClassId,
    /// Class name.
    pub name: String,
    /// Whether the class is *used* (a constructor call occurs in the
    /// program text).
    pub used: bool,
    /// Whether the class was designated a library class (unclassifiable).
    pub library: bool,
    /// Total data members declared in the class.
    pub total_members: usize,
    /// Names of dead members.
    pub dead_members: Vec<String>,
    /// Names of live members with their reasons.
    pub live_members: Vec<(String, LiveReason)>,
}

/// Whole-program analysis report.
///
/// The headline statistic matches the paper's Figure 3: the percentage of
/// dead data members among members of *used*, non-library classes.
///
/// # Examples
///
/// ```
/// use ddm_core::AnalysisPipeline;
///
/// let run = AnalysisPipeline::from_source(
///     "class A { public: int live; int dead; };\n\
///      int main() { A a; return a.live; }",
/// )?;
/// let report = run.report();
/// assert_eq!(report.dead_percentage(), 50.0);
/// assert_eq!(report.used_class_count(), 1);
/// # Ok::<(), ddm_core::PipelineError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    classes: Vec<ClassReport>,
}

impl Report {
    /// Builds a report from a liveness classification.
    pub fn new(program: &Program, liveness: &Liveness, used: &HashSet<ClassId>) -> Report {
        let mut classes = Vec::new();
        for (cid, class) in program.classes() {
            let mut dead = Vec::new();
            let mut live = Vec::new();
            let mut library = false;
            for (idx, m) in class.members.iter().enumerate() {
                let r = MemberRef::new(cid, idx);
                if liveness.is_unclassifiable(r) {
                    library = true;
                } else if let Some(reason) = liveness.reason(r) {
                    live.push((m.name.clone(), reason));
                } else {
                    dead.push(m.name.clone());
                }
            }
            classes.push(ClassReport {
                class: cid,
                name: class.name.clone(),
                used: used.contains(&cid),
                library,
                total_members: class.members.len(),
                dead_members: dead,
                live_members: live,
            });
        }
        Report { classes }
    }

    /// Per-class breakdowns, in declaration order.
    pub fn classes(&self) -> &[ClassReport] {
        &self.classes
    }

    /// Total classes in the program.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Number of used classes (the paper's bracketed Table 1 column).
    pub fn used_class_count(&self) -> usize {
        self.classes.iter().filter(|c| c.used).count()
    }

    /// Data members declared in used, non-library classes (the Figure 3
    /// denominator).
    pub fn members_in_used_classes(&self) -> usize {
        self.classes
            .iter()
            .filter(|c| c.used && !c.library)
            .map(|c| c.total_members)
            .sum()
    }

    /// Dead data members in used, non-library classes (the Figure 3
    /// numerator).
    pub fn dead_members_in_used_classes(&self) -> usize {
        self.classes
            .iter()
            .filter(|c| c.used && !c.library)
            .map(|c| c.dead_members.len())
            .sum()
    }

    /// The paper's headline percentage (Figure 3): dead members in used
    /// classes as a fraction of all members in used classes. Zero when no
    /// members exist.
    pub fn dead_percentage(&self) -> f64 {
        let total = self.members_in_used_classes();
        if total == 0 {
            return 0.0;
        }
        100.0 * self.dead_members_in_used_classes() as f64 / total as f64
    }

    /// Dead members across *all* non-library classes (used or not).
    pub fn total_dead_members(&self) -> usize {
        self.classes
            .iter()
            .filter(|c| !c.library)
            .map(|c| c.dead_members.len())
            .sum()
    }

    /// A *weighted* variant of [`Report::dead_percentage`]: the dead
    /// fraction of the summed member sizes in used, non-library classes.
    ///
    /// The paper deliberately reports the unweighted number, arguing that
    /// "taking the size of data members into account for the static
    /// measurements is not meaningful, because there is no way to take
    /// into account statically how many times each class is instantiated"
    /// (§4.2). This method exists so that design decision can be
    /// inspected (see the `ablation_weighted` harness binary).
    pub fn weighted_dead_percentage(&self, program: &Program, liveness: &Liveness) -> f64 {
        let layouts = ddm_hierarchy::LayoutEngine::new(program);
        let mut total = 0u64;
        let mut dead = 0u64;
        for c in &self.classes {
            if !c.used || c.library {
                continue;
            }
            for (idx, m) in program.class(c.class).members.iter().enumerate() {
                let size = layouts.type_size(&m.ty) as u64;
                total += size;
                if liveness.is_dead(ddm_hierarchy::MemberRef::new(c.class, idx)) {
                    dead += size;
                }
            }
        }
        if total == 0 {
            return 0.0;
        }
        100.0 * dead as f64 / total as f64
    }

    /// `Class::member` names of every dead member in used classes,
    /// sorted — convenient for tests and diffing.
    pub fn dead_member_names(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .classes
            .iter()
            .filter(|c| c.used && !c.library)
            .flat_map(|c| {
                c.dead_members
                    .iter()
                    .map(move |m| format!("{}::{}", c.name, m))
            })
            .collect();
        out.sort();
        out
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "dead data members: {}/{} in used classes ({:.1}%)",
            self.dead_members_in_used_classes(),
            self.members_in_used_classes(),
            self.dead_percentage()
        )?;
        for c in &self.classes {
            if c.total_members == 0 {
                continue;
            }
            let tag = if c.library {
                " [library]"
            } else if !c.used {
                " [unused]"
            } else {
                ""
            };
            writeln!(f, "  {}{tag}:", c.name)?;
            for (m, reason) in &c.live_members {
                writeln!(f, "    live {m} ({reason})")?;
            }
            for m in &c.dead_members {
                writeln!(f, "    DEAD {m}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{AnalysisConfig, DeadMemberAnalysis};
    use ddm_callgraph::{CallGraph, CallGraphOptions};
    use ddm_cppfront::parse;
    use ddm_hierarchy::{used_classes, MemberLookup};

    fn report(src: &str) -> Report {
        report_with(src, AnalysisConfig::default())
    }

    fn report_with(src: &str, config: AnalysisConfig) -> Report {
        let tu = parse(src).expect("parse");
        let program = Program::build(&tu).expect("sema");
        let lookup = MemberLookup::new(&program);
        let graph = CallGraph::build(&program, &lookup, &CallGraphOptions::default()).unwrap();
        let liveness = DeadMemberAnalysis::new(&program, config)
            .run(&graph)
            .unwrap();
        let used = used_classes(&program, &lookup).unwrap();
        Report::new(&program, &liveness, &used)
    }

    #[test]
    fn percentages_follow_the_figure3_definition() {
        let r = report(
            "class Used { public: int live1; int dead1; int dead2; };\n\
             class Unused { public: int ignored; };\n\
             int main() { Used u; u.dead1 = 1; return u.live1; }",
        );
        assert_eq!(r.used_class_count(), 1);
        assert_eq!(r.members_in_used_classes(), 3);
        assert_eq!(r.dead_members_in_used_classes(), 2);
        assert!((r.dead_percentage() - 66.666).abs() < 0.1);
        assert_eq!(
            r.dead_member_names(),
            vec!["Used::dead1".to_string(), "Used::dead2".to_string()]
        );
    }

    #[test]
    fn unused_class_members_excluded_from_percentage_but_counted_in_total() {
        let r = report(
            "class Unused { public: int a; int b; };\n\
             int main() { return 0; }",
        );
        assert_eq!(r.members_in_used_classes(), 0);
        assert_eq!(r.dead_percentage(), 0.0);
        assert_eq!(r.total_dead_members(), 2);
    }

    #[test]
    fn library_classes_are_flagged_and_excluded() {
        let r = report_with(
            "class Lib { public: int x; };\n\
             int main() { Lib l; return l.x; }",
            AnalysisConfig {
                library_classes: ["Lib".to_string()].into_iter().collect(),
                ..Default::default()
            },
        );
        let lib = &r.classes()[0];
        assert!(lib.library);
        assert_eq!(r.members_in_used_classes(), 0);
        assert_eq!(r.total_dead_members(), 0);
    }

    #[test]
    fn display_mentions_dead_members() {
        let r = report(
            "class A { public: int keep; int drop; };\n\
             int main() { A a; return a.keep; }",
        );
        let text = r.to_string();
        assert!(text.contains("DEAD drop"));
        assert!(text.contains("live keep (read)"));
        assert!(text.contains("50.0%"));
    }
}

#[cfg(test)]
mod weighted_tests {
    use crate::pipeline::AnalysisPipeline;

    #[test]
    fn weighted_percentage_accounts_for_member_sizes() {
        // One dead double (8 bytes) vs one live char (1 byte):
        // unweighted = 50%, weighted = 8/9 ≈ 88.9%.
        let run = AnalysisPipeline::from_source(
            "class A { public: double heavy_dead; char light_live; };\n\
             int main() { A a; a.heavy_dead = 1.0; return a.light_live; }",
        )
        .unwrap();
        let report = run.report();
        assert!((report.dead_percentage() - 50.0).abs() < 1e-9);
        let weighted = report.weighted_dead_percentage(run.program(), run.liveness());
        assert!((weighted - 100.0 * 8.0 / 9.0).abs() < 1e-9, "{weighted}");
    }

    #[test]
    fn weighted_percentage_is_zero_without_members() {
        let run = AnalysisPipeline::from_source("int main() { return 0; }").unwrap();
        let report = run.report();
        assert_eq!(
            report.weighted_dead_percentage(run.program(), run.liveness()),
            0.0
        );
    }
}
