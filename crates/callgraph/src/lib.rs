//! # ddm-callgraph
//!
//! Call-graph construction for the dead-data-member study.
//!
//! The paper builds its call graph with a variant of the Program
//! Virtual-call Graph algorithm (Bacon & Sweeney, OOPSLA'96) and notes
//! that "the accuracy of the call graph may have an impact on the
//! precision of the analysis" (§3). This crate provides three builders of
//! increasing precision, used for that ablation:
//!
//! * [`Algorithm::Everything`] — every function with a body is reachable
//!   and every class instantiated (the most conservative baseline);
//! * [`Algorithm::Cha`] — Class Hierarchy Analysis: a virtual call through
//!   static class `S` may reach the override in any subclass of `S`;
//! * [`Algorithm::Rta`] — Rapid Type Analysis: like CHA, but only classes
//!   observed to be instantiated in reachable code count as dispatch
//!   receivers (the paper's PVG is an RTA-family algorithm).
//!
//! All three honour the paper's conservatism rules for separately-compiled
//! libraries (§3.3): functions whose address is taken in reachable code
//! are reachable, and application overrides of virtual methods declared in
//! user-designated *library classes* are reachable (callbacks).

pub use ddm_hierarchy::pta;

use ddm_hierarchy::{
    resolve_ctor, walk_function, walk_globals, CallEvent, CallTarget, CgStep, ClassId, DeleteEvent,
    EventVisitor, FnSummary, FuncId, InstantiationEvent, MemberLookup, Program, ProgramSummary,
    TypeError,
};
use ddm_telemetry::{Telemetry, LANE_MAIN};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// Which call-graph construction algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Algorithm {
    /// All functions reachable, all classes instantiated.
    Everything,
    /// Class Hierarchy Analysis.
    Cha,
    /// Rapid Type Analysis (default; stands in for the paper's PVG).
    #[default]
    Rta,
    /// RTA plus the §3.1 intraprocedural points-to refinement: virtual
    /// call sites whose receiver is an analysable local pointer dispatch
    /// only to the classes that pointer can actually reference.
    Pta,
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Algorithm::Everything => "everything",
            Algorithm::Cha => "CHA",
            Algorithm::Rta => "RTA",
            Algorithm::Pta => "PTA",
        })
    }
}

/// Options controlling call-graph construction.
#[derive(Debug, Clone, Default)]
pub struct CallGraphOptions {
    /// Which algorithm to use.
    pub algorithm: Algorithm,
    /// Classes declared in (simulated) libraries: application overrides of
    /// their virtual methods become call-graph roots, because library code
    /// may call back into them.
    pub library_classes: HashSet<ClassId>,
}

/// The computed call graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallGraph {
    algorithm: Algorithm,
    reachable: BTreeSet<FuncId>,
    instantiated: BTreeSet<ClassId>,
    edges: BTreeMap<FuncId, BTreeSet<FuncId>>,
    address_taken: BTreeSet<FuncId>,
}

impl CallGraph {
    /// Builds a call graph for `program` using `options`.
    ///
    /// # Errors
    ///
    /// Propagates [`TypeError`]s from walking reachable bodies.
    ///
    /// # Examples
    ///
    /// ```
    /// use ddm_callgraph::{CallGraph, CallGraphOptions};
    /// use ddm_hierarchy::{Program, MemberLookup};
    ///
    /// let tu = ddm_cppfront::parse(
    ///     "int helper() { return 1; }\n\
    ///      int unused() { return 2; }\n\
    ///      int main() { return helper(); }",
    /// ).unwrap();
    /// let program = Program::build(&tu).unwrap();
    /// let lookup = MemberLookup::new(&program);
    /// let graph = CallGraph::build(&program, &lookup, &CallGraphOptions::default()).unwrap();
    /// assert!(graph.is_reachable(program.free_function("helper").unwrap()));
    /// assert!(!graph.is_reachable(program.free_function("unused").unwrap()));
    /// ```
    pub fn build(
        program: &Program,
        lookup: &MemberLookup<'_>,
        options: &CallGraphOptions,
    ) -> Result<CallGraph, TypeError> {
        Self::build_with(program, lookup, options, &Telemetry::disabled())
    }

    /// [`CallGraph::build`] with telemetry: each fixpoint round is
    /// spanned, and the round count lands in the execution stats.
    ///
    /// # Errors
    ///
    /// Propagates [`TypeError`]s from walking reachable bodies.
    pub fn build_with(
        program: &Program,
        lookup: &MemberLookup<'_>,
        options: &CallGraphOptions,
        telemetry: &Telemetry,
    ) -> Result<CallGraph, TypeError> {
        match options.algorithm {
            Algorithm::Everything => Ok(Self::build_everything(program)),
            Algorithm::Cha | Algorithm::Rta | Algorithm::Pta => {
                Self::build_propagating(program, lookup, options, telemetry)
            }
        }
    }

    fn build_everything(program: &Program) -> CallGraph {
        // Maximal: every function (even body-less declarations, which the
        // propagating builders may also mark as dispatch targets).
        let reachable = program.functions().map(|(id, _)| id).collect();
        let instantiated = program.classes().map(|(id, _)| id).collect();
        CallGraph {
            algorithm: Algorithm::Everything,
            reachable,
            instantiated,
            edges: BTreeMap::new(),
            address_taken: BTreeSet::new(),
        }
    }

    fn build_propagating(
        program: &Program,
        lookup: &MemberLookup<'_>,
        options: &CallGraphOptions,
        telemetry: &Telemetry,
    ) -> Result<CallGraph, TypeError> {
        let mut state = Builder {
            program,
            lookup,
            cha: options.algorithm == Algorithm::Cha,
            pta: options.algorithm == Algorithm::Pta,
            pointee_cache: HashMap::new(),
            reachable: BTreeSet::new(),
            instantiated: BTreeSet::new(),
            edges: BTreeMap::new(),
            address_taken: BTreeSet::new(),
            pending_fp_calls: BTreeSet::new(),
        };

        state.reachable = propagation_roots(program, options);

        // Global initializers always run.
        {
            let mut visitor = EventSink {
                caller: None,
                state: &mut state,
            };
            walk_globals(program, lookup, &mut visitor)?;
        }

        // Iterate to a fixpoint: walking a function may make more functions
        // reachable or more classes instantiated, which in turn widens
        // virtual dispatch at call sites inside already-walked functions.
        let mut rounds: u64 = 0;
        loop {
            let before = (
                state.reachable.len(),
                state.instantiated.len(),
                state.edge_total(),
            );
            let work: Vec<FuncId> = state.reachable.iter().copied().collect();
            let round_span = telemetry.span(LANE_MAIN, || {
                format!("callgraph round {rounds} ({} fns)", work.len())
            });
            rounds += 1;
            for fid in work {
                let mut visitor = EventSink {
                    caller: Some(fid),
                    state: &mut state,
                };
                walk_function(program, lookup, fid, &mut visitor)?;
            }
            state.resolve_function_pointer_calls();
            drop(round_span);
            if (
                state.reachable.len(),
                state.instantiated.len(),
                state.edge_total(),
            ) == before
            {
                break;
            }
        }
        telemetry.update_stats(|s| s.callgraph_rounds = rounds);

        Ok(CallGraph {
            algorithm: options.algorithm,
            reachable: state.reachable,
            instantiated: state.instantiated,
            edges: state.edges,
            address_taken: state.address_taken,
        })
    }

    /// Builds a call graph from precomputed walk-once function summaries
    /// instead of traversing ASTs.
    ///
    /// Produces a graph identical to [`CallGraph::build`] for the same
    /// program and options: the fixpoint replays each function's
    /// [`CgStep`]s exactly once, in the same round-structured schedule the
    /// walking builder sweeps in, and widens already-replayed virtual
    /// call and `delete` sites through a class-indexed pending-dispatch
    /// worklist when their candidate receiver classes become
    /// instantiated. For PTA graphs the summaries must have been built
    /// with receiver refinement enabled
    /// (`ProgramSummary::build(program, true, jobs)`).
    ///
    /// # Errors
    ///
    /// Surfaces the [`TypeError`]s recorded in the summaries of reachable
    /// functions, in the same order the walking builder would hit them.
    pub fn build_from_summary(
        program: &Program,
        summary: &ProgramSummary,
        options: &CallGraphOptions,
    ) -> Result<CallGraph, TypeError> {
        Self::build_from_summary_with(program, summary, options, &Telemetry::disabled())
    }

    /// [`CallGraph::build_from_summary`] with telemetry: rounds are
    /// spanned, and replay / worklist activity lands in the execution
    /// stats.
    ///
    /// # Errors
    ///
    /// Surfaces the [`TypeError`]s recorded in the summaries of reachable
    /// functions, in the same order the walking builder would hit them.
    pub fn build_from_summary_with(
        program: &Program,
        summary: &ProgramSummary,
        options: &CallGraphOptions,
        telemetry: &Telemetry,
    ) -> Result<CallGraph, TypeError> {
        if options.algorithm == Algorithm::Everything {
            return Ok(Self::build_everything(program));
        }
        let mut state = SummaryReplayer {
            program,
            cha: options.algorithm == Algorithm::Cha,
            reachable: propagation_roots(program, options),
            instantiated: BTreeSet::new(),
            edges: BTreeMap::new(),
            address_taken: BTreeSet::new(),
            pending_fp_calls: BTreeSet::new(),
            pending_dispatch: HashMap::new(),
            ready: HashMap::new(),
            replays: 0,
            worklist_pushes: 0,
        };

        // Global initializers run once, before the sweep — their dispatch
        // decisions are frozen at this point, exactly as in the walking
        // builder, so they never register pending candidates.
        state.replay(None, summary.globals()?, false);

        // Round-structured replay of the walking builder's sweep: each
        // round snapshots the reachable set and visits it in id order. A
        // function's first visit replays its full summary (registering
        // the dispatch candidates that are not yet instantiated); later
        // visits only drain the edges that instantiations have readied
        // for it — the work a re-walk would discover, without the walk.
        let mut replayed = vec![false; program.function_count()];
        let mut rounds: u64 = 0;
        loop {
            let before = (
                state.reachable.len(),
                state.instantiated.len(),
                state.edge_total(),
            );
            let work: Vec<FuncId> = state.reachable.iter().copied().collect();
            let round_span = telemetry.span(LANE_MAIN, || {
                format!("callgraph replay round {rounds} ({} fns)", work.len())
            });
            rounds += 1;
            for fid in work {
                if !replayed[fid.index()] {
                    replayed[fid.index()] = true;
                    state.replay(Some(fid), summary.function(fid)?, true);
                } else if let Some(widened) = state.ready.remove(&fid) {
                    for t in widened {
                        state.add_edge(Some(fid), t);
                    }
                }
            }
            state.resolve_function_pointer_calls();
            drop(round_span);
            if (
                state.reachable.len(),
                state.instantiated.len(),
                state.edge_total(),
            ) == before
            {
                break;
            }
        }
        debug_assert!(
            state.ready.is_empty(),
            "every readied widening is drained before the fixpoint settles"
        );
        telemetry.update_stats(|s| {
            s.callgraph_rounds = rounds;
            s.summary_replays += state.replays;
            s.worklist_pushes += state.worklist_pushes;
        });

        Ok(CallGraph {
            algorithm: options.algorithm,
            reachable: state.reachable,
            instantiated: state.instantiated,
            edges: state.edges,
            address_taken: state.address_taken,
        })
    }

    /// The algorithm that produced this graph.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// Whether `func` is reachable from the roots.
    pub fn is_reachable(&self, func: FuncId) -> bool {
        self.reachable.contains(&func)
    }

    /// The reachable functions, in id order.
    pub fn reachable(&self) -> impl ExactSizeIterator<Item = FuncId> + '_ {
        self.reachable.iter().copied()
    }

    /// Number of reachable functions.
    pub fn reachable_count(&self) -> usize {
        self.reachable.len()
    }

    /// Splits the reachable functions into at most `n` contiguous shards
    /// for parallel scanning.
    ///
    /// The shards partition [`CallGraph::reachable`] and **preserve its
    /// order**: concatenating the shards yields the reachable list in
    /// `FuncId` order. This contiguity is what lets the analysis merge
    /// per-shard deltas in shard order and reproduce the sequential
    /// first-mark-wins results bit for bit — a round-robin split would
    /// interleave the order and scramble recorded reasons.
    pub fn reachable_shards(&self, n: usize) -> Vec<Vec<FuncId>> {
        let all: Vec<FuncId> = self.reachable.iter().copied().collect();
        if all.is_empty() {
            return Vec::new();
        }
        let per_shard = all.len().div_ceil(n.max(1));
        all.chunks(per_shard).map(<[FuncId]>::to_vec).collect()
    }

    /// Classes considered instantiated (for `Everything` and `Cha`, all of
    /// them; for `Rta`, the fixpoint set).
    pub fn instantiated(&self) -> impl ExactSizeIterator<Item = ClassId> + '_ {
        self.instantiated.iter().copied()
    }

    /// Whether `class` is in the instantiated set.
    pub fn is_instantiated(&self, class: ClassId) -> bool {
        self.instantiated.contains(&class)
    }

    /// Resolved direct call edges from `func`. Virtual call sites
    /// contribute one edge per possible target.
    pub fn callees(&self, func: FuncId) -> impl Iterator<Item = FuncId> + '_ {
        self.edges.get(&func).into_iter().flatten().copied()
    }

    /// Total number of call edges.
    pub fn edge_count(&self) -> usize {
        self.edges.values().map(|s| s.len()).sum()
    }

    /// Functions whose address is taken in reachable code.
    pub fn address_taken(&self) -> impl Iterator<Item = FuncId> + '_ {
        self.address_taken.iter().copied()
    }
}

struct Builder<'p> {
    program: &'p Program,
    lookup: &'p MemberLookup<'p>,
    cha: bool,
    pta: bool,
    /// Memoized points-to results per (function, receiver variable).
    pointee_cache: HashMap<(FuncId, String), Option<BTreeSet<ClassId>>>,
    reachable: BTreeSet<FuncId>,
    instantiated: BTreeSet<ClassId>,
    edges: BTreeMap<FuncId, BTreeSet<FuncId>>,
    address_taken: BTreeSet<FuncId>,
    /// Callers that contain indirect calls; resolved against the
    /// address-taken set after each sweep.
    pending_fp_calls: BTreeSet<FuncId>,
}

impl<'p> Builder<'p> {
    fn edge_total(&self) -> usize {
        self.edges.values().map(|s| s.len()).sum()
    }

    fn mark_reachable(&mut self, func: FuncId) {
        self.reachable.insert(func);
    }

    fn add_edge(&mut self, caller: Option<FuncId>, callee: FuncId) {
        if let Some(c) = caller {
            self.edges.entry(c).or_default().insert(callee);
        }
        self.mark_reachable(callee);
    }

    /// Marks `class` (and everything it constructs implicitly: bases and
    /// by-value member classes) as instantiated, making their default
    /// constructors and destructors reachable.
    fn instantiate(&mut self, caller: Option<FuncId>, class: ClassId, ctor: Option<FuncId>) {
        if let Some(c) = ctor {
            self.add_edge(caller, c);
        }
        let mut stack = vec![class];
        while let Some(c) = stack.pop() {
            if !self.instantiated.insert(c) {
                continue;
            }
            // The destructor of anything instantiated may run.
            if let Some(d) = self.program.destructor(c) {
                self.mark_reachable(d);
            }
            let info = self.program.class(c);
            for b in &info.bases {
                if let Some(dc) = resolve_ctor(self.program, b.id, 0) {
                    self.mark_reachable(dc);
                }
                stack.push(b.id);
            }
            for m in &info.members {
                if let Some(name) = ddm_hierarchy::by_value_class(&m.ty) {
                    if let Some(id) = self.program.class_by_name(name) {
                        if let Some(dc) = resolve_ctor(self.program, id, 0) {
                            self.mark_reachable(dc);
                        }
                        stack.push(id);
                    }
                }
            }
        }
    }

    /// The candidate dynamic receiver classes for a virtual call whose
    /// static receiver class is `receiver`.
    fn dispatch_candidates(&self, receiver: ClassId) -> Vec<ClassId> {
        self.program
            .subclasses_of(receiver)
            .into_iter()
            .filter(|c| self.cha || self.instantiated.contains(c))
            .collect()
    }

    fn virtual_targets(&self, receiver: ClassId, name: &str) -> BTreeSet<FuncId> {
        let mut out = BTreeSet::new();
        for c in self.dispatch_candidates(receiver) {
            if let Some(f) = self.lookup.resolve_virtual(c, name) {
                out.insert(f);
            }
        }
        out
    }

    /// Cached §3.1 points-to query for `var` in `func`.
    fn pointees_of(&mut self, func: FuncId, var: &str) -> Option<BTreeSet<ClassId>> {
        let key = (func, var.to_string());
        if let Some(cached) = self.pointee_cache.get(&key) {
            return cached.clone();
        }
        let result = pta::local_pointees(self.program, func, var);
        self.pointee_cache.insert(key, result.clone());
        result
    }

    fn resolve_function_pointer_calls(&mut self) {
        // Any address-taken function may be the target of any indirect
        // call (the paper's conservative treatment of function pointers).
        let callers: Vec<FuncId> = self.pending_fp_calls.iter().copied().collect();
        let targets: Vec<FuncId> = self.address_taken.iter().copied().collect();
        for caller in callers {
            for &t in &targets {
                self.add_edge(Some(caller), t);
            }
        }
    }
}

struct EventSink<'a, 'p> {
    caller: Option<FuncId>,
    state: &'a mut Builder<'p>,
}

impl EventVisitor for EventSink<'_, '_> {
    fn call(&mut self, ev: &CallEvent) {
        match &ev.target {
            CallTarget::Free(f) => self.state.add_edge(self.caller, *f),
            CallTarget::Builtin(_) => {}
            CallTarget::Method {
                func,
                receiver_class,
                is_virtual_dispatch,
                receiver_var,
            } => {
                if *is_virtual_dispatch {
                    let name = self.state.program.function(*func).name.clone();
                    // §3.1 refinement: a points-to set for the receiver
                    // variable narrows dispatch to the classes it can
                    // actually reference.
                    let refined = match (self.state.pta, receiver_var, self.caller) {
                        (true, Some(var), Some(caller)) => self.state.pointees_of(caller, var),
                        _ => None,
                    };
                    let targets = match refined {
                        Some(classes) => {
                            let mut out = BTreeSet::new();
                            for c in classes {
                                if let Some(f) = self.state.lookup.resolve_virtual(c, &name) {
                                    out.insert(f);
                                }
                            }
                            out
                        }
                        None => self.state.virtual_targets(*receiver_class, &name),
                    };
                    if targets.is_empty() {
                        // No receiver established yet (or a null-only
                        // pointer): keep the static declaration so a later
                        // sweep can widen it.
                        self.state.add_edge(self.caller, *func);
                    }
                    for t in targets {
                        self.state.add_edge(self.caller, t);
                    }
                } else {
                    self.state.add_edge(self.caller, *func);
                }
            }
            CallTarget::FunctionPointer => {
                if let Some(c) = self.caller {
                    self.state.pending_fp_calls.insert(c);
                }
            }
        }
    }

    fn address_of_function(&mut self, func: FuncId, _span: ddm_cppfront::Span) {
        // "If the address of a function f is taken in reachable code, we
        // assume f to be reachable."
        self.state.address_taken.insert(func);
        self.state.mark_reachable(func);
    }

    fn instantiation(&mut self, ev: &InstantiationEvent) {
        self.state.instantiate(self.caller, ev.class, ev.ctor);
    }

    fn delete_of(&mut self, ev: &DeleteEvent) {
        let Some(class) = ev.pointee_class else {
            return;
        };
        if let Some(dtor) = self.state.program.destructor(class) {
            if self.state.program.function(dtor).is_virtual {
                for c in self.state.dispatch_candidates(class) {
                    if let Some(d) = self.state.program.destructor(c) {
                        self.state.add_edge(self.caller, d);
                    }
                }
            }
            self.state.add_edge(self.caller, dtor);
        }
        // Destructors of base subobjects run too.
        for a in self.state.program.ancestors_of(class) {
            if let Some(d) = self.state.program.destructor(a) {
                self.state.add_edge(self.caller, d);
            }
        }
    }
}

/// The roots of the propagating builders: `main`, plus application
/// overrides (with bodies) of virtual methods declared in library
/// classes, which library code may call back into (§3.3).
fn propagation_roots(program: &Program, options: &CallGraphOptions) -> BTreeSet<FuncId> {
    let mut roots = BTreeSet::new();
    if let Some(main) = program.main_function() {
        roots.insert(main);
    }
    for (fid, f) in program.functions() {
        let Some(class) = f.class else { continue };
        if options.library_classes.contains(&class) {
            continue;
        }
        if f.is_virtual
            && f.body.is_some()
            && program
                .ancestors_of(class)
                .iter()
                .any(|a| options.library_classes.contains(a))
        {
            roots.insert(fid);
        }
    }
    roots
}

/// Fixpoint state of [`CallGraph::build_from_summary`]: the walking
/// builder's propagation state, plus the worklist indexes that replace
/// re-walking — `pending_dispatch` remembers which not-yet-instantiated
/// receiver classes would widen which already-replayed sites, and `ready`
/// holds the widened edges until the owner's slot in the round order
/// comes up (the moment its re-walk would have added them).
struct SummaryReplayer<'p> {
    program: &'p Program,
    cha: bool,
    reachable: BTreeSet<FuncId>,
    instantiated: BTreeSet<ClassId>,
    edges: BTreeMap<FuncId, BTreeSet<FuncId>>,
    address_taken: BTreeSet<FuncId>,
    pending_fp_calls: BTreeSet<FuncId>,
    /// Receiver class → (owner function, dispatch target) pairs waiting
    /// for that class to be instantiated.
    pending_dispatch: HashMap<ClassId, Vec<(FuncId, FuncId)>>,
    /// Owner function → widened edges to add at its next round slot.
    ready: HashMap<FuncId, BTreeSet<FuncId>>,
    /// Observational: full [`FnSummary`] replays performed.
    replays: u64,
    /// Observational: candidates parked in `pending_dispatch`.
    worklist_pushes: u64,
}

impl SummaryReplayer<'_> {
    fn edge_total(&self) -> usize {
        self.edges.values().map(|s| s.len()).sum()
    }

    fn mark_reachable(&mut self, func: FuncId) {
        self.reachable.insert(func);
    }

    fn add_edge(&mut self, caller: Option<FuncId>, callee: FuncId) {
        if let Some(c) = caller {
            self.edges.entry(c).or_default().insert(callee);
        }
        self.mark_reachable(callee);
    }

    /// [`Builder::instantiate`]'s closure, plus the worklist step: a
    /// newly instantiated class releases its pending dispatch candidates
    /// into the owners' ready sets.
    fn instantiate(&mut self, caller: Option<FuncId>, class: ClassId, ctor: Option<FuncId>) {
        if let Some(c) = ctor {
            self.add_edge(caller, c);
        }
        let mut stack = vec![class];
        while let Some(c) = stack.pop() {
            if !self.instantiated.insert(c) {
                continue;
            }
            if let Some(waiters) = self.pending_dispatch.remove(&c) {
                for (owner, target) in waiters {
                    self.ready.entry(owner).or_default().insert(target);
                }
            }
            if let Some(d) = self.program.destructor(c) {
                self.mark_reachable(d);
            }
            let info = self.program.class(c);
            for b in &info.bases {
                if let Some(dc) = resolve_ctor(self.program, b.id, 0) {
                    self.mark_reachable(dc);
                }
                stack.push(b.id);
            }
            for m in &info.members {
                if let Some(name) = ddm_hierarchy::by_value_class(&m.ty) {
                    if let Some(id) = self.program.class_by_name(name) {
                        if let Some(dc) = resolve_ctor(self.program, id, 0) {
                            self.mark_reachable(dc);
                        }
                        stack.push(id);
                    }
                }
            }
        }
    }

    /// Filters a site's pre-resolved dispatch candidates by the current
    /// instantiated set; when `register`ing, parks the rest in the
    /// pending-dispatch worklist so a later instantiation widens this
    /// site without revisiting it.
    fn filter_candidates(
        &mut self,
        caller: Option<FuncId>,
        candidates: &[(ClassId, FuncId)],
        register: bool,
        targets: &mut BTreeSet<FuncId>,
    ) {
        for &(c, f) in candidates {
            if self.cha || self.instantiated.contains(&c) {
                targets.insert(f);
            } else if register {
                if let Some(owner) = caller {
                    self.pending_dispatch.entry(c).or_default().push((owner, f));
                    self.worklist_pushes += 1;
                }
            }
        }
    }

    /// Replays one summary's call-graph steps in body order, mirroring
    /// [`EventSink`]'s handling of the corresponding events.
    fn replay(&mut self, caller: Option<FuncId>, summary: &FnSummary, register: bool) {
        self.replays += 1;
        for step in &summary.cg_steps {
            match step {
                CgStep::Call(f) => self.add_edge(caller, *f),
                CgStep::VirtualCall(site) => {
                    let mut targets = BTreeSet::new();
                    match &site.refined {
                        Some(fs) => targets.extend(fs.iter().copied()),
                        None => {
                            self.filter_candidates(caller, &site.candidates, register, &mut targets)
                        }
                    }
                    if targets.is_empty() {
                        // No receiver established yet (or a null-only
                        // pointer): keep the static declaration.
                        self.add_edge(caller, site.decl);
                    }
                    for t in targets {
                        self.add_edge(caller, t);
                    }
                }
                CgStep::FnPointerCall => {
                    if let Some(c) = caller {
                        self.pending_fp_calls.insert(c);
                    }
                }
                CgStep::TakeAddress(f) => {
                    self.address_taken.insert(*f);
                    self.mark_reachable(*f);
                }
                CgStep::Instantiate { class, ctor } => self.instantiate(caller, *class, *ctor),
                CgStep::Delete(site) => {
                    if let Some(dtor) = site.dtor {
                        if site.virtual_dtor {
                            let mut targets = BTreeSet::new();
                            self.filter_candidates(
                                caller,
                                &site.candidates,
                                register,
                                &mut targets,
                            );
                            for t in targets {
                                self.add_edge(caller, t);
                            }
                        }
                        self.add_edge(caller, dtor);
                    }
                    for &d in &site.ancestor_dtors {
                        self.add_edge(caller, d);
                    }
                }
            }
        }
    }

    fn resolve_function_pointer_calls(&mut self) {
        let callers: Vec<FuncId> = self.pending_fp_calls.iter().copied().collect();
        let targets: Vec<FuncId> = self.address_taken.iter().copied().collect();
        for caller in callers {
            for &t in &targets {
                self.add_edge(Some(caller), t);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddm_cppfront::parse;

    fn graph(src: &str, algorithm: Algorithm) -> (Program, CallGraph) {
        let tu = parse(src).expect("parse");
        let p = Program::build(&tu).expect("sema");
        let g = {
            let lk = MemberLookup::new(&p);
            CallGraph::build(
                &p,
                &lk,
                &CallGraphOptions {
                    algorithm,
                    ..Default::default()
                },
            )
            .expect("callgraph")
        };
        (p, g)
    }

    fn method(p: &Program, class: &str, name: &str) -> FuncId {
        p.direct_method(p.class_by_name(class).unwrap(), name)
            .unwrap()
    }

    #[test]
    fn unreachable_free_function_excluded() {
        let (p, g) = graph(
            "int used() { return 1; } int dead() { return 2; } int main() { return used(); }",
            Algorithm::Rta,
        );
        assert!(g.is_reachable(p.free_function("used").unwrap()));
        assert!(!g.is_reachable(p.free_function("dead").unwrap()));
        assert!(g.is_reachable(p.main_function().unwrap()));
    }

    #[test]
    fn transitive_calls_are_reachable() {
        let (p, g) = graph(
            "int c() { return 3; } int b() { return c(); } int a() { return b(); }\n\
             int main() { return a(); }",
            Algorithm::Rta,
        );
        for name in ["a", "b", "c"] {
            assert!(g.is_reachable(p.free_function(name).unwrap()), "{name}");
        }
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn everything_marks_all_bodies() {
        let (p, g) = graph(
            "class Z { public: int z; }; int dead() { return 2; } int main() { return 0; }",
            Algorithm::Everything,
        );
        assert!(g.is_reachable(p.free_function("dead").unwrap()));
        assert_eq!(g.algorithm(), Algorithm::Everything);
        assert!(g.is_instantiated(p.class_by_name("Z").unwrap()));
    }

    const VIRT: &str = "class A { public: virtual int f() { return 0; } };\n\
         class B : public A { public: virtual int f() { return 1; } };\n\
         class C : public A { public: virtual int f() { return 2; } };\n";

    #[test]
    fn rta_prunes_uninstantiated_receivers() {
        let src = format!("{VIRT}int main() {{ B b; A* ap = &b; return ap->f(); }}");
        let (p, g) = graph(&src, Algorithm::Rta);
        assert!(g.is_reachable(method(&p, "B", "f")));
        assert!(
            !g.is_reachable(method(&p, "C", "f")),
            "C is never instantiated; RTA must prune C::f"
        );
        assert!(!g.is_instantiated(p.class_by_name("C").unwrap()));
    }

    #[test]
    fn cha_keeps_all_subclass_receivers() {
        let src = format!("{VIRT}int main() {{ B b; A* ap = &b; return ap->f(); }}");
        let (p, g) = graph(&src, Algorithm::Cha);
        assert!(g.is_reachable(method(&p, "B", "f")));
        assert!(
            g.is_reachable(method(&p, "C", "f")),
            "CHA keeps every subclass override"
        );
    }

    #[test]
    fn figure1_call_graph_matches_paper() {
        // §3.1: "the call graph consists of the methods A::f, B::f, and
        // C::f in addition to main" (all three classes are instantiated).
        let src = "
            class N { public: int mn1; int mn2; };
            class A { public: virtual int f() { return ma1; } int ma1; int ma2; int ma3; };
            class B : public A { public: virtual int f() { return mb1; } int mb1; N mb2; int mb3; int mb4; };
            class C : public A { public: virtual int f() { return mc1; } int mc1; };
            int foo(int* x) { return (*x) + 1; }
            int main() {
                A a; B b; C c; A* ap;
                a.ma3 = b.mb3 + 1;
                int i = 10;
                if (i < 20) { ap = &a; } else { ap = &b; }
                return ap->f() + b.mb2.mn1 + foo(&b.mb4);
            }";
        let (p, g) = graph(src, Algorithm::Rta);
        assert!(g.is_reachable(method(&p, "A", "f")));
        assert!(g.is_reachable(method(&p, "B", "f")));
        assert!(g.is_reachable(method(&p, "C", "f")));
        assert!(g.is_reachable(p.free_function("foo").unwrap()));
        assert_eq!(g.reachable_count(), 5);
    }

    #[test]
    fn instantiation_closure_covers_bases_and_members() {
        let (p, g) = graph(
            "class Base { public: Base() { } ~Base() { } };\n\
             class Part { public: Part() { } };\n\
             class Whole : public Base { public: Part part; Whole() { } };\n\
             int main() { Whole w; return 0; }",
            Algorithm::Rta,
        );
        for name in ["Base", "Part", "Whole"] {
            assert!(g.is_instantiated(p.class_by_name(name).unwrap()), "{name}");
        }
        let base = p.class_by_name("Base").unwrap();
        assert!(g.is_reachable(p.constructors(base)[0]));
        assert!(g.is_reachable(p.destructor(base).unwrap()));
    }

    #[test]
    fn address_taken_functions_feed_indirect_calls() {
        let (p, g) = graph(
            "int f1() { return 1; } int f2() { return 2; } int f3() { return 3; }\n\
             int main() { int (*fp)() = f1; int (*fp2)() = f2; return fp(); }",
            Algorithm::Rta,
        );
        assert!(g.is_reachable(p.free_function("f1").unwrap()));
        assert!(
            g.is_reachable(p.free_function("f2").unwrap()),
            "address-taken functions are assumed reachable"
        );
        assert!(!g.is_reachable(p.free_function("f3").unwrap()));
        assert_eq!(g.address_taken().count(), 2);
    }

    #[test]
    fn library_overrides_are_roots() {
        let src = "class Widget { public: virtual void on_click(); int id; };\n\
                   class MyButton : public Widget { public: virtual void on_click() { count = count + 1; } int count; };\n\
                   int main() { MyButton b; return 0; }";
        let tu = parse(src).unwrap();
        let p = Program::build(&tu).unwrap();
        let lk = MemberLookup::new(&p);
        let widget = p.class_by_name("Widget").unwrap();
        let with_lib = CallGraph::build(
            &p,
            &lk,
            &CallGraphOptions {
                algorithm: Algorithm::Rta,
                library_classes: [widget].into_iter().collect(),
            },
        )
        .unwrap();
        let on_click = p
            .direct_method(p.class_by_name("MyButton").unwrap(), "on_click")
            .unwrap();
        assert!(
            with_lib.is_reachable(on_click),
            "library callbacks must be call-graph roots"
        );
        let without = CallGraph::build(&p, &lk, &CallGraphOptions::default()).unwrap();
        assert!(!without.is_reachable(on_click));
    }

    #[test]
    fn delete_reaches_virtual_destructors() {
        let (p, g) = graph(
            "class A { public: virtual ~A() { } };\n\
             class B : public A { public: ~B() { } };\n\
             int main() { A* p = new B(); delete p; return 0; }",
            Algorithm::Rta,
        );
        let b = p.class_by_name("B").unwrap();
        assert!(g.is_reachable(p.destructor(b).unwrap()));
        let a = p.class_by_name("A").unwrap();
        assert!(g.is_reachable(p.destructor(a).unwrap()));
    }

    #[test]
    fn rta_ignores_instantiation_in_unreachable_code() {
        let (p, g) = graph(
            "class OnlyDead { public: OnlyDead() { } };\n\
             void never() { OnlyDead x; }\n\
             int main() { return 0; }",
            Algorithm::Rta,
        );
        assert!(!g.is_instantiated(p.class_by_name("OnlyDead").unwrap()));
        assert!(!g.is_reachable(p.free_function("never").unwrap()));
    }

    #[test]
    fn monotonicity_rta_subset_cha_subset_everything() {
        let src = format!(
            "{VIRT}int extra() {{ return 9; }}\n\
             int main() {{ B b; A* ap = &b; return ap->f(); }}"
        );
        let (_, rta) = graph(&src, Algorithm::Rta);
        let (_, cha) = graph(&src, Algorithm::Cha);
        let (_, all) = graph(&src, Algorithm::Everything);
        let rta_set: BTreeSet<_> = rta.reachable().collect();
        let cha_set: BTreeSet<_> = cha.reachable().collect();
        let all_set: BTreeSet<_> = all.reachable().collect();
        assert!(rta_set.is_subset(&cha_set));
        assert!(cha_set.is_subset(&all_set));
    }

    #[test]
    fn reachable_shards_partition_and_preserve_order() {
        let (_, g) = graph(
            "int a() { return 1; } int b() { return a(); } int c() { return b(); }\n\
             int d() { return c(); } int e() { return d(); }\n\
             int main() { return e(); }",
            Algorithm::Rta,
        );
        let sequential: Vec<FuncId> = g.reachable().collect();
        for n in [1usize, 2, 3, 4, 100] {
            let shards = g.reachable_shards(n);
            assert!(shards.len() <= n.max(1));
            assert!(shards.iter().all(|s| !s.is_empty()));
            let flat: Vec<FuncId> = shards.into_iter().flatten().collect();
            assert_eq!(flat, sequential, "n={n} must preserve order");
        }
    }

    #[test]
    fn reachable_shards_of_empty_graph() {
        // No main function: nothing reachable under RTA.
        let (_, g) = graph("int lonely() { return 1; }", Algorithm::Rta);
        assert_eq!(g.reachable_count(), 0);
        assert!(g.reachable_shards(4).is_empty());
    }

    #[test]
    fn summary_replay_matches_walking_builder() {
        // Exercises every step kind: static calls, virtual dispatch that
        // widens across rounds, fn-pointer calls, address-taken
        // functions, instantiation closures, and virtual deletes.
        let src = "
            class A { public: virtual int f() { return 0; } virtual ~A() { } };
            class B : public A { public: virtual int f() { return make(); } ~B() { } };
            class C : public A { public: virtual int f() { return 2; } };
            int ind() { return 7; }
            int make() { B* b = new B(); A* a = b; int r = a->f(); delete b; return r; }
            int main() { A a; int (*fp)() = ind; return a.f() + fp() + make(); }";
        let tu = parse(src).expect("parse");
        let p = Program::build(&tu).expect("sema");
        let lk = MemberLookup::new(&p);
        for algorithm in [
            Algorithm::Everything,
            Algorithm::Cha,
            Algorithm::Rta,
            Algorithm::Pta,
        ] {
            let options = CallGraphOptions {
                algorithm,
                ..Default::default()
            };
            let walked = CallGraph::build(&p, &lk, &options).expect("walked");
            let summary = ProgramSummary::build(&p, algorithm == Algorithm::Pta, 1);
            let replayed = CallGraph::build_from_summary(&p, &summary, &options).expect("replayed");
            assert_eq!(walked, replayed, "{algorithm} diverged");
        }
    }

    #[test]
    fn summary_replay_honours_library_roots() {
        let src = "class Widget { public: virtual void on_click(); int id; };\n\
                   class MyButton : public Widget { public: virtual void on_click() { count = count + 1; } int count; };\n\
                   int main() { MyButton b; return 0; }";
        let tu = parse(src).unwrap();
        let p = Program::build(&tu).unwrap();
        let lk = MemberLookup::new(&p);
        let options = CallGraphOptions {
            algorithm: Algorithm::Rta,
            library_classes: [p.class_by_name("Widget").unwrap()].into_iter().collect(),
        };
        let walked = CallGraph::build(&p, &lk, &options).unwrap();
        let summary = ProgramSummary::build(&p, false, 1);
        let replayed = CallGraph::build_from_summary(&p, &summary, &options).unwrap();
        assert_eq!(walked, replayed);
    }

    #[test]
    fn callees_lists_direct_edges() {
        let (p, g) = graph(
            "int f() { return 1; } int main() { return f() + f(); }",
            Algorithm::Rta,
        );
        let main = p.main_function().unwrap();
        let callees: Vec<_> = g.callees(main).collect();
        assert_eq!(callees, vec![p.free_function("f").unwrap()]);
    }
}
