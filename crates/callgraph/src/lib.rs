//! # ddm-callgraph
//!
//! Call-graph construction for the dead-data-member study.
//!
//! The paper builds its call graph with a variant of the Program
//! Virtual-call Graph algorithm (Bacon & Sweeney, OOPSLA'96) and notes
//! that "the accuracy of the call graph may have an impact on the
//! precision of the analysis" (§3). This crate provides three builders of
//! increasing precision, used for that ablation:
//!
//! * [`Algorithm::Everything`] — every function with a body is reachable
//!   and every class instantiated (the most conservative baseline);
//! * [`Algorithm::Cha`] — Class Hierarchy Analysis: a virtual call through
//!   static class `S` may reach the override in any subclass of `S`;
//! * [`Algorithm::Rta`] — Rapid Type Analysis: like CHA, but only classes
//!   observed to be instantiated in reachable code count as dispatch
//!   receivers (the paper's PVG is an RTA-family algorithm).
//!
//! All three honour the paper's conservatism rules for separately-compiled
//! libraries (§3.3): functions whose address is taken in reachable code
//! are reachable, and application overrides of virtual methods declared in
//! user-designated *library classes* are reachable (callbacks).
//!
//! Both propagating builders (the AST-walking one and the summary
//! replayer) run the same **delta-driven worklist fixpoint**
//! ([`run_fixpoint`]): each round processes only the functions made newly
//! reachable in the previous round plus the dispatch sites readied by
//! newly instantiated receiver classes, instead of re-sweeping the whole
//! reachable set. The schedule reproduces the historical full-sweep round
//! structure exactly (see DESIGN.md §5d), so the resulting graphs — and
//! every schedule-sensitive decision such as the no-candidate
//! static-declaration fallback — are bit-identical to the old engines and
//! to each other. Fixpoint state is dense: [`FuncBitSet`]/[`ClassBitSet`]
//! membership, per-function sorted edge rows frozen into a CSR adjacency.

pub use ddm_hierarchy::pta;

use ddm_hierarchy::{
    extract_function, resolve_ctor, walk_function, walk_globals, CallEvent, CallTarget, CgStep,
    ClassBitSet, ClassId, DeleteEvent, EventVisitor, FnSummary, FuncBitSet, FuncId,
    InstantiationEvent, MemberLookup, Program, ProgramSummary, TypeError,
};
use ddm_telemetry::{Counters, EventClass, Histogram, Telemetry, LANE_MAIN};
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, HashMap, HashSet};

/// Minimum number of *unprocessed* functions in one delta batch before
/// the walking builder pre-extracts their bodies on worker threads. A
/// round below the cut is processed inline: forking the pool for a
/// handful of bodies costs more than walking them, which is exactly the
/// small-input regression the extraction threshold
/// ([`ddm_hierarchy::EXTRACTION_SHARD_THRESHOLD`]) fixed for summaries.
/// Like that threshold, this is a fixed cut — not CPU-count derived — so
/// the execution shape is reproducible across machines, and the merged
/// result is bit-identical either way (see DESIGN.md §5g).
pub const PARALLEL_ROUND_THRESHOLD: usize = 256;

/// Which call-graph construction algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Algorithm {
    /// All functions reachable, all classes instantiated.
    Everything,
    /// Class Hierarchy Analysis.
    Cha,
    /// Rapid Type Analysis (default; stands in for the paper's PVG).
    #[default]
    Rta,
    /// RTA plus the §3.1 intraprocedural points-to refinement: virtual
    /// call sites whose receiver is an analysable local pointer dispatch
    /// only to the classes that pointer can actually reference.
    Pta,
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Algorithm::Everything => "everything",
            Algorithm::Cha => "CHA",
            Algorithm::Rta => "RTA",
            Algorithm::Pta => "PTA",
        })
    }
}

/// Options controlling call-graph construction.
#[derive(Debug, Clone, Default)]
pub struct CallGraphOptions {
    /// Which algorithm to use.
    pub algorithm: Algorithm,
    /// Classes declared in (simulated) libraries: application overrides of
    /// their virtual methods become call-graph roots, because library code
    /// may call back into them.
    pub library_classes: HashSet<ClassId>,
    /// Worker threads for the walking builder's per-round body
    /// pre-extraction. `0` and `1` both mean fully sequential; any value
    /// produces the same graph (rounds below
    /// [`PARALLEL_ROUND_THRESHOLD`] stay inline regardless).
    pub jobs: usize,
}

/// One fixpoint round's schedule record: the delta batch size and the
/// pop/drain activity it generated. What [`run_fixpoint`] emits as the
/// deterministic `cg_round` event, captured so a snapshot warm start
/// can replay the identical event stream without re-running the round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CgRound {
    /// Functions in the round's delta batch.
    pub delta_fns: u64,
    /// Worklist pops during the round.
    pub pops: u64,
    /// Ready-row drains during the round.
    pub drains: u64,
}

/// The complete, deterministic schedule of one converged fixpoint run:
/// everything [`CallGraph::build_from_summary_with`] feeds into
/// telemetry beyond the graph itself. Persisting this next to the graph
/// is what makes a snapshot warm start *observationally* identical to a
/// cold run — same `cg_round`/`cg_fixpoint` events, same counters, same
/// metrics — without touching the worklist.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CgSchedule {
    /// Per-round records, in round order.
    pub rounds: Vec<CgRound>,
    /// Total worklist pops.
    pub pops: u64,
    /// Total ready-row drains.
    pub drains: u64,
    /// Total dispatch candidates parked.
    pub parked: u64,
    /// Distribution of unrefined virtual-site candidate-set sizes.
    pub dispatch_candidates: Histogram,
    /// Summary replays (globals + one per first processing).
    pub replays: u64,
    /// Interner size of the linked program at build time.
    pub interned_symbols: u64,
    /// Interner arena bytes at build time.
    pub arena_bytes: u64,
}

/// The dense storage of a [`CallGraph`], exposed for snapshot
/// serialization. Produced by [`CallGraph::to_parts`], consumed by
/// [`CallGraph::from_parts`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallGraphParts {
    /// The algorithm that produced the graph.
    pub algorithm: Algorithm,
    /// Reachable functions, ascending.
    pub reachable: Vec<FuncId>,
    /// Instantiated classes, ascending.
    pub instantiated: Vec<ClassId>,
    /// Address-taken functions, ascending.
    pub address_taken: Vec<FuncId>,
    /// CSR row starts (one per function the graph was built over, +1).
    pub edge_offsets: Vec<u32>,
    /// CSR edge targets.
    pub edge_targets: Vec<FuncId>,
}

/// The computed call graph, frozen into dense index-keyed storage:
/// sorted id vectors for the reachable/instantiated/address-taken sets
/// (with bitsets retained for O(1) membership) and a CSR adjacency for
/// the edges. All iteration orders match the historical tree-based
/// representation (ascending ids), so downstream reports, shard
/// assignments, and `--explain` witness paths are byte-identical.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallGraph {
    algorithm: Algorithm,
    reachable: Vec<FuncId>,
    reachable_set: FuncBitSet,
    instantiated: Vec<ClassId>,
    instantiated_set: ClassBitSet,
    /// CSR row starts: `edge_targets[edge_offsets[f] .. edge_offsets[f+1]]`
    /// are the callees of function `f`, sorted ascending.
    edge_offsets: Vec<u32>,
    edge_targets: Vec<FuncId>,
    address_taken: Vec<FuncId>,
}

impl CallGraph {
    /// Builds a call graph for `program` using `options`.
    ///
    /// # Errors
    ///
    /// Propagates [`TypeError`]s from walking reachable bodies.
    ///
    /// # Examples
    ///
    /// ```
    /// use ddm_callgraph::{CallGraph, CallGraphOptions};
    /// use ddm_hierarchy::{Program, MemberLookup};
    ///
    /// let tu = ddm_cppfront::parse(
    ///     "int helper() { return 1; }\n\
    ///      int unused() { return 2; }\n\
    ///      int main() { return helper(); }",
    /// ).unwrap();
    /// let program = Program::build(&tu).unwrap();
    /// let lookup = MemberLookup::new(&program);
    /// let graph = CallGraph::build(&program, &lookup, &CallGraphOptions::default()).unwrap();
    /// assert!(graph.is_reachable(program.free_function("helper").unwrap()));
    /// assert!(!graph.is_reachable(program.free_function("unused").unwrap()));
    /// ```
    pub fn build(
        program: &Program,
        lookup: &MemberLookup<'_>,
        options: &CallGraphOptions,
    ) -> Result<CallGraph, TypeError> {
        Self::build_with(program, lookup, options, &Telemetry::disabled())
    }

    /// [`CallGraph::build`] with telemetry: each delta batch is spanned,
    /// per-round delta sizes and the round count land in the execution
    /// stats, and worklist pops/drains in the deterministic counters.
    ///
    /// # Errors
    ///
    /// Propagates [`TypeError`]s from walking reachable bodies.
    pub fn build_with(
        program: &Program,
        lookup: &MemberLookup<'_>,
        options: &CallGraphOptions,
        telemetry: &Telemetry,
    ) -> Result<CallGraph, TypeError> {
        match options.algorithm {
            Algorithm::Everything => Ok(Self::build_everything(program)),
            Algorithm::Cha | Algorithm::Rta | Algorithm::Pta => {
                Self::build_propagating(program, lookup, options, telemetry)
            }
        }
    }

    fn build_everything(program: &Program) -> CallGraph {
        // Maximal: every function (even body-less declarations, which the
        // propagating builders may also mark as dispatch targets).
        let reachable: Vec<FuncId> = program.functions().map(|(id, _)| id).collect();
        let mut reachable_set = FuncBitSet::with_capacity(program.function_count());
        for &f in &reachable {
            reachable_set.insert(f);
        }
        let instantiated: Vec<ClassId> = program.classes().map(|(id, _)| id).collect();
        let mut instantiated_set = ClassBitSet::with_capacity(program.class_count());
        for &c in &instantiated {
            instantiated_set.insert(c);
        }
        CallGraph {
            algorithm: Algorithm::Everything,
            reachable,
            reachable_set,
            instantiated,
            instantiated_set,
            edge_offsets: vec![0; program.function_count() + 1],
            edge_targets: Vec::new(),
            address_taken: Vec::new(),
        }
    }

    fn build_propagating(
        program: &Program,
        lookup: &MemberLookup<'_>,
        options: &CallGraphOptions,
        telemetry: &Telemetry,
    ) -> Result<CallGraph, TypeError> {
        let roots = propagation_roots(program, options);
        let mut state = PropState::new(program, options.algorithm == Algorithm::Cha, roots);
        let pta = options.algorithm == Algorithm::Pta;
        let mut pointee_cache = HashMap::new();

        // Global initializers always run; their dispatch decisions are
        // frozen here (register = false), before any function round.
        {
            let mut visitor = EventSink {
                caller: None,
                register: false,
                lookup,
                pta,
                pointee_cache: &mut pointee_cache,
                state: &mut state,
            };
            walk_globals(program, lookup, &mut visitor)?;
        }

        // Parallel rounds: when a delta batch is wide enough, the batch's
        // unprocessed bodies are extracted into summaries on worker
        // threads (shard-ordered, one walk per body — the same walk this
        // loop would do inline) and replayed sequentially in slot order.
        // Replaying an extracted summary makes propagation calls
        // identical to walking the body (the PR-2 walk-once property),
        // so the schedule, the graph, and every counter are bit-for-bit
        // the same at any job count.
        let jobs = options.jobs;
        let prefetched: RefCell<HashMap<FuncId, Result<FnSummary, TypeError>>> =
            RefCell::new(HashMap::new());
        let rounds = run_fixpoint(
            &mut state,
            telemetry,
            "callgraph",
            |st, batch| {
                if jobs <= 1 {
                    return;
                }
                let todo: Vec<FuncId> = batch
                    .iter()
                    .copied()
                    .filter(|&f| !st.processed.contains(f))
                    .collect();
                if todo.len() < PARALLEL_ROUND_THRESHOLD {
                    return;
                }
                let per_shard = todo.len().div_ceil(jobs);
                // Shard activation depends on --jobs, so it is obs class.
                telemetry.event(EventClass::Observational, "cg_round_sharded", || {
                    vec![
                        ("fns", todo.len().into()),
                        ("shards", todo.len().div_ceil(per_shard).into()),
                        ("jobs", jobs.into()),
                    ]
                });
                let extracted: Vec<(FuncId, Result<FnSummary, TypeError>)> =
                    std::thread::scope(|scope| {
                        let handles: Vec<_> = todo
                            .chunks(per_shard)
                            .enumerate()
                            .map(|(shard_ix, chunk)| {
                                scope.spawn(move || {
                                    let lane = u32::try_from(shard_ix + 1).unwrap_or(u32::MAX);
                                    let _span = telemetry.span(lane, || {
                                        format!(
                                            "callgraph round shard {shard_ix} ({} fns)",
                                            chunk.len()
                                        )
                                    });
                                    let lookup = MemberLookup::new(program);
                                    chunk
                                        .iter()
                                        .map(|&f| (f, extract_function(program, &lookup, f, pta)))
                                        .collect::<Vec<_>>()
                                })
                            })
                            .collect();
                        handles
                            .into_iter()
                            .flat_map(|h| h.join().expect("callgraph round worker panicked"))
                            .collect()
                    });
                prefetched.borrow_mut().extend(extracted);
            },
            |st, fid| {
                if let Some(summary) = prefetched.borrow_mut().remove(&fid) {
                    // A stored walk error surfaces at this pop — the same
                    // slot the inline walk would have failed at.
                    replay_summary(st, Some(fid), &summary?, true);
                    return Ok(());
                }
                let mut visitor = EventSink {
                    caller: Some(fid),
                    register: true,
                    lookup,
                    pta,
                    pointee_cache: &mut pointee_cache,
                    state: st,
                };
                walk_function(program, lookup, fid, &mut visitor)
            },
        )?;

        #[cfg(debug_assertions)]
        verify_full_sweep(&mut state, |st, fid| {
            let mut visitor = EventSink {
                caller: Some(fid),
                register: false,
                lookup,
                pta,
                pointee_cache: &mut pointee_cache,
                state: st,
            };
            walk_function(program, lookup, fid, &mut visitor)
        })?;

        state.flush_telemetry(telemetry, rounds, None);
        Ok(state.freeze(options.algorithm))
    }

    /// Builds a call graph from precomputed walk-once function summaries
    /// instead of traversing ASTs.
    ///
    /// Produces a graph identical to [`CallGraph::build`] for the same
    /// program and options: both builders drive the same delta worklist
    /// schedule, replaying each function's [`CgStep`]s exactly once and
    /// widening already-replayed virtual call and `delete` sites through
    /// the class-indexed pending-dispatch worklist when their candidate
    /// receiver classes become instantiated. For PTA graphs the summaries
    /// must have been built with receiver refinement enabled
    /// (`ProgramSummary::build(program, true, jobs)`).
    ///
    /// # Errors
    ///
    /// Surfaces the [`TypeError`]s recorded in the summaries of reachable
    /// functions, in the same order the walking builder would hit them.
    pub fn build_from_summary(
        program: &Program,
        summary: &ProgramSummary,
        options: &CallGraphOptions,
    ) -> Result<CallGraph, TypeError> {
        Self::build_from_summary_with(program, summary, options, &Telemetry::disabled())
    }

    /// [`CallGraph::build_from_summary`] with telemetry: delta batches
    /// are spanned, and replay / worklist activity lands in the execution
    /// stats and deterministic counters.
    ///
    /// # Errors
    ///
    /// Surfaces the [`TypeError`]s recorded in the summaries of reachable
    /// functions, in the same order the walking builder would hit them.
    pub fn build_from_summary_with(
        program: &Program,
        summary: &ProgramSummary,
        options: &CallGraphOptions,
        telemetry: &Telemetry,
    ) -> Result<CallGraph, TypeError> {
        Self::build_from_summary_schedule(program, summary, options, telemetry).map(|(g, _)| g)
    }

    /// [`CallGraph::build_from_summary_with`], also returning the
    /// converged [`CgSchedule`] so the caller can persist it (the
    /// telemetry handle may be disabled — the schedule is captured
    /// either way).
    ///
    /// # Errors
    ///
    /// Surfaces the [`TypeError`]s recorded in the summaries of reachable
    /// functions, in the same order the walking builder would hit them.
    pub fn build_from_summary_schedule(
        program: &Program,
        summary: &ProgramSummary,
        options: &CallGraphOptions,
        telemetry: &Telemetry,
    ) -> Result<(CallGraph, CgSchedule), TypeError> {
        if options.algorithm == Algorithm::Everything {
            return Ok((Self::build_everything(program), CgSchedule::default()));
        }
        let roots = propagation_roots(program, options);
        let mut state = PropState::new(program, options.algorithm == Algorithm::Cha, roots);

        // Global initializers replay once, before the rounds — their
        // dispatch decisions are frozen at this point, exactly as in the
        // walking builder, so they never register pending candidates.
        let mut replays: u64 = 1;
        replay_summary(&mut state, None, summary.globals()?, false);

        // Replay pops are a few index operations each — there is no body
        // walk left to farm out (extraction already ran sharded inside
        // `ProgramSummary::build`), so rounds need no prepare step.
        let rounds = run_fixpoint(
            &mut state,
            telemetry,
            "callgraph replay",
            |_, _| {},
            |st, fid| {
                replays += 1;
                replay_summary(st, Some(fid), summary.function(fid)?, true);
                Ok(())
            },
        )?;

        #[cfg(debug_assertions)]
        verify_full_sweep(&mut state, |st, fid| {
            replay_summary(st, Some(fid), summary.function(fid)?, false);
            Ok(())
        })?;

        state.flush_telemetry(telemetry, rounds, Some(replays));
        let schedule = state.schedule(replays);
        Ok((state.freeze(options.algorithm), schedule))
    }

    /// Decomposes the graph into its dense storage for serialization.
    pub fn to_parts(&self) -> CallGraphParts {
        CallGraphParts {
            algorithm: self.algorithm,
            reachable: self.reachable.clone(),
            instantiated: self.instantiated.clone(),
            address_taken: self.address_taken.clone(),
            edge_offsets: self.edge_offsets.clone(),
            edge_targets: self.edge_targets.clone(),
        }
    }

    /// Rebuilds a graph from [`CallGraph::to_parts`] output against a
    /// program with `function_count` functions and `class_count`
    /// classes.
    ///
    /// The program may have *more* functions than the graph was built
    /// over (an edit appended new, unreached functions whose ids sort
    /// after every stored one); the CSR is extended with empty rows so
    /// the rebuilt graph equals what a fresh build over the grown
    /// program produces. It may never have fewer.
    ///
    /// # Errors
    ///
    /// Any structural violation — unsorted or out-of-range ids,
    /// non-monotone CSR offsets, an offset table longer than the
    /// program — so a corrupt snapshot is rejected rather than
    /// propagated into the analysis.
    pub fn from_parts(
        parts: CallGraphParts,
        function_count: usize,
        class_count: usize,
    ) -> Result<CallGraph, String> {
        let CallGraphParts {
            algorithm,
            reachable,
            instantiated,
            address_taken,
            mut edge_offsets,
            edge_targets,
        } = parts;
        fn check_ids(what: &str, ids: &[usize], bound: usize) -> Result<(), String> {
            if !ids.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("{what} ids are not strictly ascending"));
            }
            if ids.last().is_some_and(|&x| x >= bound) {
                return Err(format!("{what} id out of range"));
            }
            Ok(())
        }
        check_ids(
            "reachable",
            &reachable.iter().map(|f| f.index()).collect::<Vec<_>>(),
            function_count,
        )?;
        check_ids(
            "instantiated",
            &instantiated.iter().map(|c| c.index()).collect::<Vec<_>>(),
            class_count,
        )?;
        check_ids(
            "address_taken",
            &address_taken.iter().map(|f| f.index()).collect::<Vec<_>>(),
            function_count,
        )?;
        if edge_offsets.is_empty()
            || edge_offsets[0] != 0
            || edge_offsets.len() > function_count + 1
        {
            return Err("CSR offset table malformed".to_string());
        }
        if !edge_offsets.windows(2).all(|w| w[0] <= w[1]) {
            return Err("CSR offsets are not monotone".to_string());
        }
        let last = *edge_offsets.last().expect("non-empty");
        if last as usize != edge_targets.len() {
            return Err("CSR offsets disagree with edge targets".to_string());
        }
        if edge_targets
            .iter()
            .any(|t| t.index() >= function_count)
        {
            return Err("CSR edge target out of range".to_string());
        }
        // Appended functions have no edges: pad with empty rows.
        edge_offsets.resize(function_count + 1, last);
        let mut reachable_set = FuncBitSet::with_capacity(function_count);
        for &f in &reachable {
            reachable_set.insert(f);
        }
        let mut instantiated_set = ClassBitSet::with_capacity(class_count);
        for &c in &instantiated {
            instantiated_set.insert(c);
        }
        Ok(CallGraph {
            algorithm,
            reachable,
            reachable_set,
            instantiated,
            instantiated_set,
            edge_offsets,
            edge_targets,
            address_taken,
        })
    }

    /// The algorithm that produced this graph.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// Whether `func` is reachable from the roots.
    pub fn is_reachable(&self, func: FuncId) -> bool {
        self.reachable_set.contains(func)
    }

    /// The reachable functions, in id order.
    pub fn reachable(&self) -> impl ExactSizeIterator<Item = FuncId> + '_ {
        self.reachable.iter().copied()
    }

    /// Number of reachable functions.
    pub fn reachable_count(&self) -> usize {
        self.reachable.len()
    }

    /// Splits the reachable functions into at most `n` contiguous shards
    /// for parallel scanning.
    ///
    /// The shards partition [`CallGraph::reachable`] and **preserve its
    /// order**: concatenating the shards yields the reachable list in
    /// `FuncId` order. This contiguity is what lets the analysis merge
    /// per-shard deltas in shard order and reproduce the sequential
    /// first-mark-wins results bit for bit — a round-robin split would
    /// interleave the order and scramble recorded reasons.
    pub fn reachable_shards(&self, n: usize) -> Vec<Vec<FuncId>> {
        if self.reachable.is_empty() {
            return Vec::new();
        }
        let per_shard = self.reachable.len().div_ceil(n.max(1));
        self.reachable
            .chunks(per_shard)
            .map(<[FuncId]>::to_vec)
            .collect()
    }

    /// Classes considered instantiated (for `Everything` and `Cha`, all of
    /// them; for `Rta`, the fixpoint set).
    pub fn instantiated(&self) -> impl ExactSizeIterator<Item = ClassId> + '_ {
        self.instantiated.iter().copied()
    }

    /// Whether `class` is in the instantiated set.
    pub fn is_instantiated(&self, class: ClassId) -> bool {
        self.instantiated_set.contains(class)
    }

    /// Resolved direct call edges from `func`, in ascending id order.
    /// Virtual call sites contribute one edge per possible target.
    pub fn callees(&self, func: FuncId) -> impl Iterator<Item = FuncId> + '_ {
        let row = func.index();
        let targets: &[FuncId] = if row + 1 < self.edge_offsets.len() {
            let lo = self.edge_offsets[row] as usize;
            let hi = self.edge_offsets[row + 1] as usize;
            &self.edge_targets[lo..hi]
        } else {
            &[]
        };
        targets.iter().copied()
    }

    /// Total number of call edges.
    pub fn edge_count(&self) -> usize {
        self.edge_targets.len()
    }

    /// Functions whose address is taken in reachable code.
    pub fn address_taken(&self) -> impl Iterator<Item = FuncId> + '_ {
        self.address_taken.iter().copied()
    }
}

/// Shared fixpoint state of both propagating builders, kept dense: bitset
/// membership keyed by the program's `FuncId`/`ClassId` indices, sorted
/// per-function edge rows (frozen into CSR at the end), and the delta
/// worklist — `next` (functions to process in the following round),
/// `heap` (this round's remaining slots, popped in ascending id order),
/// `pending_dispatch` (class-indexed parked dispatch candidates), and
/// `ready` (widened edges waiting for their owner's drain slot).
struct PropState<'p> {
    program: &'p Program,
    cha: bool,
    reachable: FuncBitSet,
    instantiated: ClassBitSet,
    /// Per-caller sorted callee rows (binary-search insert keeps them
    /// deduplicated and ascending, matching the old `BTreeSet` order).
    edges: Vec<Vec<FuncId>>,
    edge_total: usize,
    address_taken: FuncBitSet,
    /// Function-pointer resolution deltas: the conservative rule is the
    /// full product `callers × address-taken targets`, maintained
    /// incrementally as `new × (all ∪ new)  ∪  old × new` per round.
    fp_caller_set: FuncBitSet,
    fp_callers_all: Vec<FuncId>,
    fp_callers_new: Vec<FuncId>,
    fp_targets_all: Vec<FuncId>,
    fp_targets_new: Vec<FuncId>,
    /// Receiver class → (owner function, dispatch target) pairs waiting
    /// for that class to be instantiated.
    pending_dispatch: Vec<Vec<(FuncId, FuncId)>>,
    /// Owner function → widened edges to add at its next worklist slot.
    ready: Vec<Vec<FuncId>>,
    /// This round's remaining slots, popped in ascending id order.
    heap: BinaryHeap<Reverse<FuncId>>,
    in_current: FuncBitSet,
    /// Next round's delta batch, in discovery order (the heap re-sorts).
    next: Vec<FuncId>,
    in_next: FuncBitSet,
    /// Functions whose first processing (walk/replay) already happened;
    /// a later pop of such a function is a readied-site drain slot.
    processed: FuncBitSet,
    /// Id of the slot currently being processed. A pending-dispatch
    /// release schedules its owner into the current round exactly when
    /// the owner's slot is still ahead of the cursor — the same moment a
    /// full-sweep re-walk of the owner would have seen the instantiation.
    cursor: FuncId,
    /// Recycled buffers for [`PropState::drain_ready`] and
    /// [`PropState::release_pending`]: a `mem::take` of a row would
    /// discard its capacity every drain, so hot owners (re-drained once
    /// per widening round) would reallocate per pop. Swapping through a
    /// scratch keeps one warm allocation circulating instead.
    drain_scratch: Vec<FuncId>,
    release_scratch: Vec<(FuncId, FuncId)>,
    pops: u64,
    drains: u64,
    parked: u64,
    /// Per-round `(delta_fns, pops, drains)` schedule log, recorded by
    /// [`run_fixpoint`] for [`PropState::schedule`].
    rounds_log: Vec<CgRound>,
    /// Distribution of unrefined virtual-site candidate-set sizes. A
    /// fixed inline array (no allocation, no branch on telemetry state):
    /// recording is one array increment, and the buckets only reach the
    /// metrics registry in [`PropState::flush_telemetry`].
    dispatch_candidates: Histogram,
}

impl<'p> PropState<'p> {
    fn new(program: &'p Program, cha: bool, roots: BTreeSet<FuncId>) -> PropState<'p> {
        let n = program.function_count();
        let k = program.class_count();
        let mut st = PropState {
            program,
            cha,
            reachable: FuncBitSet::with_capacity(n),
            instantiated: ClassBitSet::with_capacity(k),
            edges: vec![Vec::new(); n],
            edge_total: 0,
            address_taken: FuncBitSet::with_capacity(n),
            fp_caller_set: FuncBitSet::with_capacity(n),
            fp_callers_all: Vec::new(),
            fp_callers_new: Vec::new(),
            fp_targets_all: Vec::new(),
            fp_targets_new: Vec::new(),
            pending_dispatch: vec![Vec::new(); k],
            ready: vec![Vec::new(); n],
            heap: BinaryHeap::new(),
            in_current: FuncBitSet::with_capacity(n),
            next: Vec::new(),
            in_next: FuncBitSet::with_capacity(n),
            processed: FuncBitSet::with_capacity(n),
            cursor: FuncId::from_index(0),
            drain_scratch: Vec::new(),
            release_scratch: Vec::new(),
            pops: 0,
            drains: 0,
            parked: 0,
            rounds_log: Vec::new(),
            dispatch_candidates: Histogram::default(),
        };
        for f in roots {
            st.mark_reachable(f);
        }
        st
    }

    fn mark_reachable(&mut self, func: FuncId) {
        if self.reachable.insert(func) {
            // Newly reachable functions always wait for the next round:
            // the full-sweep engines worked from a snapshot of the
            // reachable set taken at round start.
            self.schedule_next(func);
        }
    }

    fn schedule_next(&mut self, func: FuncId) {
        if self.in_next.insert(func) {
            self.next.push(func);
        }
    }

    fn schedule_current(&mut self, func: FuncId) {
        if self.in_current.insert(func) {
            self.heap.push(Reverse(func));
        }
    }

    fn add_edge(&mut self, caller: Option<FuncId>, callee: FuncId) {
        if let Some(c) = caller {
            let row = &mut self.edges[c.index()];
            if let Err(pos) = row.binary_search(&callee) {
                row.insert(pos, callee);
                self.edge_total += 1;
            }
        }
        self.mark_reachable(callee);
    }

    /// A virtual call site with a §3.1 points-to-refined target set:
    /// dispatch is frozen to `targets` (never widened, never parked).
    fn op_virtual_refined(&mut self, caller: Option<FuncId>, decl: FuncId, targets: &[FuncId]) {
        if targets.is_empty() {
            // A null-only or unresolvable pointer: keep the static
            // declaration.
            self.add_edge(caller, decl);
        }
        for &t in targets {
            self.add_edge(caller, t);
        }
    }

    /// An unrefined virtual call site: filter the pre-resolved
    /// `(receiver class, override)` candidates by the instantiated set;
    /// when `register`ing (a function's first processing), park the rest
    /// in the pending-dispatch worklist so a later instantiation widens
    /// this site without revisiting the body.
    fn op_virtual_site(
        &mut self,
        caller: Option<FuncId>,
        decl: FuncId,
        candidates: &[(ClassId, FuncId)],
        register: bool,
    ) {
        self.dispatch_candidates.record(candidates.len() as u64);
        let mut any = false;
        for &(c, f) in candidates {
            if self.cha || self.instantiated.contains(c) {
                self.add_edge(caller, f);
                any = true;
            } else if register {
                if let Some(owner) = caller {
                    self.pending_dispatch[c.index()].push((owner, f));
                    self.parked += 1;
                }
            }
        }
        if !any {
            // No receiver established yet (schedule-sensitive!): keep the
            // static declaration so a later widening stays additive.
            self.add_edge(caller, decl);
        }
    }

    /// A `delete` of a pointer to `class`: through a virtual destructor
    /// the candidate subclass destructors dispatch like a virtual call
    /// (parked when uninstantiated), the static destructor and every
    /// ancestor destructor run unconditionally.
    fn op_delete(
        &mut self,
        caller: Option<FuncId>,
        dtor: Option<FuncId>,
        virtual_dtor: bool,
        candidates: &[(ClassId, FuncId)],
        ancestor_dtors: &[FuncId],
        register: bool,
    ) {
        if let Some(d) = dtor {
            if virtual_dtor {
                for &(c, f) in candidates {
                    if self.cha || self.instantiated.contains(c) {
                        self.add_edge(caller, f);
                    } else if register {
                        if let Some(owner) = caller {
                            self.pending_dispatch[c.index()].push((owner, f));
                            self.parked += 1;
                        }
                    }
                }
            }
            self.add_edge(caller, d);
        }
        // Destructors of base subobjects run too.
        for &d in ancestor_dtors {
            self.add_edge(caller, d);
        }
    }

    fn op_fn_pointer_call(&mut self, caller: Option<FuncId>) {
        if let Some(c) = caller {
            if self.fp_caller_set.insert(c) {
                self.fp_callers_new.push(c);
            }
        }
    }

    fn op_take_address(&mut self, func: FuncId) {
        // "If the address of a function f is taken in reachable code, we
        // assume f to be reachable."
        if self.address_taken.insert(func) {
            self.fp_targets_new.push(func);
        }
        self.mark_reachable(func);
    }

    /// Marks `class` (and everything it constructs implicitly: bases and
    /// by-value member classes) as instantiated, making their default
    /// constructors and destructors reachable, and releasing any dispatch
    /// candidates parked on the newly instantiated classes.
    fn op_instantiate(&mut self, caller: Option<FuncId>, class: ClassId, ctor: Option<FuncId>) {
        if let Some(c) = ctor {
            self.add_edge(caller, c);
        }
        let mut stack = vec![class];
        while let Some(c) = stack.pop() {
            if !self.instantiated.insert(c) {
                continue;
            }
            self.release_pending(c);
            // The destructor of anything instantiated may run.
            if let Some(d) = self.program.destructor(c) {
                self.mark_reachable(d);
            }
            let info = self.program.class(c);
            for b in &info.bases {
                if let Some(dc) = resolve_ctor(self.program, b.id, 0) {
                    self.mark_reachable(dc);
                }
                stack.push(b.id);
            }
            for m in &info.members {
                if let Some(name) = ddm_hierarchy::by_value_class(&m.ty) {
                    if let Some(id) = self.program.class_by_name(name) {
                        if let Some(dc) = resolve_ctor(self.program, id, 0) {
                            self.mark_reachable(dc);
                        }
                        stack.push(id);
                    }
                }
            }
        }
    }

    /// Releases the dispatch candidates parked on `class` into their
    /// owners' ready rows and schedules the owners' drain slots. An owner
    /// whose id is still ahead of the cursor drains this round (its
    /// full-sweep re-walk would have run later this round and seen the
    /// instantiation); an owner at or behind the cursor drains next round
    /// (its re-walk this round had already passed).
    fn release_pending(&mut self, class: ClassId) {
        // Swap the parked row out through the scratch buffer (and the
        // empty scratch in), so the row keeps a warm allocation for any
        // later parks on the same class.
        let mut waiters = std::mem::take(&mut self.release_scratch);
        std::mem::swap(&mut waiters, &mut self.pending_dispatch[class.index()]);
        for &(owner, target) in &waiters {
            self.ready[owner.index()].push(target);
            if owner > self.cursor {
                self.schedule_current(owner);
            } else {
                self.schedule_next(owner);
            }
        }
        waiters.clear();
        self.release_scratch = waiters;
    }

    /// Adds this round's new function-pointer edges: the conservative
    /// full product, restricted to pairs involving a caller or target
    /// first seen this round. Address-taken targets are already reachable
    /// when recorded, so these edges never create fresh reachability and
    /// the delta product is order-insensitive.
    fn resolve_fp_delta(&mut self) {
        if self.fp_callers_new.is_empty() && self.fp_targets_new.is_empty() {
            return;
        }
        let new_callers = std::mem::take(&mut self.fp_callers_new);
        let new_targets = std::mem::take(&mut self.fp_targets_new);
        for &c in &new_callers {
            for i in 0..self.fp_targets_all.len() {
                let t = self.fp_targets_all[i];
                self.add_edge(Some(c), t);
            }
            for &t in &new_targets {
                self.add_edge(Some(c), t);
            }
        }
        for i in 0..self.fp_callers_all.len() {
            let c = self.fp_callers_all[i];
            for &t in &new_targets {
                self.add_edge(Some(c), t);
            }
        }
        self.fp_callers_all.extend_from_slice(&new_callers);
        self.fp_targets_all.extend_from_slice(&new_targets);
    }

    /// Drains the widened edges readied for `owner` since its last slot.
    fn drain_ready(&mut self, owner: FuncId) {
        let mut widened = std::mem::take(&mut self.drain_scratch);
        std::mem::swap(&mut widened, &mut self.ready[owner.index()]);
        self.drains += widened.len() as u64;
        for &t in &widened {
            self.add_edge(Some(owner), t);
        }
        widened.clear();
        self.drain_scratch = widened;
    }

    /// Captures the converged run's schedule for persistence.
    fn schedule(&self, replays: u64) -> CgSchedule {
        CgSchedule {
            rounds: self.rounds_log.clone(),
            pops: self.pops,
            drains: self.drains,
            parked: self.parked,
            dispatch_candidates: self.dispatch_candidates.clone(),
            replays,
            interned_symbols: self.program.interner().len() as u64,
            arena_bytes: self.program.interner().arena_bytes() as u64,
        }
    }

    fn flush_telemetry(&self, telemetry: &Telemetry, rounds: u64, replays: Option<u64>) {
        telemetry.update_stats(|s| {
            s.callgraph_rounds = rounds;
            s.worklist_pushes += self.parked;
            s.cg_interned_symbols = self.program.interner().len() as u64;
            s.cg_arena_bytes = self.program.interner().arena_bytes() as u64;
            if let Some(r) = replays {
                s.summary_replays += r;
            }
        });
        telemetry.add_counters(&Counters {
            cg_worklist_pops: self.pops,
            cg_ready_drains: self.drains,
            ..Counters::default()
        });
        // Fixpoint summary event. Every field is schedule-equivalent
        // across engines and job counts (the same invariant the
        // deterministic counters are under), so this is det class.
        telemetry.event(EventClass::Deterministic, "cg_fixpoint", || {
            vec![
                ("rounds", rounds.into()),
                ("pops", self.pops.into()),
                ("drains", self.drains.into()),
                ("parked", self.parked.into()),
                ("reachable", self.reachable.count().into()),
                ("instantiated", self.instantiated.count().into()),
                ("edges", self.edge_total.into()),
            ]
        });
        telemetry.metrics(|m| {
            m.counter_add("callgraph/worklist_pops", self.pops);
            m.counter_add("callgraph/ready_drains", self.drains);
            m.hist_merge("callgraph/dispatch_candidates", &self.dispatch_candidates);
        });
    }

    /// Freezes the grow-phase state into the dense public representation:
    /// sorted id vectors plus the CSR adjacency (the per-caller rows are
    /// already sorted and deduplicated; freezing just concatenates them).
    fn freeze(self, algorithm: Algorithm) -> CallGraph {
        let reachable = self.reachable.to_vec();
        let instantiated = self.instantiated.to_vec();
        let address_taken = self.address_taken.to_vec();
        let mut edge_offsets = Vec::with_capacity(self.edges.len() + 1);
        let mut edge_targets = Vec::with_capacity(self.edge_total);
        edge_offsets.push(0u32);
        for row in &self.edges {
            edge_targets.extend_from_slice(row);
            edge_offsets.push(edge_targets.len() as u32);
        }
        CallGraph {
            algorithm,
            reachable,
            reachable_set: self.reachable,
            instantiated,
            instantiated_set: self.instantiated,
            edge_offsets,
            edge_targets,
            address_taken,
        }
    }
}

/// Runs the delta worklist to its fixpoint: each round moves the pending
/// `next` batch into the id-ordered heap and pops slots until the round
/// is empty — a first pop of a function runs `process` (full walk or
/// summary replay), a repeat pop drains the function's readied widenings
/// — then resolves the round's function-pointer delta. Terminates when no
/// next batch exists: the worklist-empty condition (every reachable
/// function processed, every readied site drained) replaces the old
/// recount-everything convergence triple, which `verify_full_sweep`
/// re-checks under `cfg(debug_assertions)`.
///
/// `prepare` sees each round's batch before any slot runs. A round-start
/// batch fully determines which functions get their first processing
/// this round (parking happens only inside `process`, so every mid-round
/// heap push is a drain slot for an already-processed owner) — that is
/// what lets the walking builder pre-extract batch bodies in parallel
/// without changing the schedule.
fn run_fixpoint<'p, E>(
    state: &mut PropState<'p>,
    telemetry: &Telemetry,
    label: &str,
    mut prepare: impl FnMut(&PropState<'p>, &[FuncId]),
    mut process: impl FnMut(&mut PropState<'p>, FuncId) -> Result<(), E>,
) -> Result<u64, E> {
    let mut rounds: u64 = 0;
    while !state.next.is_empty() {
        let batch = std::mem::take(&mut state.next);
        let round_span = telemetry.span(LANE_MAIN, || {
            format!("{label} delta {rounds} ({} fns)", batch.len())
        });
        telemetry.update_stats(|s| s.cg_round_deltas.push(batch.len() as u64));
        telemetry.metrics(|m| m.hist_record("callgraph/round_delta_fns", batch.len() as u64));
        let (pops_before, drains_before) = (state.pops, state.drains);
        let delta_fns = batch.len() as u64;
        prepare(state, &batch);
        for f in batch {
            state.in_next.remove(f);
            state.schedule_current(f);
        }
        while let Some(Reverse(f)) = state.heap.pop() {
            state.in_current.remove(f);
            state.cursor = f;
            state.pops += 1;
            if state.processed.insert(f) {
                process(state, f)?;
            } else {
                state.drain_ready(f);
            }
        }
        state.resolve_fp_delta();
        // The round's delta size and slot mix are schedule-equivalent
        // across engines and job counts (pinned by the worklist
        // equivalence suite), so the round event is det class. The label
        // is NOT a field: it names the engine ("callgraph" vs "callgraph
        // replay") and would break cross-engine byte-identity.
        telemetry.event(EventClass::Deterministic, "cg_round", || {
            vec![
                ("round", rounds.into()),
                ("delta_fns", delta_fns.into()),
                ("pops", (state.pops - pops_before).into()),
                ("drains", (state.drains - drains_before).into()),
            ]
        });
        state.rounds_log.push(CgRound {
            delta_fns,
            pops: state.pops - pops_before,
            drains: state.drains - drains_before,
        });
        drop(round_span);
        rounds += 1;
    }
    debug_assert!(
        state.ready.iter().all(Vec::is_empty),
        "every readied widening is drained before the fixpoint settles"
    );
    Ok(rounds)
}

/// Debug-build cross-check of the worklist-empty convergence condition
/// against the historical criterion: one more full sweep over the entire
/// reachable set (processing with `register = false`) plus a full
/// function-pointer product must leave the old convergence triple —
/// (reachable count, instantiated count, edge total) — unchanged.
#[cfg(debug_assertions)]
fn verify_full_sweep<'p, E>(
    state: &mut PropState<'p>,
    mut process: impl FnMut(&mut PropState<'p>, FuncId) -> Result<(), E>,
) -> Result<(), E> {
    let before = (
        state.reachable.count(),
        state.instantiated.count(),
        state.edge_total,
    );
    for fid in state.reachable.to_vec() {
        process(state, fid)?;
    }
    let callers = state.fp_callers_all.clone();
    let targets = state.fp_targets_all.clone();
    for &c in &callers {
        for &t in &targets {
            state.add_edge(Some(c), t);
        }
    }
    let after = (
        state.reachable.count(),
        state.instantiated.count(),
        state.edge_total,
    );
    assert_eq!(
        before, after,
        "worklist-empty fixpoint disagrees with the full-sweep convergence triple"
    );
    assert!(
        state.next.is_empty(),
        "a confirming full sweep scheduled new work after the worklist drained"
    );
    Ok(())
}

/// Replays one summary's call-graph steps in body order against the
/// shared propagation ops, mirroring [`EventSink`]'s handling of the
/// corresponding walk events.
fn replay_summary(st: &mut PropState<'_>, caller: Option<FuncId>, summary: &FnSummary, register: bool) {
    for step in &summary.cg_steps {
        match step {
            CgStep::Call(f) => st.add_edge(caller, *f),
            CgStep::VirtualCall(site) => match &site.refined {
                Some(fs) => st.op_virtual_refined(caller, site.decl, fs),
                None => st.op_virtual_site(caller, site.decl, &site.candidates, register),
            },
            CgStep::FnPointerCall => st.op_fn_pointer_call(caller),
            CgStep::TakeAddress(f) => st.op_take_address(*f),
            CgStep::Instantiate { class, ctor } => st.op_instantiate(caller, *class, *ctor),
            CgStep::Delete(site) => st.op_delete(
                caller,
                site.dtor,
                site.virtual_dtor,
                &site.candidates,
                &site.ancestor_dtors,
                register,
            ),
        }
    }
}

/// Re-emits a persisted converged run's telemetry — the deterministic
/// `cg_round` / `cg_fixpoint` events, the counters, the metrics, and
/// the execution stats — exactly as [`CallGraph::build_from_summary_with`]
/// would have while computing `graph` under `schedule`. A snapshot warm
/// start that reuses a stored graph calls this instead of re-running
/// the fixpoint, keeping the deterministic event stream byte-identical
/// to a cold run.
pub fn replay_schedule(graph: &CallGraph, schedule: &CgSchedule, telemetry: &Telemetry) {
    for (round, r) in schedule.rounds.iter().enumerate() {
        telemetry.update_stats(|s| s.cg_round_deltas.push(r.delta_fns));
        telemetry.metrics(|m| m.hist_record("callgraph/round_delta_fns", r.delta_fns));
        telemetry.event(EventClass::Deterministic, "cg_round", || {
            vec![
                ("round", (round as u64).into()),
                ("delta_fns", r.delta_fns.into()),
                ("pops", r.pops.into()),
                ("drains", r.drains.into()),
            ]
        });
    }
    telemetry.update_stats(|s| {
        s.callgraph_rounds = schedule.rounds.len() as u64;
        s.worklist_pushes += schedule.parked;
        s.cg_interned_symbols = schedule.interned_symbols;
        s.cg_arena_bytes = schedule.arena_bytes;
        s.summary_replays += schedule.replays;
    });
    telemetry.add_counters(&Counters {
        cg_worklist_pops: schedule.pops,
        cg_ready_drains: schedule.drains,
        ..Counters::default()
    });
    telemetry.event(EventClass::Deterministic, "cg_fixpoint", || {
        vec![
            ("rounds", (schedule.rounds.len() as u64).into()),
            ("pops", schedule.pops.into()),
            ("drains", schedule.drains.into()),
            ("parked", schedule.parked.into()),
            ("reachable", graph.reachable_count().into()),
            ("instantiated", graph.instantiated.len().into()),
            ("edges", graph.edge_count().into()),
        ]
    });
    telemetry.metrics(|m| {
        m.counter_add("callgraph/worklist_pops", schedule.pops);
        m.counter_add("callgraph/ready_drains", schedule.drains);
        m.hist_merge("callgraph/dispatch_candidates", &schedule.dispatch_candidates);
    });
}

/// The walking builder's event adapter: resolves each walk event to the
/// same pre-filtered form the summary extractor records (unfiltered
/// candidate lists, PTA-refined target sets), then feeds the shared
/// [`PropState`] ops — so both engines make identical propagation calls.
struct EventSink<'a, 'p> {
    caller: Option<FuncId>,
    /// Whether uninstantiated dispatch candidates may be parked in the
    /// pending-dispatch worklist (true only during a reachable function's
    /// first processing; global initializers are frozen).
    register: bool,
    lookup: &'a MemberLookup<'p>,
    pta: bool,
    /// Memoized points-to results per (function, receiver variable).
    pointee_cache: &'a mut HashMap<(FuncId, String), Option<BTreeSet<ClassId>>>,
    state: &'a mut PropState<'p>,
}

impl EventSink<'_, '_> {
    /// Cached §3.1 points-to query for `var` in `func`.
    fn pointees_of(&mut self, func: FuncId, var: &str) -> Option<BTreeSet<ClassId>> {
        let key = (func, var.to_string());
        if let Some(cached) = self.pointee_cache.get(&key) {
            return cached.clone();
        }
        let result = pta::local_pointees(self.state.program, func, var);
        self.pointee_cache.insert(key, result.clone());
        result
    }
}

impl EventVisitor for EventSink<'_, '_> {
    fn call(&mut self, ev: &CallEvent) {
        match &ev.target {
            CallTarget::Free(f) => self.state.add_edge(self.caller, *f),
            CallTarget::Builtin(_) => {}
            CallTarget::Method {
                func,
                receiver_class,
                is_virtual_dispatch,
                receiver_var,
            } => {
                if *is_virtual_dispatch {
                    // §3.1 refinement: a points-to set for the receiver
                    // variable narrows dispatch to the classes it can
                    // actually reference.
                    let refined = match (self.pta, receiver_var, self.caller) {
                        (true, Some(var), Some(caller)) => self.pointees_of(caller, var),
                        _ => None,
                    };
                    match refined {
                        Some(classes) => {
                            let program = self.state.program;
                            let name: &str = &program.function(*func).name;
                            let mut out = BTreeSet::new();
                            for c in classes {
                                if let Some(f) = self.lookup.resolve_virtual(c, name) {
                                    out.insert(f);
                                }
                            }
                            let targets: Vec<FuncId> = out.into_iter().collect();
                            self.state.op_virtual_refined(self.caller, *func, &targets);
                        }
                        None => {
                            let candidates =
                                self.lookup.dispatch_candidates_for(*receiver_class, *func);
                            self.state
                                .op_virtual_site(self.caller, *func, &candidates, self.register);
                        }
                    }
                } else {
                    self.state.add_edge(self.caller, *func);
                }
            }
            CallTarget::FunctionPointer => self.state.op_fn_pointer_call(self.caller),
        }
    }

    fn address_of_function(&mut self, func: FuncId, _span: ddm_cppfront::Span) {
        self.state.op_take_address(func);
    }

    fn instantiation(&mut self, ev: &InstantiationEvent) {
        self.state.op_instantiate(self.caller, ev.class, ev.ctor);
    }

    fn delete_of(&mut self, ev: &DeleteEvent) {
        let Some(class) = ev.pointee_class else {
            return;
        };
        let dtor = self.state.program.destructor(class);
        let virtual_dtor = dtor.is_some_and(|d| self.state.program.function(d).is_virtual);
        let candidates = if virtual_dtor {
            self.lookup.destructor_candidates(class)
        } else {
            std::rc::Rc::new(Vec::new())
        };
        let ancestor_dtors: Vec<FuncId> = self
            .state
            .program
            .ancestors_of(class)
            .into_iter()
            .filter_map(|a| self.state.program.destructor(a))
            .collect();
        self.state.op_delete(
            self.caller,
            dtor,
            virtual_dtor,
            &candidates,
            &ancestor_dtors,
            self.register,
        );
    }
}

/// The roots of the propagating builders: `main`, plus application
/// overrides (with bodies) of virtual methods declared in library
/// classes, which library code may call back into (§3.3).
fn propagation_roots(program: &Program, options: &CallGraphOptions) -> BTreeSet<FuncId> {
    let mut roots = BTreeSet::new();
    if let Some(main) = program.main_function() {
        roots.insert(main);
    }
    for (fid, f) in program.functions() {
        let Some(class) = f.class else { continue };
        if options.library_classes.contains(&class) {
            continue;
        }
        if f.is_virtual
            && f.body.is_some()
            && program
                .ancestors_of(class)
                .iter()
                .any(|a| options.library_classes.contains(a))
        {
            roots.insert(fid);
        }
    }
    roots
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddm_cppfront::parse;

    fn graph(src: &str, algorithm: Algorithm) -> (Program, CallGraph) {
        let tu = parse(src).expect("parse");
        let p = Program::build(&tu).expect("sema");
        let g = {
            let lk = MemberLookup::new(&p);
            CallGraph::build(
                &p,
                &lk,
                &CallGraphOptions {
                    algorithm,
                    ..Default::default()
                },
            )
            .expect("callgraph")
        };
        (p, g)
    }

    fn method(p: &Program, class: &str, name: &str) -> FuncId {
        p.direct_method(p.class_by_name(class).unwrap(), name)
            .unwrap()
    }

    #[test]
    fn unreachable_free_function_excluded() {
        let (p, g) = graph(
            "int used() { return 1; } int dead() { return 2; } int main() { return used(); }",
            Algorithm::Rta,
        );
        assert!(g.is_reachable(p.free_function("used").unwrap()));
        assert!(!g.is_reachable(p.free_function("dead").unwrap()));
        assert!(g.is_reachable(p.main_function().unwrap()));
    }

    #[test]
    fn transitive_calls_are_reachable() {
        let (p, g) = graph(
            "int c() { return 3; } int b() { return c(); } int a() { return b(); }\n\
             int main() { return a(); }",
            Algorithm::Rta,
        );
        for name in ["a", "b", "c"] {
            assert!(g.is_reachable(p.free_function(name).unwrap()), "{name}");
        }
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn everything_marks_all_bodies() {
        let (p, g) = graph(
            "class Z { public: int z; }; int dead() { return 2; } int main() { return 0; }",
            Algorithm::Everything,
        );
        assert!(g.is_reachable(p.free_function("dead").unwrap()));
        assert_eq!(g.algorithm(), Algorithm::Everything);
        assert!(g.is_instantiated(p.class_by_name("Z").unwrap()));
    }

    const VIRT: &str = "class A { public: virtual int f() { return 0; } };\n\
         class B : public A { public: virtual int f() { return 1; } };\n\
         class C : public A { public: virtual int f() { return 2; } };\n";

    #[test]
    fn rta_prunes_uninstantiated_receivers() {
        let src = format!("{VIRT}int main() {{ B b; A* ap = &b; return ap->f(); }}");
        let (p, g) = graph(&src, Algorithm::Rta);
        assert!(g.is_reachable(method(&p, "B", "f")));
        assert!(
            !g.is_reachable(method(&p, "C", "f")),
            "C is never instantiated; RTA must prune C::f"
        );
        assert!(!g.is_instantiated(p.class_by_name("C").unwrap()));
    }

    #[test]
    fn cha_keeps_all_subclass_receivers() {
        let src = format!("{VIRT}int main() {{ B b; A* ap = &b; return ap->f(); }}");
        let (p, g) = graph(&src, Algorithm::Cha);
        assert!(g.is_reachable(method(&p, "B", "f")));
        assert!(
            g.is_reachable(method(&p, "C", "f")),
            "CHA keeps every subclass override"
        );
    }

    #[test]
    fn figure1_call_graph_matches_paper() {
        // §3.1: "the call graph consists of the methods A::f, B::f, and
        // C::f in addition to main" (all three classes are instantiated).
        let src = "
            class N { public: int mn1; int mn2; };
            class A { public: virtual int f() { return ma1; } int ma1; int ma2; int ma3; };
            class B : public A { public: virtual int f() { return mb1; } int mb1; N mb2; int mb3; int mb4; };
            class C : public A { public: virtual int f() { return mc1; } int mc1; };
            int foo(int* x) { return (*x) + 1; }
            int main() {
                A a; B b; C c; A* ap;
                a.ma3 = b.mb3 + 1;
                int i = 10;
                if (i < 20) { ap = &a; } else { ap = &b; }
                return ap->f() + b.mb2.mn1 + foo(&b.mb4);
            }";
        let (p, g) = graph(src, Algorithm::Rta);
        assert!(g.is_reachable(method(&p, "A", "f")));
        assert!(g.is_reachable(method(&p, "B", "f")));
        assert!(g.is_reachable(method(&p, "C", "f")));
        assert!(g.is_reachable(p.free_function("foo").unwrap()));
        assert_eq!(g.reachable_count(), 5);
    }

    #[test]
    fn instantiation_closure_covers_bases_and_members() {
        let (p, g) = graph(
            "class Base { public: Base() { } ~Base() { } };\n\
             class Part { public: Part() { } };\n\
             class Whole : public Base { public: Part part; Whole() { } };\n\
             int main() { Whole w; return 0; }",
            Algorithm::Rta,
        );
        for name in ["Base", "Part", "Whole"] {
            assert!(g.is_instantiated(p.class_by_name(name).unwrap()), "{name}");
        }
        let base = p.class_by_name("Base").unwrap();
        assert!(g.is_reachable(p.constructors(base)[0]));
        assert!(g.is_reachable(p.destructor(base).unwrap()));
    }

    #[test]
    fn address_taken_functions_feed_indirect_calls() {
        let (p, g) = graph(
            "int f1() { return 1; } int f2() { return 2; } int f3() { return 3; }\n\
             int main() { int (*fp)() = f1; int (*fp2)() = f2; return fp(); }",
            Algorithm::Rta,
        );
        assert!(g.is_reachable(p.free_function("f1").unwrap()));
        assert!(
            g.is_reachable(p.free_function("f2").unwrap()),
            "address-taken functions are assumed reachable"
        );
        assert!(!g.is_reachable(p.free_function("f3").unwrap()));
        assert_eq!(g.address_taken().count(), 2);
    }

    #[test]
    fn library_overrides_are_roots() {
        let src = "class Widget { public: virtual void on_click(); int id; };\n\
                   class MyButton : public Widget { public: virtual void on_click() { count = count + 1; } int count; };\n\
                   int main() { MyButton b; return 0; }";
        let tu = parse(src).unwrap();
        let p = Program::build(&tu).unwrap();
        let lk = MemberLookup::new(&p);
        let widget = p.class_by_name("Widget").unwrap();
        let with_lib = CallGraph::build(
            &p,
            &lk,
            &CallGraphOptions {
                algorithm: Algorithm::Rta,
                library_classes: [widget].into_iter().collect(),
                ..Default::default()
            },
        )
        .unwrap();
        let on_click = p
            .direct_method(p.class_by_name("MyButton").unwrap(), "on_click")
            .unwrap();
        assert!(
            with_lib.is_reachable(on_click),
            "library callbacks must be call-graph roots"
        );
        let without = CallGraph::build(&p, &lk, &CallGraphOptions::default()).unwrap();
        assert!(!without.is_reachable(on_click));
    }

    #[test]
    fn delete_reaches_virtual_destructors() {
        let (p, g) = graph(
            "class A { public: virtual ~A() { } };\n\
             class B : public A { public: ~B() { } };\n\
             int main() { A* p = new B(); delete p; return 0; }",
            Algorithm::Rta,
        );
        let b = p.class_by_name("B").unwrap();
        assert!(g.is_reachable(p.destructor(b).unwrap()));
        let a = p.class_by_name("A").unwrap();
        assert!(g.is_reachable(p.destructor(a).unwrap()));
    }

    #[test]
    fn rta_ignores_instantiation_in_unreachable_code() {
        let (p, g) = graph(
            "class OnlyDead { public: OnlyDead() { } };\n\
             void never() { OnlyDead x; }\n\
             int main() { return 0; }",
            Algorithm::Rta,
        );
        assert!(!g.is_instantiated(p.class_by_name("OnlyDead").unwrap()));
        assert!(!g.is_reachable(p.free_function("never").unwrap()));
    }

    #[test]
    fn monotonicity_rta_subset_cha_subset_everything() {
        let src = format!(
            "{VIRT}int extra() {{ return 9; }}\n\
             int main() {{ B b; A* ap = &b; return ap->f(); }}"
        );
        let (_, rta) = graph(&src, Algorithm::Rta);
        let (_, cha) = graph(&src, Algorithm::Cha);
        let (_, all) = graph(&src, Algorithm::Everything);
        let rta_set: BTreeSet<_> = rta.reachable().collect();
        let cha_set: BTreeSet<_> = cha.reachable().collect();
        let all_set: BTreeSet<_> = all.reachable().collect();
        assert!(rta_set.is_subset(&cha_set));
        assert!(cha_set.is_subset(&all_set));
    }

    #[test]
    fn reachable_shards_partition_and_preserve_order() {
        let (_, g) = graph(
            "int a() { return 1; } int b() { return a(); } int c() { return b(); }\n\
             int d() { return c(); } int e() { return d(); }\n\
             int main() { return e(); }",
            Algorithm::Rta,
        );
        let sequential: Vec<FuncId> = g.reachable().collect();
        for n in [1usize, 2, 3, 4, 100] {
            let shards = g.reachable_shards(n);
            assert!(shards.len() <= n.max(1));
            assert!(shards.iter().all(|s| !s.is_empty()));
            let flat: Vec<FuncId> = shards.into_iter().flatten().collect();
            assert_eq!(flat, sequential, "n={n} must preserve order");
        }
    }

    #[test]
    fn reachable_shards_of_empty_graph() {
        // No main function: nothing reachable under RTA.
        let (_, g) = graph("int lonely() { return 1; }", Algorithm::Rta);
        assert_eq!(g.reachable_count(), 0);
        assert!(g.reachable_shards(4).is_empty());
    }

    #[test]
    fn summary_replay_matches_walking_builder() {
        // Exercises every step kind: static calls, virtual dispatch that
        // widens across rounds, fn-pointer calls, address-taken
        // functions, instantiation closures, and virtual deletes.
        let src = "
            class A { public: virtual int f() { return 0; } virtual ~A() { } };
            class B : public A { public: virtual int f() { return make(); } ~B() { } };
            class C : public A { public: virtual int f() { return 2; } };
            int ind() { return 7; }
            int make() { B* b = new B(); A* a = b; int r = a->f(); delete b; return r; }
            int main() { A a; int (*fp)() = ind; return a.f() + fp() + make(); }";
        let tu = parse(src).expect("parse");
        let p = Program::build(&tu).expect("sema");
        let lk = MemberLookup::new(&p);
        for algorithm in [
            Algorithm::Everything,
            Algorithm::Cha,
            Algorithm::Rta,
            Algorithm::Pta,
        ] {
            let options = CallGraphOptions {
                algorithm,
                ..Default::default()
            };
            let walked = CallGraph::build(&p, &lk, &options).expect("walked");
            let summary = ProgramSummary::build(&p, algorithm == Algorithm::Pta, 1);
            let replayed = CallGraph::build_from_summary(&p, &summary, &options).expect("replayed");
            assert_eq!(walked, replayed, "{algorithm} diverged");
        }
    }

    #[test]
    fn summary_replay_honours_library_roots() {
        let src = "class Widget { public: virtual void on_click(); int id; };\n\
                   class MyButton : public Widget { public: virtual void on_click() { count = count + 1; } int count; };\n\
                   int main() { MyButton b; return 0; }";
        let tu = parse(src).unwrap();
        let p = Program::build(&tu).unwrap();
        let lk = MemberLookup::new(&p);
        let options = CallGraphOptions {
            algorithm: Algorithm::Rta,
            library_classes: [p.class_by_name("Widget").unwrap()].into_iter().collect(),
            ..Default::default()
        };
        let walked = CallGraph::build(&p, &lk, &options).unwrap();
        let summary = ProgramSummary::build(&p, false, 1);
        let replayed = CallGraph::build_from_summary(&p, &summary, &options).unwrap();
        assert_eq!(walked, replayed);
    }

    #[test]
    fn callees_lists_direct_edges() {
        let (p, g) = graph(
            "int f() { return 1; } int main() { return f() + f(); }",
            Algorithm::Rta,
        );
        let main = p.main_function().unwrap();
        let callees: Vec<_> = g.callees(main).collect();
        assert_eq!(callees, vec![p.free_function("f").unwrap()]);
    }

    #[test]
    fn csr_rows_are_sorted_and_deduplicated() {
        // main calls several functions, some repeatedly: its CSR row must
        // be strictly ascending and the edge count exact.
        let (p, g) = graph(
            "int z() { return 1; } int y() { return z(); } int x() { return y(); }\n\
             int main() { return x() + y() + z() + x(); }",
            Algorithm::Rta,
        );
        let main = p.main_function().unwrap();
        let row: Vec<FuncId> = g.callees(main).collect();
        assert_eq!(row.len(), 3, "repeat calls are deduplicated");
        assert!(row.windows(2).all(|w| w[0] < w[1]), "rows strictly ascend");
        assert_eq!(g.edge_count(), 5);
        // Unreachable functions have empty rows.
        let (p2, g2) = graph(
            "int lonely() { return 1; } int main() { return 0; }",
            Algorithm::Rta,
        );
        assert_eq!(g2.callees(p2.free_function("lonely").unwrap()).count(), 0);
    }

    #[test]
    fn parallel_rounds_are_bit_identical_to_sequential() {
        // One wide delta round: main's batch fans out to well over
        // PARALLEL_ROUND_THRESHOLD unprocessed functions, so jobs > 1
        // takes the pre-extraction path. No class is instantiated until
        // a leaf in the middle of the round runs, so the early leaves'
        // dispatch sites park (and take the schedule-sensitive
        // static-decl fallback) and are released mid-round — the
        // hardest case for schedule equivalence.
        let n = PARALLEL_ROUND_THRESHOLD + 44;
        let mut src = String::from(
            "class A { public: virtual int f() { return 0; } virtual ~A() { } };\n\
             class B : public A { public: virtual int f() { return 1; } ~B() { } };\n\
             class C : public A { public: virtual int f() { return 2; } };\n",
        );
        for i in 0..n {
            if i == n / 2 {
                src.push_str(&format!(
                    "int leaf{i}(A* a) {{ B b; return a->f() + b.f() + {i}; }}\n"
                ));
            } else {
                src.push_str(&format!("int leaf{i}(A* a) {{ return a->f() + {i}; }}\n"));
            }
        }
        src.push_str("int main() { A* p = 0; int acc = 0;\n");
        for i in 0..n {
            src.push_str(&format!("    acc = acc + leaf{i}(p);\n"));
        }
        src.push_str("    return acc; }\n");

        let tu = parse(&src).expect("parse");
        let p = Program::build(&tu).expect("sema");
        let lk = MemberLookup::new(&p);
        let mut baseline = None;
        for jobs in [1usize, 2, 8] {
            let options = CallGraphOptions {
                algorithm: Algorithm::Rta,
                jobs,
                ..Default::default()
            };
            let tel = Telemetry::enabled();
            let g = CallGraph::build_with(&p, &lk, &options, &tel).expect("build");
            let counters = tel.counters();
            let fingerprint = (
                g,
                counters.cg_worklist_pops,
                counters.cg_ready_drains,
                tel.stats().cg_round_deltas.clone(),
            );
            match &baseline {
                None => baseline = Some(fingerprint),
                Some(b) => {
                    assert_eq!(b.0, fingerprint.0, "graph diverged at jobs={jobs}");
                    assert_eq!(
                        (b.1, b.2, &b.3),
                        (fingerprint.1, fingerprint.2, &fingerprint.3),
                        "schedule diverged at jobs={jobs}"
                    );
                }
            }
        }
    }

    #[test]
    fn parts_roundtrip_reproduces_the_graph() {
        let src = "
            class A { public: virtual int f() { return 0; } virtual ~A() { } };
            class B : public A { public: virtual int f() { return make(); } ~B() { } };
            class C : public A { public: virtual int f() { return 2; } };
            int ind() { return 7; }
            int make() { B* b = new B(); A* a = b; int r = a->f(); delete b; return r; }
            int main() { A a; int (*fp)() = ind; return a.f() + fp() + make(); }";
        let tu = parse(src).expect("parse");
        let p = Program::build(&tu).expect("sema");
        let lk = MemberLookup::new(&p);
        for algorithm in [Algorithm::Cha, Algorithm::Rta, Algorithm::Pta] {
            let options = CallGraphOptions {
                algorithm,
                ..Default::default()
            };
            let g = CallGraph::build(&p, &lk, &options).expect("build");
            let back =
                CallGraph::from_parts(g.to_parts(), p.function_count(), p.class_count())
                    .expect("from_parts");
            assert_eq!(g, back, "{algorithm}");
        }
    }

    #[test]
    fn from_parts_pads_csr_for_appended_functions() {
        // The stored graph was built over a program with one fewer
        // function (ids beyond the stored count are unreached tail ids).
        let (p, g) = graph(
            "int f() { return 1; } int main() { return f(); }",
            Algorithm::Rta,
        );
        let grown = CallGraph::from_parts(g.to_parts(), p.function_count() + 1, p.class_count())
            .expect("grown");
        assert_eq!(grown.reachable_count(), g.reachable_count());
        assert_eq!(grown.edge_count(), g.edge_count());
        assert_eq!(
            grown.callees(FuncId::from_index(p.function_count())).count(),
            0,
            "appended function has no edges"
        );
        assert!(!grown.is_reachable(FuncId::from_index(p.function_count())));
    }

    #[test]
    fn from_parts_rejects_structural_corruption() {
        let (p, g) = graph(
            "int f() { return 1; } int main() { return f(); }",
            Algorithm::Rta,
        );
        let (fns, classes) = (p.function_count(), p.class_count());
        // Too-short program.
        assert!(CallGraph::from_parts(g.to_parts(), fns - 1, classes).is_err());
        // Unsorted reachable ids.
        let mut parts = g.to_parts();
        parts.reachable.reverse();
        assert!(CallGraph::from_parts(parts, fns, classes).is_err());
        // Offsets disagreeing with targets.
        let mut parts = g.to_parts();
        parts.edge_targets.pop();
        assert!(CallGraph::from_parts(parts, fns, classes).is_err());
        // Non-monotone offsets.
        let mut parts = g.to_parts();
        if parts.edge_offsets.len() > 2 {
            parts.edge_offsets[1] = u32::MAX;
            assert!(CallGraph::from_parts(parts, fns, classes).is_err());
        }
        // Out-of-range edge target.
        let mut parts = g.to_parts();
        if let Some(t) = parts.edge_targets.first_mut() {
            *t = FuncId::from_index(fns + 9);
            assert!(CallGraph::from_parts(parts, fns, classes).is_err());
        }
    }

    #[test]
    fn schedule_replay_reproduces_fresh_telemetry() {
        let src = "
            class A { public: virtual int f() { return 0; } virtual ~A() { } };
            class B : public A { public: virtual int f() { return make(); } ~B() { } };
            class C : public A { public: virtual int f() { return 2; } };
            int ind() { return 7; }
            int make() { B* b = new B(); A* a = b; int r = a->f(); delete b; return r; }
            int main() { A a; int (*fp)() = ind; return a.f() + fp() + make(); }";
        let tu = parse(src).expect("parse");
        let p = Program::build(&tu).expect("sema");
        let summary = ProgramSummary::build(&p, false, 1);
        let options = CallGraphOptions::default();

        let fresh_tel = Telemetry::enabled();
        let (g, schedule) =
            CallGraph::build_from_summary_schedule(&p, &summary, &options, &fresh_tel)
                .expect("fresh");
        assert!(!schedule.rounds.is_empty());
        assert_eq!(
            schedule.rounds.iter().map(|r| r.pops).sum::<u64>(),
            schedule.pops
        );

        let replay_tel = Telemetry::enabled();
        let reused = CallGraph::from_parts(g.to_parts(), p.function_count(), p.class_count())
            .expect("from_parts");
        replay_schedule(&reused, &schedule, &replay_tel);

        assert_eq!(fresh_tel.counters(), replay_tel.counters());
        assert_eq!(fresh_tel.stats(), replay_tel.stats());
        assert_eq!(fresh_tel.metrics_snapshot(), replay_tel.metrics_snapshot());
        assert_eq!(
            fresh_tel.events_ndjson(Some(ddm_telemetry::EventClass::Deterministic)),
            replay_tel.events_ndjson(Some(ddm_telemetry::EventClass::Deterministic)),
            "deterministic event stream must be byte-identical"
        );
    }

    #[test]
    fn worklist_counters_identical_across_engines() {
        // The delta schedule is shared by construction, so pops and
        // drains — not just the resulting graph — must agree.
        let src = "
            class A { public: virtual int f() { return 0; } virtual ~A() { } };
            class B : public A { public: virtual int f() { return make(); } ~B() { } };
            class C : public A { public: virtual int f() { return 2; } };
            int ind() { return 7; }
            int make() { B* b = new B(); A* a = b; int r = a->f(); delete b; return r; }
            int main() { A a; int (*fp)() = ind; return a.f() + fp() + make(); }";
        let tu = parse(src).expect("parse");
        let p = Program::build(&tu).expect("sema");
        let lk = MemberLookup::new(&p);
        let options = CallGraphOptions::default();
        let walk_tel = Telemetry::enabled();
        CallGraph::build_with(&p, &lk, &options, &walk_tel).unwrap();
        let summary = ProgramSummary::build(&p, false, 1);
        let replay_tel = Telemetry::enabled();
        CallGraph::build_from_summary_with(&p, &summary, &options, &replay_tel).unwrap();
        let walked = walk_tel.counters();
        let replayed = replay_tel.counters();
        assert!(walked.cg_worklist_pops > 0);
        assert_eq!(walked.cg_worklist_pops, replayed.cg_worklist_pops);
        assert_eq!(walked.cg_ready_drains, replayed.cg_ready_drains);
        assert_eq!(
            walk_tel.stats().cg_round_deltas,
            replay_tel.stats().cg_round_deltas,
            "delta batches must line up round for round"
        );
    }
}
