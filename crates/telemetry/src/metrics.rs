//! Typed metrics registry: counters, gauges, and fixed-bound
//! histograms, exported under a versioned JSON schema (`--metrics-out`).
//!
//! Histogram buckets use **fixed power-of-two bounds**: bucket 0 holds
//! the value 0, bucket *k* (k ≥ 1) holds values in `[2^(k-1), 2^k)`.
//! Because the bounds never depend on the data, the bucket *counts* of
//! deterministic quantities — fixpoint round delta sizes, dispatch
//! candidate-set sizes, TU summary sizes — are themselves deterministic
//! across jobs × engines × cache states, so tests can assert them the
//! same way they assert [`Counters`](crate::Counters). A quantile
//! sketch or data-dependent bucketing would destroy that property.
//!
//! Metric names are `phase/quantity` paths (`callgraph/round_delta_fns`,
//! `frontend/tu_summary_bytes`); each histogram aggregates over the
//! phase's per-TU / per-round observations. The registry renders in
//! sorted name order, so equal registries render byte-identically.

use std::collections::BTreeMap;

/// Number of power-of-two buckets: {0} plus one per bit of a `u64`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Bucket index for `v`: 0 for 0, otherwise the bit length of `v`
/// (so bucket `k` covers `[2^(k-1), 2^k)`).
pub fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// A fixed-bound power-of-two histogram (see the module docs for the
/// bucket rule).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; HISTOGRAM_BUCKETS],
    total: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            counts: [0; HISTOGRAM_BUCKETS],
            total: 0,
            sum: 0,
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Adds another histogram's observations into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Total observation count.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of all observed values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The `(bucket index, count)` pairs of non-empty buckets,
    /// ascending.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(k, &c)| (k, c))
            .collect()
    }

    /// Decomposes the histogram into `(nonzero buckets, count, sum)` for
    /// external serialization (the analysis snapshot stores dispatch
    /// histograms this way).
    pub fn to_parts(&self) -> (Vec<(usize, u64)>, u64, u64) {
        (self.nonzero_buckets(), self.total, self.sum)
    }

    /// Rebuilds a histogram from [`Histogram::to_parts`] output.
    ///
    /// # Errors
    ///
    /// Rejects out-of-range bucket indices and a `count` that disagrees
    /// with the bucket counts, so a corrupt snapshot cannot smuggle in an
    /// inconsistent distribution.
    pub fn from_parts(
        buckets: &[(usize, u64)],
        count: u64,
        sum: u64,
    ) -> Result<Histogram, String> {
        let mut h = Histogram {
            counts: [0; HISTOGRAM_BUCKETS],
            total: count,
            sum,
        };
        let mut total = 0u64;
        for &(k, c) in buckets {
            if k >= HISTOGRAM_BUCKETS {
                return Err(format!("histogram bucket {k} out of range"));
            }
            h.counts[k] += c;
            total += c;
        }
        if total != count {
            return Err(format!(
                "histogram bucket counts sum to {total}, expected {count}"
            ));
        }
        Ok(h)
    }
}

/// One registered metric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Metric {
    /// Monotone count.
    Counter(u64),
    /// Last-write-wins level.
    Gauge(i64),
    /// Fixed-bound distribution.
    Histogram(Histogram),
}

/// The registry: metric name → metric, rendered in sorted name order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    metrics: BTreeMap<String, Metric>,
}

/// The schema tag written into every metrics document.
pub const METRICS_SCHEMA: &str = "ddm-metrics/1";

impl MetricsRegistry {
    /// Adds `delta` to the counter `name` (created at 0).
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        match self
            .metrics
            .entry(name.to_string())
            .or_insert(Metric::Counter(0))
        {
            Metric::Counter(v) => *v += delta,
            other => panic!("metric {name} is not a counter: {other:?}"),
        }
    }

    /// Sets the gauge `name`.
    pub fn gauge_set(&mut self, name: &str, value: i64) {
        self.metrics
            .insert(name.to_string(), Metric::Gauge(value));
    }

    /// Records one observation into the histogram `name`.
    pub fn hist_record(&mut self, name: &str, value: u64) {
        match self
            .metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::default()))
        {
            Metric::Histogram(h) => h.record(value),
            other => panic!("metric {name} is not a histogram: {other:?}"),
        }
    }

    /// Merges a pre-aggregated histogram into the histogram `name`.
    pub fn hist_merge(&mut self, name: &str, hist: &Histogram) {
        match self
            .metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::default()))
        {
            Metric::Histogram(h) => h.merge(hist),
            other => panic!("metric {name} is not a histogram: {other:?}"),
        }
    }

    /// Whether nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// The registered metrics, in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Metric)> {
        self.metrics.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Looks up one metric by name.
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.metrics.get(name)
    }

    /// Renders the registry as a versioned JSON document. Histogram
    /// buckets are emitted as `(bucket index, count)` pairs — the bound
    /// rule is fixed by the schema (`"bucket_bounds": "pow2"`), so no
    /// bucket boundary ever appears as a (potentially 64-bit) number.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{METRICS_SCHEMA}\",\n"));
        out.push_str("  \"metrics\": [\n");
        let total = self.metrics.len();
        for (i, (name, metric)) in self.metrics.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", ",
                crate::json::escape(name)
            ));
            match metric {
                Metric::Counter(v) => {
                    out.push_str(&format!("\"type\": \"counter\", \"value\": {v}}}"));
                }
                Metric::Gauge(v) => {
                    out.push_str(&format!("\"type\": \"gauge\", \"value\": {v}}}"));
                }
                Metric::Histogram(h) => {
                    out.push_str(&format!(
                        "\"type\": \"histogram\", \"bucket_bounds\": \"pow2\", \"count\": {}, \"sum\": {}, \"buckets\": [",
                        h.count(),
                        h.sum()
                    ));
                    let buckets = h.nonzero_buckets();
                    for (j, (k, c)) in buckets.iter().enumerate() {
                        out.push_str(&format!("{{\"bucket\": {k}, \"count\": {c}}}"));
                        if j + 1 < buckets.len() {
                            out.push_str(", ");
                        }
                    }
                    out.push_str("]}");
                }
            }
            out.push_str(if i + 1 < total { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_rule_is_power_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(7), 3);
        assert_eq!(bucket_of(8), 4);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn histogram_counts_and_merges() {
        let mut a = Histogram::default();
        for v in [0, 1, 3, 8] {
            a.record(v);
        }
        assert_eq!(a.count(), 4);
        assert_eq!(a.sum(), 12);
        assert_eq!(a.nonzero_buckets(), vec![(0, 1), (1, 1), (2, 1), (4, 1)]);
        let mut b = Histogram::default();
        b.record(3);
        a.merge(&b);
        assert_eq!(a.nonzero_buckets(), vec![(0, 1), (1, 1), (2, 2), (4, 1)]);
    }

    #[test]
    fn registry_renders_valid_sorted_json() {
        let mut r = MetricsRegistry::default();
        r.hist_record("callgraph/round_delta_fns", 3);
        r.counter_add("liveness/scan_reads", 9);
        r.gauge_set("run/jobs", 8);
        let doc = r.render_json();
        crate::json::validate(&doc).expect("metrics document is valid JSON");
        let cg = doc.find("callgraph/round_delta_fns").unwrap();
        let scan = doc.find("liveness/scan_reads").unwrap();
        let jobs = doc.find("run/jobs").unwrap();
        assert!(cg < scan && scan < jobs, "metrics render in name order");
        assert!(doc.contains(METRICS_SCHEMA));
        assert!(doc.contains("\"bucket_bounds\": \"pow2\""));
    }

    #[test]
    fn equal_registries_render_byte_identically() {
        let build = || {
            let mut r = MetricsRegistry::default();
            r.hist_record("a/h", 5);
            r.hist_record("a/h", 0);
            r.counter_add("b/c", 2);
            r
        };
        assert_eq!(build().render_json(), build().render_json());
    }
}
