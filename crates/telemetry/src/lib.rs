//! # ddm-telemetry
//!
//! Observability for the dead-data-member pipeline, split along one hard
//! line:
//!
//! * **Deterministic counters** ([`Counters`]) are semantic event counts —
//!   how many members the scan read, how many `MarkAllContainedMembers`
//!   expansions fired, how many union-fixpoint rounds ran. They are
//!   bit-identical across `--jobs 1..N` and across both engines
//!   (walk/summary), so tests can assert them.
//! * **Timing spans** ([`SpanRecord`]) and **execution stats**
//!   ([`ExecStats`]) are observational — wall-clock phase timings, worker
//!   lanes, round counts, whether the sequential fast path fired. They
//!   describe *how* a particular run executed and are never asserted for
//!   equality across configurations.
//!
//! A [`Telemetry`] handle is threaded through the pipeline by reference.
//! The disabled handle ([`Telemetry::disabled`]) holds no state at all:
//! [`Telemetry::span`] never evaluates its name closure, never reads the
//! clock, and never allocates, so instrumented hot loops cost a branch on
//! an `Option` when telemetry is off.
//!
//! Enabled spans export to Chrome trace-event JSON
//! ([`Telemetry::chrome_trace_json`], loadable in `chrome://tracing` or
//! Perfetto, one lane per worker) and to a human-readable stderr table
//! ([`Telemetry::render_stats`]).

pub mod events;
pub mod json;
pub mod metrics;

pub use events::{Event, EventClass, FieldValue, Fields};
pub use metrics::{Histogram, Metric, MetricsRegistry};

use events::EventLog;
use std::sync::Mutex;
use std::time::Instant;

/// The span lane of the coordinating thread. Worker lanes are `1..=N`
/// (shard index + 1).
pub const LANE_MAIN: u32 = 0;

/// Deterministic event counts: identical for every `--jobs` value and
/// both engines on the same input and configuration.
///
/// Scan counters count *marking attempts* (events the paper's rules
/// fire on), not fresh marks: attempts partition across shards, so their
/// sum is independent of how the reachable set is sliced, while fresh
/// marks would depend on which shard saw a member first.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Counters {
    /// Functions reachable in the call graph.
    pub reachable_functions: u64,
    /// Resolved call edges.
    pub callgraph_edges: u64,
    /// Classes in the instantiated set.
    pub instantiated_classes: u64,
    /// Call-graph delta-worklist pops (first processings + readied-site
    /// drain slots). Both builders drive the same schedule, so the count
    /// is engine- and jobs-independent.
    pub cg_worklist_pops: u64,
    /// Widened dispatch edges drained from readied sites after their
    /// receiver classes became instantiated.
    pub cg_ready_drains: u64,
    /// Member reads the scan marked live for.
    pub scan_reads: u64,
    /// Address-taken member accesses.
    pub scan_address_taken: u64,
    /// `&Z::m` pointer-to-member expressions.
    pub scan_ptr_to_member: u64,
    /// Stores to volatile members.
    pub scan_volatile_writes: u64,
    /// `MarkAllContainedMembers` triggers that fired after resolving the
    /// configuration gates (unsafe casts, down-cast policy, sizeof policy).
    pub markall_triggers: u64,
    /// Distinct classes expanded by `MarkAllContainedMembers` before the
    /// union post-pass (the merged visited set).
    pub markall_classes_expanded: u64,
    /// Union-propagation fixpoint rounds (including the final,
    /// nothing-changed round).
    pub union_rounds: u64,
    /// Classes the union post-pass expanded.
    pub union_classes_livened: u64,
    /// Final classification: live / dead / unclassifiable members.
    pub members_live: u64,
    /// Members classified dead.
    pub members_dead: u64,
    /// Members of library classes (§3.3), unclassifiable.
    pub members_unclassifiable: u64,
}

impl Counters {
    /// Adds `other` into `self`, field-wise. Contributions come from
    /// disjoint phases (scan counters from the analysis, graph and
    /// classification totals from the pipeline), merged in a fixed order
    /// like `Liveness::merge`.
    pub fn add(&mut self, other: &Counters) {
        for ((_, a), (_, b)) in self.rows_mut().into_iter().zip(other.rows()) {
            *a += b;
        }
    }

    /// Stable (key, value) view, in rendering order. The keys double as
    /// JSON field names in `BENCH_suite.json`.
    pub fn rows(&self) -> [(&'static str, u64); 16] {
        [
            ("reachable_functions", self.reachable_functions),
            ("callgraph_edges", self.callgraph_edges),
            ("instantiated_classes", self.instantiated_classes),
            ("cg_worklist_pops", self.cg_worklist_pops),
            ("cg_ready_drains", self.cg_ready_drains),
            ("scan_reads", self.scan_reads),
            ("scan_address_taken", self.scan_address_taken),
            ("scan_ptr_to_member", self.scan_ptr_to_member),
            ("scan_volatile_writes", self.scan_volatile_writes),
            ("markall_triggers", self.markall_triggers),
            ("markall_classes_expanded", self.markall_classes_expanded),
            ("union_rounds", self.union_rounds),
            ("union_classes_livened", self.union_classes_livened),
            ("members_live", self.members_live),
            ("members_dead", self.members_dead),
            ("members_unclassifiable", self.members_unclassifiable),
        ]
    }

    /// Renders the counters as the aligned key/value rows printed under
    /// the `== deterministic counters ==` heading of `--stats`. The
    /// serve-mode `stats` query renders through the same helper, so the
    /// two surfaces cannot drift byte-wise.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        for (key, value) in self.rows() {
            out.push_str(&format!("{key:<44} {value:>12}\n"));
        }
        out
    }

    fn rows_mut(&mut self) -> [(&'static str, &mut u64); 16] {
        [
            ("reachable_functions", &mut self.reachable_functions),
            ("callgraph_edges", &mut self.callgraph_edges),
            ("instantiated_classes", &mut self.instantiated_classes),
            ("cg_worklist_pops", &mut self.cg_worklist_pops),
            ("cg_ready_drains", &mut self.cg_ready_drains),
            ("scan_reads", &mut self.scan_reads),
            ("scan_address_taken", &mut self.scan_address_taken),
            ("scan_ptr_to_member", &mut self.scan_ptr_to_member),
            ("scan_volatile_writes", &mut self.scan_volatile_writes),
            ("markall_triggers", &mut self.markall_triggers),
            (
                "markall_classes_expanded",
                &mut self.markall_classes_expanded,
            ),
            ("union_rounds", &mut self.union_rounds),
            ("union_classes_livened", &mut self.union_classes_livened),
            ("members_live", &mut self.members_live),
            ("members_dead", &mut self.members_dead),
            ("members_unclassifiable", &mut self.members_unclassifiable),
        ]
    }
}

/// Observational execution shape: how *this* run happened to execute.
/// Varies with `--jobs`, the engine, and scheduling; never asserted for
/// cross-configuration equality.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ExecStats {
    /// Engine name ("walk" / "summary").
    pub engine: String,
    /// Requested worker count.
    pub jobs: u64,
    /// Function/global bodies traversed (AST walks).
    pub bodies_walked: u64,
    /// `FnSummary` replays (call-graph construction + liveness scan).
    pub summary_replays: u64,
    /// Call-graph fixpoint rounds.
    pub callgraph_rounds: u64,
    /// Liveness scan rounds (sequential scan: 1).
    pub scan_rounds: u64,
    /// Shards the scan was split into (sequential scan: 1).
    pub scan_shards: u64,
    /// Whether `run_jobs` fell back to the sequential scan because the
    /// program is below the function-count threshold.
    pub scan_sequential_fastpath: bool,
    /// `Liveness::merge` reductions performed by the coordinator.
    pub liveness_merges: u64,
    /// Pending-dispatch worklist registrations in the summary call-graph
    /// builder.
    pub worklist_pushes: u64,
    /// Worker idle→busy transitions (one per scan command processed).
    pub worker_busy_transitions: u64,
    /// Translation units in the project (multi-TU runs; single-TU: 0).
    pub tu_modules: u64,
    /// Per-TU summary modules served from the persistent cache.
    pub tu_cache_hits: u64,
    /// TUs whose cache entry was absent (recomputed and written back).
    pub tu_cache_misses: u64,
    /// Cache entries discarded as corrupt, version-mismatched, or
    /// fingerprint-mismatched (a subset of the misses).
    pub tu_cache_invalidations: u64,
    /// TUs actually parsed this run.
    pub tus_parsed: u64,
    /// TUs actually summarized (walked) this run.
    pub tus_summarized: u64,
    /// Bytes held by the call-graph symbol interner's string arena.
    pub cg_arena_bytes: u64,
    /// Distinct function-name symbols interned for dispatch caching.
    pub cg_interned_symbols: u64,
    /// Project front-end wall time (hashing, cache probes, parsing,
    /// summarizing, write-back) in nanoseconds. Single-TU runs: 0.
    pub frontend_ns: u64,
    /// Link phase wall time in nanoseconds (project runs only).
    pub link_ns: u64,
    /// Call-graph phase wall time in nanoseconds (project runs only).
    pub callgraph_ns: u64,
    /// Liveness phase wall time in nanoseconds (project runs only).
    pub liveness_ns: u64,
    /// Warm starts served by the persisted analysis snapshot (0 or 1).
    pub snapshot_warm_starts: u64,
    /// Reachable functions whose converged fixpoint facts were reused
    /// from the snapshot instead of replayed.
    pub snapshot_reused_fns: u64,
    /// Size of the invalidation frontier the snapshot warm start
    /// computed from the link delta (added + removed + changed
    /// functions across changed TUs).
    pub snapshot_frontier_fns: u64,
    /// Flight-recorder events lost to the per-class log bound
    /// ([`events::EVENT_LOG_CAP`]), accumulated across drains. Nonzero
    /// means the NDJSON stream ended with a `log_truncated` record.
    pub events_dropped: u64,
    /// Per-round delta-batch sizes of the call-graph fixpoint: entry `r`
    /// is how many worklist slots round `r` processed. Empty when no
    /// propagating build ran (e.g. the `Everything` algorithm).
    pub cg_round_deltas: Vec<u64>,
}

impl ExecStats {
    /// Stable (key, value) view of the numeric fields, in rendering order.
    pub fn rows(&self) -> [(&'static str, u64); 25] {
        [
            ("jobs", self.jobs),
            ("bodies_walked", self.bodies_walked),
            ("summary_replays", self.summary_replays),
            ("callgraph_rounds", self.callgraph_rounds),
            ("scan_rounds", self.scan_rounds),
            ("scan_shards", self.scan_shards),
            ("liveness_merges", self.liveness_merges),
            ("worklist_pushes", self.worklist_pushes),
            ("worker_busy_transitions", self.worker_busy_transitions),
            ("tu_modules", self.tu_modules),
            ("tu_cache_hits", self.tu_cache_hits),
            ("tu_cache_misses", self.tu_cache_misses),
            ("tu_cache_invalidations", self.tu_cache_invalidations),
            ("tus_parsed", self.tus_parsed),
            ("tus_summarized", self.tus_summarized),
            ("cg_arena_bytes", self.cg_arena_bytes),
            ("cg_interned_symbols", self.cg_interned_symbols),
            ("frontend_ns", self.frontend_ns),
            ("link_ns", self.link_ns),
            ("callgraph_ns", self.callgraph_ns),
            ("liveness_ns", self.liveness_ns),
            ("snapshot_warm_starts", self.snapshot_warm_starts),
            ("snapshot_reused_fns", self.snapshot_reused_fns),
            ("snapshot_frontier_fns", self.snapshot_frontier_fns),
            ("events_dropped", self.events_dropped),
        ]
    }
}

/// One completed timed phase. `start_ns` is relative to the handle's
/// creation; nesting is by time containment within a lane (the Chrome
/// trace model).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Phase name, e.g. `"parse"` or `"scan round 0 shard 2 (11 fns)"`.
    pub name: String,
    /// 0 = coordinator, `1..=N` = worker lanes.
    pub lane: u32,
    /// Nanoseconds since the handle was created.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
}

#[derive(Debug, Default)]
struct Collected {
    spans: Vec<SpanRecord>,
    counters: Counters,
    stats: ExecStats,
    events: EventLog,
    metrics: MetricsRegistry,
}

#[derive(Debug)]
struct Inner {
    epoch: Instant,
    record_events: bool,
    record_metrics: bool,
    collected: Mutex<Collected>,
}

/// The telemetry handle threaded through the pipeline.
///
/// Shared by reference across worker threads (all state sits behind one
/// mutex, touched only at phase boundaries — never inside per-member
/// marking loops).
#[derive(Debug)]
pub struct Telemetry {
    inner: Option<Inner>,
}

impl Telemetry {
    /// A no-op handle: no clock, no allocation, every operation is a
    /// branch on `None`.
    pub fn disabled() -> Telemetry {
        Telemetry { inner: None }
    }

    /// A collecting handle; the creation instant is the trace epoch.
    /// Collects spans, counters, and stats — the flight recorder and the
    /// metrics registry stay off (see [`Telemetry::configured`]).
    pub fn enabled() -> Telemetry {
        Telemetry::configured(false, false)
    }

    /// A collecting handle with the flight recorder and the metrics
    /// registry both on — everything the telemetry layer can record.
    pub fn recording() -> Telemetry {
        Telemetry::configured(true, true)
    }

    /// A collecting handle with the flight recorder (`events`) and the
    /// metrics registry (`metrics`) individually selectable. Both are
    /// opt-in so span-only consumers (`--stats`) never pay for decision
    /// logging on hot paths.
    pub fn configured(events: bool, metrics: bool) -> Telemetry {
        Telemetry {
            inner: Some(Inner {
                epoch: Instant::now(),
                record_events: events,
                record_metrics: metrics,
                collected: Mutex::new(Collected::default()),
            }),
        }
    }

    /// Whether this handle collects anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether the flight recorder is collecting events.
    pub fn events_enabled(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.record_events)
    }

    /// Whether the metrics registry is collecting.
    pub fn metrics_enabled(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.record_metrics)
    }

    /// Records one flight-recorder event. The fields closure is only
    /// evaluated (and only allocates) when event recording is on, so an
    /// instrumented hot path costs one branch when the recorder is off.
    ///
    /// Deterministic-class events must be emitted from the coordinating
    /// thread at schedule-invariant points only — the recorder stores
    /// them in emission order and that order is part of the contract.
    pub fn event(&self, class: EventClass, name: &'static str, fields: impl FnOnce() -> Fields) {
        if let Some(inner) = &self.inner {
            if inner.record_events {
                let ts_ns = elapsed_ns(inner.epoch);
                inner
                    .collected
                    .lock()
                    .expect(POISONED)
                    .events
                    .push(class, name, ts_ns, fields());
            }
        }
    }

    /// Mutates the metrics registry (no-op unless metrics are on).
    pub fn metrics(&self, f: impl FnOnce(&mut MetricsRegistry)) {
        if let Some(inner) = &self.inner {
            if inner.record_metrics {
                f(&mut inner.collected.lock().expect(POISONED).metrics);
            }
        }
    }

    /// A snapshot of the metrics registry.
    pub fn metrics_snapshot(&self) -> MetricsRegistry {
        match &self.inner {
            None => MetricsRegistry::default(),
            Some(inner) => inner.collected.lock().expect(POISONED).metrics.clone(),
        }
    }

    /// The metrics registry rendered as its versioned JSON document.
    pub fn metrics_json(&self) -> String {
        self.metrics_snapshot().render_json()
    }

    /// All recorded events: the deterministic stream first, then the
    /// observational stream.
    pub fn events(&self) -> Vec<Event> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => inner.collected.lock().expect(POISONED).events.all(),
        }
    }

    /// The flight-recorder log rendered as NDJSON (one event per line;
    /// `filter = None` renders both classes, deterministic first).
    pub fn events_ndjson(&self, filter: Option<EventClass>) -> String {
        match &self.inner {
            None => String::new(),
            Some(inner) => inner
                .collected
                .lock()
                .expect(POISONED)
                .events
                .render_ndjson(filter),
        }
    }

    /// Renders the flight recorder like [`Telemetry::events_ndjson`],
    /// then clears the log so the next epoch starts from an empty buffer
    /// with fresh per-class sequence numbers. Any events lost to the
    /// per-class bound are folded into the `events_dropped` execution
    /// stat before the reset (the rendered text already ends with their
    /// `log_truncated` record). This is how long-running consumers keep
    /// `--log-out` complete across arbitrarily many epochs: drain once
    /// per epoch instead of letting one bounded buffer span the process.
    pub fn drain_events_ndjson(&self, filter: Option<EventClass>) -> String {
        match &self.inner {
            None => String::new(),
            Some(inner) => {
                let mut c = inner.collected.lock().expect(POISONED);
                let text = c.events.render_ndjson(filter);
                c.stats.events_dropped += c.events.total_dropped();
                c.events.clear();
                text
            }
        }
    }

    /// Folds the current dropped-event counts into the `events_dropped`
    /// stat without rendering or clearing the log — the `--stats`-only
    /// path, where nobody drains before the table renders.
    pub fn sync_events_dropped(&self) {
        if let Some(inner) = &self.inner {
            let mut c = inner.collected.lock().expect(POISONED);
            c.stats.events_dropped += c.events.total_dropped();
            c.events.reset_dropped();
        }
    }

    /// Opens a timed span on `lane`; the span records itself when the
    /// guard drops. The name closure is only evaluated (and only
    /// allocates) when telemetry is enabled.
    #[must_use]
    pub fn span(&self, lane: u32, name: impl FnOnce() -> String) -> SpanGuard<'_> {
        match &self.inner {
            None => SpanGuard { open: None },
            Some(inner) => SpanGuard {
                open: Some(OpenSpan {
                    inner,
                    name: name(),
                    lane,
                    start_ns: elapsed_ns(inner.epoch),
                }),
            },
        }
    }

    /// Adds a batch of deterministic counts (no-op when disabled).
    pub fn add_counters(&self, delta: &Counters) {
        if let Some(inner) = &self.inner {
            inner.collected.lock().expect(POISONED).counters.add(delta);
        }
    }

    /// The deterministic counters collected so far.
    pub fn counters(&self) -> Counters {
        match &self.inner {
            None => Counters::default(),
            Some(inner) => inner.collected.lock().expect(POISONED).counters,
        }
    }

    /// Mutates the execution stats (no-op when disabled).
    pub fn update_stats(&self, f: impl FnOnce(&mut ExecStats)) {
        if let Some(inner) = &self.inner {
            f(&mut inner.collected.lock().expect(POISONED).stats);
        }
    }

    /// The execution stats collected so far.
    pub fn stats(&self) -> ExecStats {
        match &self.inner {
            None => ExecStats::default(),
            Some(inner) => inner.collected.lock().expect(POISONED).stats.clone(),
        }
    }

    /// Completed spans, sorted by (lane, start, longest-first) so a
    /// parent precedes its children.
    pub fn spans(&self) -> Vec<SpanRecord> {
        let mut spans = match &self.inner {
            None => Vec::new(),
            Some(inner) => inner.collected.lock().expect(POISONED).spans.clone(),
        };
        spans.sort_by(|a, b| {
            (a.lane, a.start_ns, b.dur_ns).cmp(&(b.lane, b.start_ns, a.dur_ns))
        });
        spans
    }

    /// Distinct lanes that recorded at least one span, ascending.
    pub fn lanes(&self) -> Vec<u32> {
        let mut lanes: Vec<u32> = self.spans().iter().map(|s| s.lane).collect();
        lanes.sort_unstable();
        lanes.dedup();
        lanes
    }

    /// Renders the spans as Chrome trace-event JSON: process metadata
    /// (`process_name` / `process_sort_index`, so the track is labeled
    /// "ddm" in `about:tracing` and Perfetto), one `thread_name` /
    /// `thread_sort_index` metadata pair per lane ("main", "worker-1",
    /// ... in lane order), one complete ("X") event per span, and one
    /// instant ("i") event per recorded flight-recorder event (cache
    /// probes, link decisions, round deltas) on the coordinator lane.
    pub fn chrome_trace_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\": [\n");
        let mut first = true;
        push_event(
            &mut out,
            &mut first,
            "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"args\": {\"name\": \"ddm\"}}",
        );
        push_event(
            &mut out,
            &mut first,
            "{\"name\": \"process_sort_index\", \"ph\": \"M\", \"pid\": 1, \"args\": {\"sort_index\": 0}}",
        );
        for lane in self.lanes() {
            let name = lane_name(lane);
            push_event(&mut out, &mut first, &format!(
                "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": {lane}, \"args\": {{\"name\": \"{name}\"}}}}"
            ));
            push_event(&mut out, &mut first, &format!(
                "{{\"name\": \"thread_sort_index\", \"ph\": \"M\", \"pid\": 1, \"tid\": {lane}, \"args\": {{\"sort_index\": {lane}}}}}"
            ));
        }
        for s in self.spans() {
            push_event(&mut out, &mut first, &format!(
                "{{\"name\": \"{}\", \"ph\": \"X\", \"pid\": 1, \"tid\": {}, \"ts\": {}, \"dur\": {}, \"args\": {{}}}}",
                json::escape(&s.name),
                s.lane,
                micros(s.start_ns),
                micros(s.dur_ns),
            ));
        }
        for e in self.events() {
            let mut args = String::new();
            args.push_str(&format!("\"class\": \"{}\"", e.class.tag()));
            for (key, value) in &e.fields {
                args.push_str(&format!(", \"{key}\": "));
                match value {
                    FieldValue::Int(i) => args.push_str(&i.to_string()),
                    FieldValue::Str(s) => {
                        args.push('"');
                        args.push_str(&json::escape(s));
                        args.push('"');
                    }
                }
            }
            push_event(&mut out, &mut first, &format!(
                "{{\"name\": \"{}\", \"ph\": \"i\", \"pid\": 1, \"tid\": {LANE_MAIN}, \"ts\": {}, \"s\": \"t\", \"args\": {{{args}}}}}",
                e.name,
                micros(e.ts_ns),
            ));
        }
        out.push_str("\n], \"displayTimeUnit\": \"ms\"}\n");
        out
    }

    /// Renders the machine-readable `--stats-json` twin of
    /// [`Telemetry::render_stats`]: deterministic counters, execution
    /// stats, and the lane-0 phase spans under a versioned schema.
    pub fn render_stats_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"ddm-stats/1\",\n");
        let stats = self.stats();
        out.push_str(&format!(
            "  \"engine\": \"{}\",\n",
            json::escape(&stats.engine)
        ));
        out.push_str("  \"counters\": {");
        let counter_rows = self.counters().rows();
        for (i, (key, value)) in counter_rows.iter().enumerate() {
            out.push_str(&format!("\"{key}\": {value}"));
            if i + 1 < counter_rows.len() {
                out.push_str(", ");
            }
        }
        out.push_str("},\n");
        out.push_str("  \"exec_stats\": {");
        let stat_rows = stats.rows();
        for (key, value) in stat_rows.iter() {
            out.push_str(&format!("\"{key}\": {value}, "));
        }
        out.push_str(&format!(
            "\"scan_sequential_fastpath\": {}, \"cg_round_deltas\": [{}]}},\n",
            stats.scan_sequential_fastpath,
            stats
                .cg_round_deltas
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push_str("  \"spans\": [\n");
        let spans = self.spans();
        for (i, s) in spans.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"lane\": {}, \"start_us\": {}, \"dur_us\": {}}}",
                json::escape(&s.name),
                s.lane,
                s.start_ns / 1_000,
                s.dur_ns / 1_000
            ));
            out.push_str(if i + 1 < spans.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Renders the human-readable `--stats` table: phase spans (lane 0
    /// nested by containment, worker lanes summarized), deterministic
    /// counters, and execution stats.
    pub fn render_stats(&self) -> String {
        let mut out = String::new();
        out.push_str("== phase spans ==\n");
        let spans = self.spans();
        // Lane 0 nests by time containment; worker lanes are summarized.
        let mut stack: Vec<u64> = Vec::new(); // end times of open ancestors
        for s in spans.iter().filter(|s| s.lane == LANE_MAIN) {
            let end = s.start_ns + s.dur_ns;
            while stack.last().is_some_and(|&pend| s.start_ns >= pend) {
                stack.pop();
            }
            let indent = "  ".repeat(stack.len());
            out.push_str(&format!(
                "{:<44} {:>12}\n",
                format!("{indent}{}", s.name),
                format_ms(s.dur_ns)
            ));
            stack.push(end);
        }
        for lane in self.lanes().into_iter().filter(|&l| l != LANE_MAIN) {
            let (count, busy): (u64, u64) = spans
                .iter()
                .filter(|s| s.lane == lane)
                .fold((0, 0), |(c, b), s| (c + 1, b + s.dur_ns));
            out.push_str(&format!(
                "{:<44} {:>12}  ({count} spans)\n",
                lane_name(lane),
                format_ms(busy)
            ));
        }
        out.push_str("== deterministic counters ==\n");
        out.push_str(&self.counters().render_table());
        out.push_str("== execution stats ==\n");
        let stats = self.stats();
        out.push_str(&format!("{:<44} {:>12}\n", "engine", stats.engine));
        for (key, value) in stats.rows() {
            out.push_str(&format!("{key:<44} {value:>12}\n"));
        }
        out.push_str(&format!(
            "{:<44} {:>12}\n",
            "scan_sequential_fastpath", stats.scan_sequential_fastpath
        ));
        let deltas = stats
            .cg_round_deltas
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "{:<44} {:>12}\n",
            "cg_round_deltas",
            format!("[{deltas}]")
        ));
        out
    }
}

const POISONED: &str = "telemetry state poisoned";

fn elapsed_ns(epoch: Instant) -> u64 {
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

fn lane_name(lane: u32) -> String {
    if lane == LANE_MAIN {
        "main".to_string()
    } else {
        format!("worker-{lane}")
    }
}

fn push_event(out: &mut String, first: &mut bool, event: &str) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    out.push_str("  ");
    out.push_str(event);
}

/// Nanoseconds → microseconds with three decimals (the trace format's
/// `ts`/`dur` unit).
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn format_ms(ns: u64) -> String {
    format!("{}.{:03} ms", ns / 1_000_000, (ns / 1_000) % 1_000)
}

#[derive(Debug)]
struct OpenSpan<'t> {
    inner: &'t Inner,
    name: String,
    lane: u32,
    start_ns: u64,
}

/// RAII span: created by [`Telemetry::span`], records itself on drop.
#[derive(Debug)]
#[must_use = "a span measures until it is dropped"]
pub struct SpanGuard<'t> {
    open: Option<OpenSpan<'t>>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(open) = self.open.take() {
            let dur_ns = elapsed_ns(open.inner.epoch).saturating_sub(open.start_ns);
            open.inner
                .collected
                .lock()
                .expect(POISONED)
                .spans
                .push(SpanRecord {
                    name: open.name,
                    lane: open.lane,
                    start_ns: open.start_ns,
                    dur_ns,
                });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_collects_nothing() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        {
            let _span = t.span(LANE_MAIN, || unreachable!("name must not be evaluated"));
        }
        t.add_counters(&Counters {
            scan_reads: 5,
            ..Default::default()
        });
        t.update_stats(|_| unreachable!("stats closure must not run"));
        assert_eq!(t.counters(), Counters::default());
        assert_eq!(t.stats(), ExecStats::default());
        assert!(t.spans().is_empty());
        assert!(t.lanes().is_empty());
    }

    #[test]
    fn spans_record_on_drop_and_sort_parent_first() {
        let t = Telemetry::enabled();
        {
            let _outer = t.span(LANE_MAIN, || "outer".into());
            let _inner = t.span(LANE_MAIN, || "inner".into());
        }
        let _worker = t.span(2, || "shard".into());
        drop(_worker);
        let spans = t.spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].name, "outer", "parent (longer) sorts first");
        assert_eq!(spans[1].name, "inner");
        assert_eq!(spans[2].lane, 2);
        assert_eq!(t.lanes(), vec![LANE_MAIN, 2]);
    }

    #[test]
    fn counters_add_is_fieldwise() {
        let mut a = Counters {
            scan_reads: 2,
            union_rounds: 1,
            ..Default::default()
        };
        let b = Counters {
            scan_reads: 3,
            members_live: 7,
            ..Default::default()
        };
        a.add(&b);
        assert_eq!(a.scan_reads, 5);
        assert_eq!(a.union_rounds, 1);
        assert_eq!(a.members_live, 7);
    }

    #[test]
    fn chrome_trace_is_valid_json_with_lane_names() {
        let t = Telemetry::enabled();
        drop(t.span(LANE_MAIN, || "parse".into()));
        drop(t.span(1, || "scan \"round\" 0 shard 0 (3 fns)".into()));
        let trace = t.chrome_trace_json();
        json::validate(&trace).expect("trace must be valid JSON");
        assert!(trace.contains("\"main\""));
        assert!(trace.contains("\"worker-1\""));
        assert!(trace.contains("thread_name"));
    }

    #[test]
    fn drain_resets_the_log_and_accumulates_the_dropped_stat() {
        let t = Telemetry::recording();
        for _ in 0..events::EVENT_LOG_CAP + 5 {
            t.event(EventClass::Observational, "spam", Vec::new);
        }
        let first = t.drain_events_ndjson(None);
        assert!(first.contains("\"event\":\"log_truncated\",\"count\":5"));
        assert_eq!(t.stats().events_dropped, 5);
        t.event(EventClass::Observational, "fresh", Vec::new);
        let second = t.drain_events_ndjson(None);
        assert!(second.contains("\"event\":\"fresh\""));
        assert!(second.contains("\"seq\":0"), "sequences restart per drain");
        assert!(!second.contains("log_truncated"));
        assert_eq!(t.stats().events_dropped, 5, "stat is cumulative, not re-counted");
    }

    #[test]
    fn sync_events_dropped_updates_the_stat_without_clearing() {
        let t = Telemetry::recording();
        for _ in 0..events::EVENT_LOG_CAP + 2 {
            t.event(EventClass::Deterministic, "spam", Vec::new);
        }
        t.sync_events_dropped();
        assert_eq!(t.stats().events_dropped, 2);
        assert_eq!(
            t.events().len(),
            events::EVENT_LOG_CAP,
            "sync leaves the buffered events in place"
        );
        // A second sync with no new drops must not double-count.
        t.sync_events_dropped();
        assert_eq!(t.stats().events_dropped, 2);
    }

    #[test]
    fn stats_table_renders_all_sections() {
        let t = Telemetry::enabled();
        drop(t.span(LANE_MAIN, || "parse".into()));
        t.add_counters(&Counters {
            members_dead: 3,
            ..Default::default()
        });
        t.update_stats(|s| {
            s.engine = "summary".into();
            s.jobs = 8;
        });
        let table = t.render_stats();
        for needle in [
            "phase spans",
            "deterministic counters",
            "execution stats",
            "members_dead",
            "summary",
            "parse",
        ] {
            assert!(table.contains(needle), "missing {needle:?} in:\n{table}");
        }
    }
}
