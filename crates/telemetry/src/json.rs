//! A minimal JSON toolkit: syntax checker, string escaper, and a small
//! tree codec.
//!
//! The workspace has no serde; the trace exporter renders JSON by hand
//! and the CI gate needs to prove the result actually parses. `validate`
//! is a full RFC 8259 syntax validator (values, nesting, strings with
//! escapes, numbers) that accepts or rejects without building a tree.
//! [`Value`] / [`parse`] / [`Value::render`] add the tree form used by
//! the persistent summary cache: integers only (the cache codec never
//! emits floats — `parse` rejects fractions and exponents so a corrupted
//! entry fails loudly instead of rounding silently).

/// Escapes `s` for inclusion inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Validates that `s` is one complete JSON value.
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error.
pub fn validate(s: &str) -> Result<(), String> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
        lenient: false,
    };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(())
}

/// A parsed JSON value.
///
/// Numbers are restricted to `i64`: the summary-cache codec encodes u64
/// hashes as hex strings and never writes floats, so any fraction or
/// exponent in an input marks the document as foreign/corrupt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (the only number form the codec reads or writes).
    Int(i64),
    /// A non-integer number, kept as its source lexeme. Only
    /// [`parse_lenient`] produces this: the BENCH_*.json reports carry
    /// speedup ratios and scaling exponents, and preserving the lexeme
    /// keeps [`Value`] `Eq` and re-rendering byte-faithful.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order (rendering preserves insertion order).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The numeric payload as `f64`, for `Int` and `Num` alike.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Num(lexeme) => lexeme.parse().ok(),
            _ => None,
        }
    }

    /// The bool payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an `Arr`.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The field list, if this is an `Obj`.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Looks up `key` in an `Obj` (first match wins).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj()?
            .iter()
            .find_map(|(k, v)| (k == key).then_some(v))
    }

    /// Renders this value as compact JSON (no whitespace). Object field
    /// order is preserved, so rendering is deterministic for a fixed
    /// tree — equal trees render to byte-identical documents.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::Num(lexeme) => out.push_str(lexeme),
            Value::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape(k));
                    out.push_str("\":");
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Parses `s` into a [`Value`] tree.
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error.
/// Fractional or exponent numbers are errors (see [`Value`]).
pub fn parse(s: &str) -> Result<Value, String> {
    parse_with(s, false)
}

/// Parses `s` into a [`Value`] tree, accepting non-integer numbers as
/// lexeme-preserving [`Value::Num`] nodes.
///
/// The strict [`parse`] guards the summary cache, where a float marks a
/// foreign document; the BENCH_*.json reports legitimately carry speedup
/// ratios and scaling exponents, and `bench_report` reads those with
/// this variant instead.
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error.
pub fn parse_lenient(s: &str) -> Result<Value, String> {
    parse_with(s, true)
}

fn parse_with(s: &str, lenient: bool) -> Result<Value, String> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
        lenient,
    };
    p.skip_ws();
    let v = p.tree_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    lenient: bool,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!("expected `{lit}` at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("expected a value at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                if !self.peek().is_some_and(|b| b.is_ascii_hexdigit()) {
                                    return Err(format!(
                                        "bad \\u escape at byte {}",
                                        self.pos
                                    ));
                                }
                                self.pos += 1;
                            }
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                Some(b) if b < 0x20 => {
                    return Err(format!("raw control byte in string at {}", self.pos))
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        if !self.digits()? {
            return Err(format!("expected a digit at byte {}", self.pos));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !self.digits()? {
                return Err(format!("expected a fraction digit at byte {}", self.pos));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !self.digits()? {
                return Err(format!("expected an exponent digit at byte {}", self.pos));
            }
        }
        Ok(())
    }

    fn digits(&mut self) -> Result<bool, String> {
        let start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        Ok(self.pos > start)
    }

    // -- tree-building variants (used by `parse`) --

    fn tree_value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.tree_object(),
            Some(b'[') => self.tree_array(),
            Some(b'"') => self.tree_string().map(Value::Str),
            Some(b't') => self.literal("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.literal("false").map(|()| Value::Bool(false)),
            Some(b'n') => self.literal("null").map(|()| Value::Null),
            Some(b'-' | b'0'..=b'9') => self.tree_int(),
            _ => Err(format!("expected a value at byte {}", self.pos)),
        }
    }

    fn tree_object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        self.skip_ws();
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.tree_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.tree_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn tree_array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        self.skip_ws();
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.tree_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn tree_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let mut code: u32 = 0;
                            for _ in 0..4 {
                                let Some(d) =
                                    self.peek().and_then(|b| (b as char).to_digit(16))
                                else {
                                    return Err(format!("bad \\u escape at byte {}", self.pos));
                                };
                                code = code * 16 + d;
                                self.pos += 1;
                            }
                            // Lone surrogates cannot form a `char`; the
                            // codec never emits them, so reject.
                            let Some(c) = char::from_u32(code) else {
                                return Err(format!(
                                    "unpaired surrogate \\u escape at byte {}",
                                    self.pos
                                ));
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(format!("raw control byte in string at {}", self.pos))
                }
                Some(_) => {
                    // Consume the whole run of plain bytes in one step.
                    // The terminators (`"`, `\`, control bytes) are ASCII
                    // and never UTF-8 continuation bytes, so the run ends
                    // on a char boundary and the slice is valid UTF-8
                    // (the input arrived as a &str).
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == b'"' || b == b'\\' || b < 0x20 {
                            break;
                        }
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|e| e.to_string())?;
                    out.push_str(s);
                }
            }
        }
    }

    fn tree_int(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        if !self.digits()? {
            return Err(format!("expected a digit at byte {}", self.pos));
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            if !self.lenient {
                return Err(format!(
                    "non-integer number at byte {start} (the cache codec is integer-only)"
                ));
            }
            if self.peek() == Some(b'.') {
                self.pos += 1;
                if !self.digits()? {
                    return Err(format!("expected a fraction digit at byte {}", self.pos));
                }
            }
            if matches!(self.peek(), Some(b'e' | b'E')) {
                self.pos += 1;
                if matches!(self.peek(), Some(b'+' | b'-')) {
                    self.pos += 1;
                }
                if !self.digits()? {
                    return Err(format!("expected an exponent digit at byte {}", self.pos));
                }
            }
            let lexeme =
                std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
            return Ok(Value::Num(lexeme.to_string()));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<i64>()
            .map(Value::Int)
            .map_err(|_| format!("integer out of range at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_wellformed_documents() {
        for doc in [
            "null",
            "true",
            "-12.5e+3",
            "\"a \\\"quoted\\\" string\\u00e9\"",
            "[]",
            "{}",
            "{\"a\": [1, 2, {\"b\": null}], \"c\": \"d\"}",
            "  [1, 2.0, -3]  ",
        ] {
            assert!(validate(doc).is_ok(), "should accept {doc:?}");
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for doc in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "{\"a\": 1,}",
            "\"unterminated",
            "nul",
            "1 2",
            "{\"a\": 01x}",
            "\"bad \\q escape\"",
        ] {
            assert!(validate(doc).is_err(), "should reject {doc:?}");
        }
    }

    #[test]
    fn escape_roundtrips_through_validate() {
        let tricky = "name \"with\" \\ slashes\nand\tcontrol\u{1}chars";
        let doc = format!("{{\"k\": \"{}\"}}", escape(tricky));
        assert!(validate(&doc).is_ok(), "{doc}");
    }

    #[test]
    fn parse_builds_the_expected_tree() {
        let v = parse("{\"a\": [1, -2, null], \"b\": {\"c\": true}, \"d\": \"x\\ny\"}").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1], Value::Int(-2));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("d").unwrap().as_str(), Some("x\ny"));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn parse_unescapes_strings() {
        let v = parse("\"q\\\" b\\\\ s\\/ u\\u00e9 t\\t\"").unwrap();
        assert_eq!(v.as_str(), Some("q\" b\\ s/ u\u{e9} t\t"));
    }

    #[test]
    fn parse_rejects_floats_and_garbage() {
        for doc in ["1.5", "1e3", "-2.0", "{", "[1,]", "nul", "1 2", "\"\\ud800\""] {
            assert!(parse(doc).is_err(), "should reject {doc:?}");
        }
    }

    #[test]
    fn parse_lenient_preserves_float_lexemes() {
        let v = parse_lenient("{\"speedup\": 3.10, \"exp\": 1.5e-2, \"n\": 7}").unwrap();
        assert_eq!(
            v.get("speedup").unwrap(),
            &Value::Num("3.10".to_string())
        );
        assert_eq!(v.get("speedup").unwrap().as_f64(), Some(3.10));
        assert_eq!(v.get("exp").unwrap().as_f64(), Some(0.015));
        assert_eq!(v.get("n").unwrap(), &Value::Int(7));
        // Re-rendering keeps the original lexeme, trailing zero and all.
        assert_eq!(v.render(), "{\"speedup\":3.10,\"exp\":1.5e-2,\"n\":7}");
    }

    #[test]
    fn parse_lenient_still_rejects_malformed_numbers() {
        for doc in ["1.", "1e", "1.5.2", "-.5", "01.5x"] {
            assert!(parse_lenient(doc).is_err(), "should reject {doc:?}");
        }
    }

    #[test]
    fn render_parse_roundtrip_is_identity() {
        let tree = Value::Obj(vec![
            ("version".to_string(), Value::Int(1)),
            (
                "items".to_string(),
                Value::Arr(vec![
                    Value::Null,
                    Value::Bool(false),
                    Value::Str("tricky \"\\\n\t".to_string()),
                    Value::Int(i64::MIN),
                    Value::Int(i64::MAX),
                ]),
            ),
            ("empty_obj".to_string(), Value::Obj(Vec::new())),
            ("empty_arr".to_string(), Value::Arr(Vec::new())),
        ]);
        let doc = tree.render();
        assert!(validate(&doc).is_ok(), "{doc}");
        assert_eq!(parse(&doc).unwrap(), tree);
        // Rendering is deterministic: a second render is byte-identical.
        assert_eq!(tree.render(), doc);
    }
}
