//! A minimal JSON syntax checker and string escaper.
//!
//! The workspace has no serde; the trace exporter renders JSON by hand
//! and the CI gate needs to prove the result actually parses. This is a
//! full RFC 8259 syntax validator (values, nesting, strings with
//! escapes, numbers) that accepts or rejects — it builds no tree.

/// Escapes `s` for inclusion inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Validates that `s` is one complete JSON value.
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error.
pub fn validate(s: &str) -> Result<(), String> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!("expected `{lit}` at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("expected a value at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                if !self.peek().is_some_and(|b| b.is_ascii_hexdigit()) {
                                    return Err(format!(
                                        "bad \\u escape at byte {}",
                                        self.pos
                                    ));
                                }
                                self.pos += 1;
                            }
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                Some(b) if b < 0x20 => {
                    return Err(format!("raw control byte in string at {}", self.pos))
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        if !self.digits()? {
            return Err(format!("expected a digit at byte {}", self.pos));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !self.digits()? {
                return Err(format!("expected a fraction digit at byte {}", self.pos));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !self.digits()? {
                return Err(format!("expected an exponent digit at byte {}", self.pos));
            }
        }
        Ok(())
    }

    fn digits(&mut self) -> Result<bool, String> {
        let start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        Ok(self.pos > start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_wellformed_documents() {
        for doc in [
            "null",
            "true",
            "-12.5e+3",
            "\"a \\\"quoted\\\" string\\u00e9\"",
            "[]",
            "{}",
            "{\"a\": [1, 2, {\"b\": null}], \"c\": \"d\"}",
            "  [1, 2.0, -3]  ",
        ] {
            assert!(validate(doc).is_ok(), "should accept {doc:?}");
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for doc in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "{\"a\": 1,}",
            "\"unterminated",
            "nul",
            "1 2",
            "{\"a\": 01x}",
            "\"bad \\q escape\"",
        ] {
            assert!(validate(doc).is_err(), "should reject {doc:?}");
        }
    }

    #[test]
    fn escape_roundtrips_through_validate() {
        let tricky = "name \"with\" \\ slashes\nand\tcontrol\u{1}chars";
        let doc = format!("{{\"k\": \"{}\"}}", escape(tricky));
        assert!(validate(&doc).is_ok(), "{doc}");
    }
}
