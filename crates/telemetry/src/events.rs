//! The pipeline flight recorder: a bounded, structured event log that
//! records every pipeline *decision with its cause* — cache probe
//! outcomes, link-layer ODR merges, fixpoint round deltas, liveness
//! union expansions, elimination decisions — so a run can be audited
//! after the fact.
//!
//! Events split along the same hard line as the rest of the telemetry
//! crate:
//!
//! * [`EventClass::Deterministic`] events describe *analysis semantics*.
//!   They are emitted only from the coordinating thread at
//!   schedule-invariant points, carry no timestamps in their NDJSON
//!   form, and their rendered stream is byte-identical across
//!   `--jobs 1..N`, both engines, and cache cold/warm — the same
//!   discipline as [`Counters`](crate::Counters), extended from totals
//!   to an ordered decision trail.
//! * [`EventClass::Observational`] events describe *how this run
//!   executed* (cache hits vs. misses, temp sweeps, scan rounds). They
//!   carry timestamps and are never compared across configurations.
//!
//! The log is bounded per class ([`EVENT_LOG_CAP`]): once a class's
//! buffer is full, further events of that class are counted, not
//! stored, and the rendered stream ends with a `log_truncated`
//! record carrying the lost count. Bounding per class keeps the
//! deterministic stream's truncation point itself deterministic —
//! observational traffic can never push a deterministic event out of
//! the log. Long-running consumers (`ddm serve`) drain the log once
//! per epoch via [`EventLog::clear`], so the bound applies per epoch,
//! not per process lifetime.

use crate::json;

/// Which determinism contract an event is under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventClass {
    /// Semantic decision: byte-identical across jobs × engines × cache
    /// states for the same input and configuration.
    Deterministic,
    /// Execution shape: timings, cache luck, scheduling. Never asserted
    /// for cross-configuration equality.
    Observational,
}

impl EventClass {
    /// The short tag used in NDJSON (`"det"` / `"obs"`).
    pub fn tag(self) -> &'static str {
        match self {
            EventClass::Deterministic => "det",
            EventClass::Observational => "obs",
        }
    }
}

/// One structured field value. Events carry integers and short strings
/// only; anything bigger belongs in a report, not the flight recorder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldValue {
    /// An integer field.
    Int(i64),
    /// A string field (escaped on render).
    Str(String),
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> FieldValue {
        FieldValue::Int(v)
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> FieldValue {
        FieldValue::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> FieldValue {
        FieldValue::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }
}

impl From<u32> for FieldValue {
    fn from(v: u32) -> FieldValue {
        FieldValue::Int(i64::from(v))
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> FieldValue {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> FieldValue {
        FieldValue::Str(v)
    }
}

/// The field list of one event, in emission order.
pub type Fields = Vec<(&'static str, FieldValue)>;

/// One recorded pipeline decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Determinism contract.
    pub class: EventClass,
    /// Event name, e.g. `"cg_round"` or `"tu_cache_hit"`.
    pub name: &'static str,
    /// Per-class sequence number, starting at 0.
    pub seq: u64,
    /// Nanoseconds since the telemetry epoch. Recorded for every event
    /// (the trace exporter places instants with it) but rendered into
    /// NDJSON only for observational events — deterministic lines must
    /// not vary with the clock.
    pub ts_ns: u64,
    /// Structured cause/effect fields, in emission order.
    pub fields: Fields,
}

impl Event {
    /// Renders the event as one NDJSON line (no trailing newline).
    pub fn ndjson_line(&self) -> String {
        let mut out = String::with_capacity(64);
        out.push_str(&format!(
            "{{\"class\":\"{}\",\"seq\":{},\"event\":\"{}\"",
            self.class.tag(),
            self.seq,
            self.name
        ));
        if self.class == EventClass::Observational {
            out.push_str(&format!(",\"ts_us\":{}", self.ts_ns / 1_000));
        }
        for (key, value) in &self.fields {
            out.push_str(&format!(",\"{key}\":"));
            match value {
                FieldValue::Int(i) => out.push_str(&i.to_string()),
                FieldValue::Str(s) => {
                    out.push('"');
                    out.push_str(&json::escape(s));
                    out.push('"');
                }
            }
        }
        out.push('}');
        out
    }
}

/// Per-class capacity of the flight recorder. Past this many events of
/// one class, further events of that class are dropped (and counted).
pub const EVENT_LOG_CAP: usize = 1 << 16;

/// The bounded two-class event buffer.
#[derive(Debug, Default)]
pub struct EventLog {
    det: Vec<Event>,
    obs: Vec<Event>,
    det_dropped: u64,
    obs_dropped: u64,
}

impl EventLog {
    /// Appends one event, or counts it as dropped when its class's
    /// buffer is at capacity.
    pub fn push(&mut self, class: EventClass, name: &'static str, ts_ns: u64, fields: Fields) {
        let (buf, dropped) = match class {
            EventClass::Deterministic => (&mut self.det, &mut self.det_dropped),
            EventClass::Observational => (&mut self.obs, &mut self.obs_dropped),
        };
        if buf.len() >= EVENT_LOG_CAP {
            *dropped += 1;
            return;
        }
        let seq = buf.len() as u64;
        buf.push(Event {
            class,
            name,
            seq,
            ts_ns,
            fields,
        });
    }

    /// Events of one class, in emission order.
    pub fn of_class(&self, class: EventClass) -> &[Event] {
        match class {
            EventClass::Deterministic => &self.det,
            EventClass::Observational => &self.obs,
        }
    }

    /// Dropped-event count for one class.
    pub fn dropped(&self, class: EventClass) -> u64 {
        match class {
            EventClass::Deterministic => self.det_dropped,
            EventClass::Observational => self.obs_dropped,
        }
    }

    /// All events: the deterministic stream first (its order is part of
    /// the contract), then the observational stream.
    pub fn all(&self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.det.len() + self.obs.len());
        out.extend(self.det.iter().cloned());
        out.extend(self.obs.iter().cloned());
        out
    }

    /// Renders the selected classes as NDJSON: one event per line, the
    /// deterministic stream first, a final `log_truncated` line per
    /// truncated class (carrying the lost-event count) so truncation is
    /// never silent. `filter = None` renders both classes.
    pub fn render_ndjson(&self, filter: Option<EventClass>) -> String {
        let mut out = String::new();
        for class in [EventClass::Deterministic, EventClass::Observational] {
            if filter.is_some_and(|f| f != class) {
                continue;
            }
            for event in self.of_class(class) {
                out.push_str(&event.ndjson_line());
                out.push('\n');
            }
            let dropped = self.dropped(class);
            if dropped > 0 {
                out.push_str(&format!(
                    "{{\"class\":\"{}\",\"event\":\"log_truncated\",\"count\":{dropped}}}\n",
                    class.tag()
                ));
            }
        }
        out
    }

    /// Total dropped events across both classes.
    pub fn total_dropped(&self) -> u64 {
        self.det_dropped + self.obs_dropped
    }

    /// Zeroes the dropped-event counters (the caller has accounted for
    /// them, e.g. folded them into a stat).
    pub fn reset_dropped(&mut self) {
        self.det_dropped = 0;
        self.obs_dropped = 0;
    }

    /// Empties both buffers and resets the dropped counters, so the next
    /// push starts a fresh log with per-class sequence numbers from 0.
    /// Used by per-epoch draining: render, then clear.
    pub fn clear(&mut self) {
        self.det.clear();
        self.obs.clear();
        self.reset_dropped();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ndjson_lines_are_valid_json_and_class_tagged() {
        let mut log = EventLog::default();
        log.push(
            EventClass::Deterministic,
            "cg_round",
            123,
            vec![("round", 0u64.into()), ("delta_fns", 7u64.into())],
        );
        log.push(
            EventClass::Observational,
            "tu_cache_hit",
            456,
            vec![("file", "a \"b\".cpp".into())],
        );
        let text = log.render_ndjson(None);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            json::validate(line).expect("each NDJSON line is valid JSON");
        }
        assert!(lines[0].contains("\"class\":\"det\""), "{}", lines[0]);
        assert!(!lines[0].contains("ts_us"), "det lines carry no clock");
        assert!(lines[1].contains("\"ts_us\":0"), "{}", lines[1]);
    }

    #[test]
    fn filter_selects_one_class() {
        let mut log = EventLog::default();
        log.push(EventClass::Deterministic, "a", 0, Vec::new());
        log.push(EventClass::Observational, "b", 0, Vec::new());
        let det = log.render_ndjson(Some(EventClass::Deterministic));
        assert!(det.contains("\"a\"") && !det.contains("\"b\""));
        let obs = log.render_ndjson(Some(EventClass::Observational));
        assert!(obs.contains("\"b\"") && !obs.contains("\"a\""));
    }

    #[test]
    fn per_class_bound_drops_and_reports() {
        let mut log = EventLog::default();
        for _ in 0..EVENT_LOG_CAP + 3 {
            log.push(EventClass::Observational, "spam", 0, Vec::new());
        }
        log.push(EventClass::Deterministic, "kept", 0, Vec::new());
        assert_eq!(log.of_class(EventClass::Observational).len(), EVENT_LOG_CAP);
        assert_eq!(log.dropped(EventClass::Observational), 3);
        assert_eq!(log.of_class(EventClass::Deterministic).len(), 1);
        let text = log.render_ndjson(None);
        assert!(text.contains("\"event\":\"log_truncated\",\"count\":3"));
        assert_eq!(log.total_dropped(), 3);
    }

    #[test]
    fn clear_resets_buffers_dropped_counts_and_sequences() {
        let mut log = EventLog::default();
        for _ in 0..EVENT_LOG_CAP + 2 {
            log.push(EventClass::Observational, "spam", 0, Vec::new());
        }
        log.push(EventClass::Deterministic, "kept", 0, Vec::new());
        log.clear();
        assert_eq!(log.of_class(EventClass::Observational).len(), 0);
        assert_eq!(log.of_class(EventClass::Deterministic).len(), 0);
        assert_eq!(log.total_dropped(), 0);
        log.push(EventClass::Observational, "fresh", 0, Vec::new());
        assert_eq!(log.of_class(EventClass::Observational)[0].seq, 0);
        assert!(!log.render_ndjson(None).contains("log_truncated"));
    }

    #[test]
    fn sequence_numbers_are_per_class() {
        let mut log = EventLog::default();
        log.push(EventClass::Deterministic, "d0", 0, Vec::new());
        log.push(EventClass::Observational, "o0", 0, Vec::new());
        log.push(EventClass::Deterministic, "d1", 0, Vec::new());
        assert_eq!(log.of_class(EventClass::Deterministic)[1].seq, 1);
        assert_eq!(log.of_class(EventClass::Observational)[0].seq, 0);
    }
}
