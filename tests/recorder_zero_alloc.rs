//! Pins the flight recorder's zero-cost-when-disabled claim with a
//! counting global allocator: instrumentation calls on a handle whose
//! recorder is off must not allocate at all — the field closures may
//! never be evaluated. One test only, so no concurrent test thread can
//! pollute the allocation counter.

use dead_data_members::telemetry::{EventClass, Telemetry};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn disabled_recorder_makes_no_allocations() {
    // Both the fully disabled handle and the spans-only handle
    // (`--stats` without `--log-out`) must take the free path.
    for (label, telemetry) in [
        ("disabled", Telemetry::disabled()),
        ("spans-only", Telemetry::enabled()),
    ] {
        // Warm up any lazy runtime state outside the measured window.
        telemetry.event(EventClass::Deterministic, "warmup", || vec![("i", 0i64.into())]);
        telemetry.metrics(|m| m.hist_record("warmup/h", 1));

        let before = ALLOCATIONS.load(Ordering::Relaxed);
        for i in 0..10_000i64 {
            telemetry.event(EventClass::Deterministic, "probe", || {
                vec![("i", i.into()), ("label", "expensive".into())]
            });
            telemetry.event(EventClass::Observational, "probe_obs", || {
                vec![("i", i.into())]
            });
            telemetry.metrics(|m| m.hist_record("probe/h", i as u64));
            telemetry.metrics(|m| m.counter_add("probe/c", 1));
        }
        let after = ALLOCATIONS.load(Ordering::Relaxed);
        assert_eq!(
            after - before,
            0,
            "{label}: instrumentation allocated with the recorder off"
        );
    }

    // Sanity: the same calls with the recorder on do allocate, so the
    // counter is actually observing this code path.
    let recording = Telemetry::recording();
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    recording.event(EventClass::Deterministic, "probe", || {
        vec![("i", 1i64.into())]
    });
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert!(after > before, "counting allocator is not wired up");
}
