//! Differential harness for the delta-driven call-graph fixpoint.
//!
//! The worklist engines replaced a round-structured *full-set sweep*
//! that re-walked (or re-replayed) every reachable function each round
//! until a `(reachable, instantiated, edges)` convergence triple went
//! quiet. This harness keeps that pre-change algorithm alive as a
//! test-local oracle — a direct reimplementation of the retired
//! `Builder` over the same public walker events — and checks that the
//! delta fixpoint reproduces it bit for bit: the reachable set, the
//! instantiated set, every edge list, the address-taken set, and every
//! downstream byte (reports, `--explain` transcripts) across both
//! engines and worker counts.
//!
//! The oracle is intentionally the *naive* algorithm: correctness by
//! construction, quadratic be damned. DESIGN.md §5d argues the schedule
//! equivalence; this file enforces it.

use dead_data_members::analysis::Engine;
use dead_data_members::benchmarks::generator::{
    generate, generate_scale, GeneratorConfig, ScaleConfig,
};
use dead_data_members::hierarchy::{
    pta, resolve_ctor, walk_function, walk_globals, by_value_class, CallEvent, CallTarget, ClassId,
    DeleteEvent, EventVisitor, FuncId, InstantiationEvent, MemberLookup, Program,
};
use dead_data_members::prelude::*;
use std::collections::{BTreeMap, BTreeSet, HashMap};

// ---------------------------------------------------------------------------
// The pre-change engine, verbatim in structure: full-set rounds, triple
// convergence, BTreeSet state.
// ---------------------------------------------------------------------------

struct Oracle<'p> {
    program: &'p Program,
    lookup: &'p MemberLookup<'p>,
    cha: bool,
    pta: bool,
    pointee_cache: HashMap<(FuncId, String), Option<BTreeSet<ClassId>>>,
    reachable: BTreeSet<FuncId>,
    instantiated: BTreeSet<ClassId>,
    edges: BTreeMap<FuncId, BTreeSet<FuncId>>,
    address_taken: BTreeSet<FuncId>,
    pending_fp_calls: BTreeSet<FuncId>,
}

impl<'p> Oracle<'p> {
    fn run(
        program: &'p Program,
        lookup: &'p MemberLookup<'p>,
        algorithm: Algorithm,
    ) -> Oracle<'p> {
        let mut state = Oracle {
            program,
            lookup,
            cha: algorithm == Algorithm::Cha,
            pta: algorithm == Algorithm::Pta,
            pointee_cache: HashMap::new(),
            reachable: BTreeSet::new(),
            instantiated: BTreeSet::new(),
            edges: BTreeMap::new(),
            address_taken: BTreeSet::new(),
            pending_fp_calls: BTreeSet::new(),
        };
        // Roots: main plus library-class callback overrides — no library
        // classes are configured in this harness, so just main.
        if let Some(main) = program.main_function() {
            state.reachable.insert(main);
        }
        {
            let mut visitor = OracleSink {
                caller: None,
                state: &mut state,
            };
            walk_globals(program, lookup, &mut visitor).expect("globals walk");
        }
        loop {
            let before = (
                state.reachable.len(),
                state.instantiated.len(),
                state.edge_total(),
            );
            let work: Vec<FuncId> = state.reachable.iter().copied().collect();
            for fid in work {
                let mut visitor = OracleSink {
                    caller: Some(fid),
                    state: &mut state,
                };
                walk_function(program, lookup, fid, &mut visitor).expect("function walk");
            }
            state.resolve_function_pointer_calls();
            if (
                state.reachable.len(),
                state.instantiated.len(),
                state.edge_total(),
            ) == before
            {
                break;
            }
        }
        state
    }

    fn edge_total(&self) -> usize {
        self.edges.values().map(|s| s.len()).sum()
    }

    fn mark_reachable(&mut self, func: FuncId) {
        self.reachable.insert(func);
    }

    fn add_edge(&mut self, caller: Option<FuncId>, callee: FuncId) {
        if let Some(c) = caller {
            self.edges.entry(c).or_default().insert(callee);
        }
        self.mark_reachable(callee);
    }

    fn instantiate(&mut self, caller: Option<FuncId>, class: ClassId, ctor: Option<FuncId>) {
        if let Some(c) = ctor {
            self.add_edge(caller, c);
        }
        let mut stack = vec![class];
        while let Some(c) = stack.pop() {
            if !self.instantiated.insert(c) {
                continue;
            }
            if let Some(d) = self.program.destructor(c) {
                self.mark_reachable(d);
            }
            let info = self.program.class(c);
            for b in &info.bases {
                if let Some(dc) = resolve_ctor(self.program, b.id, 0) {
                    self.mark_reachable(dc);
                }
                stack.push(b.id);
            }
            for m in &info.members {
                if let Some(name) = by_value_class(&m.ty) {
                    if let Some(id) = self.program.class_by_name(name) {
                        if let Some(dc) = resolve_ctor(self.program, id, 0) {
                            self.mark_reachable(dc);
                        }
                        stack.push(id);
                    }
                }
            }
        }
    }

    fn dispatch_candidates(&self, receiver: ClassId) -> Vec<ClassId> {
        self.program
            .subclasses_of(receiver)
            .into_iter()
            .filter(|c| self.cha || self.instantiated.contains(c))
            .collect()
    }

    fn virtual_targets(&self, receiver: ClassId, name: &str) -> BTreeSet<FuncId> {
        let mut out = BTreeSet::new();
        for c in self.dispatch_candidates(receiver) {
            if let Some(f) = self.lookup.resolve_virtual(c, name) {
                out.insert(f);
            }
        }
        out
    }

    fn pointees_of(&mut self, func: FuncId, var: &str) -> Option<BTreeSet<ClassId>> {
        let key = (func, var.to_string());
        if let Some(cached) = self.pointee_cache.get(&key) {
            return cached.clone();
        }
        let result = pta::local_pointees(self.program, func, var);
        self.pointee_cache.insert(key, result.clone());
        result
    }

    fn resolve_function_pointer_calls(&mut self) {
        let callers: Vec<FuncId> = self.pending_fp_calls.iter().copied().collect();
        let targets: Vec<FuncId> = self.address_taken.iter().copied().collect();
        for caller in callers {
            for &t in &targets {
                self.add_edge(Some(caller), t);
            }
        }
    }
}

struct OracleSink<'a, 'p> {
    caller: Option<FuncId>,
    state: &'a mut Oracle<'p>,
}

impl EventVisitor for OracleSink<'_, '_> {
    fn call(&mut self, ev: &CallEvent) {
        match &ev.target {
            CallTarget::Free(f) => self.state.add_edge(self.caller, *f),
            CallTarget::Builtin(_) => {}
            CallTarget::Method {
                func,
                receiver_class,
                is_virtual_dispatch,
                receiver_var,
            } => {
                if *is_virtual_dispatch {
                    let name = self.state.program.function(*func).name.clone();
                    let refined = match (self.state.pta, receiver_var, self.caller) {
                        (true, Some(var), Some(caller)) => self.state.pointees_of(caller, var),
                        _ => None,
                    };
                    let targets = match refined {
                        Some(classes) => {
                            let mut out = BTreeSet::new();
                            for c in classes {
                                if let Some(f) = self.state.lookup.resolve_virtual(c, &name) {
                                    out.insert(f);
                                }
                            }
                            out
                        }
                        None => self.state.virtual_targets(*receiver_class, &name),
                    };
                    if targets.is_empty() {
                        self.state.add_edge(self.caller, *func);
                    }
                    for t in targets {
                        self.state.add_edge(self.caller, t);
                    }
                } else {
                    self.state.add_edge(self.caller, *func);
                }
            }
            CallTarget::FunctionPointer => {
                if let Some(c) = self.caller {
                    self.state.pending_fp_calls.insert(c);
                }
            }
        }
    }

    fn address_of_function(&mut self, func: FuncId, _span: dead_data_members::cppfront::Span) {
        self.state.address_taken.insert(func);
        self.state.mark_reachable(func);
    }

    fn instantiation(&mut self, ev: &InstantiationEvent) {
        self.state.instantiate(self.caller, ev.class, ev.ctor);
    }

    fn delete_of(&mut self, ev: &DeleteEvent) {
        let Some(class) = ev.pointee_class else {
            return;
        };
        if let Some(dtor) = self.state.program.destructor(class) {
            if self.state.program.function(dtor).is_virtual {
                for c in self.state.dispatch_candidates(class) {
                    if let Some(d) = self.state.program.destructor(c) {
                        self.state.add_edge(self.caller, d);
                    }
                }
            }
            self.state.add_edge(self.caller, dtor);
        }
        for a in self.state.program.ancestors_of(class) {
            if let Some(d) = self.state.program.destructor(a) {
                self.state.add_edge(self.caller, d);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Comparison plumbing
// ---------------------------------------------------------------------------

/// Asserts both delta engines reproduce the oracle's graph on `source`
/// exactly — same reachable list, instantiated list, per-function edge
/// rows, and address-taken set.
fn assert_matches_oracle(label: &str, source: &str, algorithm: Algorithm) {
    let tu = parse(source).unwrap_or_else(|e| panic!("{label}: parse: {e}"));
    let program = Program::build(&tu).unwrap_or_else(|e| panic!("{label}: sema: {e}"));
    let lookup = MemberLookup::new(&program);
    let options = CallGraphOptions {
        algorithm,
        ..Default::default()
    };

    let walked = CallGraph::build(&program, &lookup, &options)
        .unwrap_or_else(|e| panic!("{label}: walk build: {e}"));
    let summary = ProgramSummary::build(&program, algorithm == Algorithm::Pta, 1);
    let replayed = CallGraph::build_from_summary(&program, &summary, &options)
        .unwrap_or_else(|e| panic!("{label}: replay build: {e}"));
    assert_eq!(walked, replayed, "{label}: engines disagree");
    // The parallel round path must be invisible in the artifact: any
    // worker count, same graph (rounds below the parallel threshold
    // take the sequential path and are trivially identical; the wide
    // shapes below cross it).
    for jobs in [2, 8] {
        let options_jobs = CallGraphOptions {
            algorithm,
            jobs,
            ..Default::default()
        };
        let walked_jobs = CallGraph::build(&program, &lookup, &options_jobs)
            .unwrap_or_else(|e| panic!("{label}: walk build (jobs={jobs}): {e}"));
        assert_eq!(
            walked, walked_jobs,
            "{label}: jobs={jobs} walk diverged from sequential"
        );
    }

    if algorithm == Algorithm::Everything {
        // The oracle only reimplements the propagating builders; the
        // Everything graph is trivially everything.
        assert_eq!(
            walked.reachable().count(),
            program.function_count(),
            "{label}: Everything must reach every function"
        );
        return;
    }

    let oracle = Oracle::run(&program, &lookup, algorithm);
    assert_eq!(
        walked.reachable().collect::<Vec<_>>(),
        oracle.reachable.iter().copied().collect::<Vec<_>>(),
        "{label}: reachable set diverged from the pre-change sweep"
    );
    assert_eq!(
        walked.instantiated().collect::<Vec<_>>(),
        oracle.instantiated.iter().copied().collect::<Vec<_>>(),
        "{label}: instantiated set diverged from the pre-change sweep"
    );
    assert_eq!(
        walked.address_taken().collect::<Vec<_>>(),
        oracle.address_taken.iter().copied().collect::<Vec<_>>(),
        "{label}: address-taken set diverged from the pre-change sweep"
    );
    let oracle_edge_total: usize = oracle.edges.values().map(BTreeSet::len).sum();
    assert_eq!(
        walked.edge_count(),
        oracle_edge_total,
        "{label}: edge count diverged from the pre-change sweep"
    );
    for (fid, _) in program.functions() {
        let row: Vec<FuncId> = walked.callees(fid).collect();
        let oracle_row: Vec<FuncId> = oracle
            .edges
            .get(&fid)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        assert_eq!(
            row, oracle_row,
            "{label}: callee row of {fid:?} diverged from the pre-change sweep"
        );
    }
}

fn bundled_programs() -> Vec<(String, String)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/crates/benchmarks/programs");
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .expect("benchmark programs directory")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "cpp"))
        .collect();
    paths.sort();
    assert!(paths.len() >= 11, "expected the paper's eleven programs");
    paths
        .into_iter()
        .map(|p| {
            let name = p.file_stem().unwrap().to_string_lossy().into_owned();
            (name, std::fs::read_to_string(&p).expect("readable"))
        })
        .collect()
}

fn suite_config() -> AnalysisConfig {
    AnalysisConfig {
        assume_safe_downcasts: true,
        sizeof_policy: SizeofPolicy::Ignore,
        ..Default::default()
    }
}

/// Every `Class::member` spec of `program`, in declaration order.
fn member_specs(program: &Program) -> Vec<String> {
    let mut out = Vec::new();
    for (_, info) in program.classes() {
        for m in &info.members {
            out.push(format!("{}::{}", info.name, m.name));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[test]
fn suite_graphs_match_the_prechange_sweep_on_all_algorithms() {
    for (name, source) in bundled_programs() {
        for algorithm in [
            Algorithm::Everything,
            Algorithm::Cha,
            Algorithm::Rta,
            Algorithm::Pta,
        ] {
            assert_matches_oracle(&format!("{name}/{algorithm}"), &source, algorithm);
        }
    }
}

#[test]
fn generated_programs_match_the_prechange_sweep() {
    for seed in 0..8 {
        let source = generate(&GeneratorConfig::default(), seed);
        for algorithm in [Algorithm::Cha, Algorithm::Rta, Algorithm::Pta] {
            assert_matches_oracle(&format!("gen seed {seed}/{algorithm}"), &source, algorithm);
        }
    }
}

#[test]
fn scale_programs_match_the_prechange_sweep() {
    // Small enough for the quadratic oracle, deep enough to park and
    // release dispatch candidates across many rounds.
    let config = ScaleConfig {
        chains: 2,
        depth: 12,
        methods_per_class: 3,
        members_per_class: 2,
        rungs: 40,
    };
    for seed in [1, 9] {
        let source = generate_scale(&config, seed);
        for algorithm in [Algorithm::Cha, Algorithm::Rta, Algorithm::Pta] {
            assert_matches_oracle(&format!("scale seed {seed}/{algorithm}"), &source, algorithm);
        }
    }
}

#[test]
fn diamond_hierarchies_match_the_prechange_sweep() {
    // Virtual and non-virtual diamonds with overrides on every edge,
    // and dispatch sites that run before the joining class exists —
    // the park/release schedule must drain in the oracle's order.
    let source = "\
class Top { public: int t; virtual int poke() { return t; } };
class L : virtual public Top { public: int l; virtual int poke() { return l + t; } };
class R : virtual public Top { public: int r; virtual int poke() { return r + t; } };
class J : public L, public R { public: int j; virtual int poke() { return j + l + r; } };
class NT { public: int nt; virtual int poke() { return nt; } };
class NL : public NT { public: int nl; virtual int poke() { return nl + nt; } };
class NR : public NT { public: int nr; virtual int poke() { return nr + nt; } };
class NJ : public NL, public NR { public: int nj; virtual int poke() { return nj + nl + nr; } };
int disp(Top* p) { return p->poke(); }
int dispn(NL* p) { return p->poke(); }
int early() { L shallow; return disp(&shallow); }
int late() { J joined; NJ* n = new NJ(); int acc = disp(&joined) + dispn(n); delete n; return acc; }
int main() { int a = early(); a = a + late(); return a; }
";
    for algorithm in [Algorithm::Cha, Algorithm::Rta, Algorithm::Pta] {
        assert_matches_oracle(&format!("diamond/{algorithm}"), source, algorithm);
    }
}

#[test]
fn wide_rounds_match_the_prechange_sweep() {
    // One round wider than PARALLEL_ROUND_THRESHOLD, so the jobs={2,8}
    // builds inside assert_matches_oracle actually take the parallel
    // pre-extraction path — with an instantiation landing mid-round so
    // readied drain slots interleave with first processings.
    let n = dead_data_members::callgraph::PARALLEL_ROUND_THRESHOLD + 44;
    let mut source = String::from(
        "class A { public: int f; virtual int m() { return f; } };\n\
         class B : public A { public: int g; virtual int m() { return g + f; } };\n",
    );
    for i in 0..n {
        if i == n / 2 {
            source.push_str(&format!(
                "int leaf{i}(A* a) {{ B b; return a->m() + b.m() + {i}; }}\n"
            ));
        } else {
            source.push_str(&format!("int leaf{i}(A* a) {{ return a->m() + {i}; }}\n"));
        }
    }
    source.push_str("int main() { A a; int t = 0;\n");
    for i in 0..n {
        source.push_str(&format!("  t = t + leaf{i}(&a);\n"));
    }
    source.push_str("  return t; }\n");
    for algorithm in [Algorithm::Cha, Algorithm::Rta] {
        assert_matches_oracle(&format!("wide/{algorithm}"), &source, algorithm);
    }
}

#[test]
fn reports_and_explanations_are_byte_identical_across_engines_and_jobs() {
    for (name, source) in bundled_programs() {
        let reference = AnalysisPipeline::with_config_engine(
            &source,
            suite_config(),
            Algorithm::Rta,
            1,
            Engine::Walk,
        )
        .unwrap_or_else(|e| panic!("{name}: reference run: {e}"));
        let reference_report = reference.report().to_string();
        let specs = member_specs(reference.program());
        let reference_explains: Vec<Result<String, dead_data_members::analysis::ExplainError>> =
            specs
            .iter()
            .map(|s| {
                explain(
                    reference.program(),
                    reference.callgraph(),
                    reference.liveness(),
                    s,
                )
            })
            .collect();

        for engine in [Engine::Walk, Engine::Summary] {
            for jobs in [1, 2, 8] {
                let run = AnalysisPipeline::with_config_engine(
                    &source,
                    suite_config(),
                    Algorithm::Rta,
                    jobs,
                    engine,
                )
                .unwrap_or_else(|e| panic!("{name}: {engine} jobs={jobs}: {e}"));
                assert_eq!(
                    reference.callgraph(),
                    run.callgraph(),
                    "{name}: call graph diverged ({engine}, jobs={jobs})"
                );
                assert_eq!(
                    reference_report,
                    run.report().to_string(),
                    "{name}: report bytes diverged ({engine}, jobs={jobs})"
                );
                for (spec, expected) in specs.iter().zip(&reference_explains) {
                    let got = explain(run.program(), run.callgraph(), run.liveness(), spec);
                    assert_eq!(
                        *expected, got,
                        "{name}: explain({spec}) diverged ({engine}, jobs={jobs})"
                    );
                }
            }
        }
    }
}

#[test]
fn worklist_telemetry_is_identical_across_engines_and_jobs() {
    for (name, source) in bundled_programs() {
        let mut baseline: Option<(Counters, Vec<u64>)> = None;
        for engine in [Engine::Walk, Engine::Summary] {
            for jobs in [1, 8] {
                let telemetry = Telemetry::enabled();
                AnalysisPipeline::with_config_telemetry(
                    &source,
                    suite_config(),
                    Algorithm::Rta,
                    jobs,
                    engine,
                    &telemetry,
                )
                .unwrap_or_else(|e| panic!("{name}: {engine} jobs={jobs}: {e}"));
                let counters = telemetry.counters();
                let deltas = telemetry.stats().cg_round_deltas;
                assert!(
                    counters.cg_worklist_pops > 0,
                    "{name}: the fixpoint must pop work"
                );
                match &baseline {
                    None => baseline = Some((counters, deltas)),
                    Some((c0, d0)) => {
                        assert_eq!(
                            *c0, counters,
                            "{name}: counters diverged ({engine}, jobs={jobs})"
                        );
                        assert_eq!(
                            *d0, deltas,
                            "{name}: per-round delta sizes diverged ({engine}, jobs={jobs})"
                        );
                    }
                }
            }
        }
    }
}
