//! Every special case of the paper's algorithm, exercised end-to-end
//! through the public pipeline (§3, §3.2, §3.3, footnotes included).

use dead_data_members::analysis::{AnalysisConfig, AnalysisPipeline, SizeofPolicy};
use dead_data_members::callgraph::Algorithm;

fn dead(src: &str) -> Vec<String> {
    AnalysisPipeline::from_source(src)
        .expect("pipeline")
        .report()
        .dead_member_names()
}

fn dead_with(src: &str, config: AnalysisConfig) -> Vec<String> {
    AnalysisPipeline::with_config(src, config, Algorithm::Rta)
        .expect("pipeline")
        .report()
        .dead_member_names()
}

#[test]
fn write_only_members_are_dead() {
    // The core insight: "the act of storing a value into a data member
    // cannot affect the program's observable behavior by itself".
    assert_eq!(
        dead(
            "class A { public: int w; int r; };\n\
             int main() { A a; a.w = 1; a.w = 2; a.w = a.r; return a.r; }"
        ),
        vec!["A::w"]
    );
}

#[test]
fn footnote1_volatile_members_live_when_written() {
    let d = dead(
        "class Dev { public: volatile int mmio; int plain; };\n\
         int main() { Dev d; d.mmio = 1; d.plain = 1; return 0; }",
    );
    assert_eq!(d, vec!["Dev::plain"], "volatile write keeps mmio live");
}

#[test]
fn footnote3_delete_and_free_arguments_are_exempt() {
    // "A data member whose address is passed to the delete or free system
    // functions does not have to be marked as live" — the destructor
    // pattern the paper highlights.
    let d = dead(
        "class Owner {\n\
         public:\n\
             int* buffer;\n\
             Owner* child;\n\
             Owner() : buffer(nullptr), child(nullptr) { }\n\
             ~Owner() { delete child; free(buffer); }\n\
         };\n\
         int main() { Owner* o = new Owner(); delete o; return 0; }",
    );
    assert!(d.contains(&"Owner::buffer".to_string()), "{d:?}");
    assert!(d.contains(&"Owner::child".to_string()), "{d:?}");
}

#[test]
fn qualified_accesses_resolve_into_the_qualifier() {
    let d = dead(
        "struct Base { int m; };\n\
         struct Derived : public Base { int m; };\n\
         int main() { Derived d; d.m = 1; return d.Base::m; }",
    );
    // Base::m is read through the qualified access; Derived::m only written.
    assert_eq!(d, vec!["Derived::m"]);
}

#[test]
fn pointer_to_member_offsets_liven() {
    // "&Z::m ... we simply assume that any member whose offset is computed
    // may be accessed somewhere in the program."
    let d = dead(
        "class A { public: int taken; int untouched; };\n\
         int main() { int A::* pm = &A::taken; A a; if (false) { return a.*pm; } return 0; }",
    );
    assert_eq!(d, vec!["A::untouched"]);
}

#[test]
fn union_rule_is_all_or_nothing() {
    // One live union member livens everything the union contains.
    let d = dead(
        "union U { int i; float f; };\n\
         int main() { U u; u.i = 1; return u.i; }",
    );
    assert!(d.is_empty(), "{d:?}");
    // Nothing read: everything stays dead.
    let d = dead(
        "union U { int i; float f; };\n\
         int main() { U u; u.i = 1; return 0; }",
    );
    assert_eq!(d, vec!["U::f", "U::i"]);
}

#[test]
fn union_rule_propagates_through_contained_classes() {
    // "A union construct may contain data members whose type is a class
    // ... these classes may contain data members" — all become live.
    let d = dead(
        "struct Pair { int a; int b; };\n\
         union U { Pair p; int raw; };\n\
         int main() { U u; return u.raw; }",
    );
    assert!(
        d.is_empty(),
        "contained Pair members must be livened: {d:?}"
    );
}

#[test]
fn sizeof_policy_matches_section_3_2() {
    let src = "class Blob { public: int a; int b; };\n\
               int main() { Blob blob; blob.a = 1; int n = sizeof(Blob); return n; }";
    // Default: conservative.
    let d = dead_with(src, AnalysisConfig::default());
    assert!(d.is_empty(), "conservative sizeof livens everything: {d:?}");
    // User-verified allocation-only usage: ignorable.
    let d = dead_with(
        src,
        AnalysisConfig {
            sizeof_policy: SizeofPolicy::Ignore,
            ..Default::default()
        },
    );
    assert_eq!(d, vec!["Blob::a", "Blob::b"]);
}

#[test]
fn unsafe_cast_marks_all_contained_members_of_the_source_type() {
    // Cast between unrelated class pointers.
    let d = dead(
        "class From { public: int f1; int f2; };\n\
         class To { public: int t1; };\n\
         int main() { From* p = new From(); To other; To* q = (To*)p; return 0; }",
    );
    assert!(!d.contains(&"From::f1".to_string()), "{d:?}");
    assert!(!d.contains(&"From::f2".to_string()), "{d:?}");
    assert!(d.contains(&"To::t1".to_string()), "{d:?}");
}

#[test]
fn downcast_policy_matches_the_papers_verification_step() {
    // "We have verified that all down-casts in our benchmarks are safe."
    let src = "class S { public: int s1; };\n\
               class T : public S { public: int t1; };\n\
               int main() { S* s = new T(); T* t = (T*)s; return 0; }";
    let conservative = dead_with(src, AnalysisConfig::default());
    assert!(
        !conservative.contains(&"S::s1".to_string()),
        "unverified down-cast livens S's members"
    );
    let verified = dead_with(
        src,
        AnalysisConfig {
            assume_safe_downcasts: true,
            ..Default::default()
        },
    );
    assert!(verified.contains(&"S::s1".to_string()));
}

#[test]
fn dynamic_cast_is_checked_and_safe() {
    let d = dead(
        "class S { public: int s1; };\n\
         class T : public S { public: virtual int f() { return t1; } int t1; };\n\
         int main() { S* s = new T(); T* t = dynamic_cast<T*>(s); return 0; }",
    );
    assert!(d.contains(&"S::s1".to_string()), "{d:?}");
}

#[test]
fn section_3_3_library_callbacks_keep_overrides_reachable() {
    let src = "class LibBase { public: virtual int hook(); int lib_state; };\n\
               class App : public LibBase { public: virtual int hook() { return used_by_hook; } int used_by_hook; };\n\
               int main() { App a; return 0; }";
    // Without library marking: hook is unreachable, its read doesn't count.
    let plain = dead(src);
    assert!(plain.contains(&"App::used_by_hook".to_string()));
    // With LibBase marked as a library class: the override is a root.
    let with_lib = dead_with(
        src,
        AnalysisConfig {
            library_classes: ["LibBase".to_string()].into_iter().collect(),
            ..Default::default()
        },
    );
    assert!(!with_lib.contains(&"App::used_by_hook".to_string()));
    // And LibBase's own members are unclassifiable (not reported dead).
    assert!(!with_lib.contains(&"LibBase::lib_state".to_string()));
}

#[test]
fn reads_in_unreachable_functions_do_not_liven() {
    // "data members that are only accessed from unreachable code are
    // classified as dead".
    let d = dead(
        "class A { public: int m; };\n\
         int ghost_reader(A* a) { return a->m; }\n\
         int main() { A a; a.m = 3; return 0; }",
    );
    assert_eq!(d, vec!["A::m"]);
}

#[test]
fn address_taken_function_makes_its_reads_count() {
    // "if the address of a function f is taken in reachable code, we
    // assume f to be reachable."
    let d = dead(
        "class A { public: int m; };\n\
         A shared;\n\
         int reader() { return shared.m; }\n\
         int main() { int (*fp)() = &reader; return 0; }",
    );
    assert!(!d.contains(&"A::m".to_string()), "{d:?}");
}

#[test]
fn inherited_members_classified_at_their_declaring_class() {
    let d = dead(
        "class Base { public: int used_via_derived; int never; };\n\
         class Derived : public Base { };\n\
         int main() { Derived d; return d.used_via_derived; }",
    );
    assert_eq!(d, vec!["Base::never"]);
}

#[test]
fn virtual_diamond_members_classified_once() {
    let d = dead(
        "class Top { public: int t_used; int t_dead; };\n\
         class L : public virtual Top { };\n\
         class R : public virtual Top { };\n\
         class Join : public L, public R { };\n\
         int main() { Join j; return j.t_used; }",
    );
    assert_eq!(d, vec!["Top::t_dead"]);
}
