//! Soundness of the liveness provenance: every live member's recorded
//! [`Origin`] must justify its liveness — the inducing function is
//! reachable (with a witness chain from `main` unless it is a
//! conservative call-graph root), union witnesses are themselves live,
//! and the special-case rules (volatile writes, union closure, unsafe
//! casts) produce explanations that name their mechanism.

use dead_data_members::prelude::*;

fn bundled_programs() -> Vec<(String, String)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/crates/benchmarks/programs");
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .expect("benchmark programs directory")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "cpp"))
        .collect();
    paths.sort();
    paths
        .into_iter()
        .map(|p| {
            let name = p.file_stem().unwrap().to_string_lossy().into_owned();
            let source = std::fs::read_to_string(&p).expect("read benchmark program");
            (name, source)
        })
        .collect()
}

fn pipeline(source: &str, engine: Engine) -> AnalysisPipeline {
    AnalysisPipeline::with_config_engine(
        source,
        AnalysisConfig::default(),
        Algorithm::Rta,
        1,
        engine,
    )
    .expect("pipeline")
}

/// Every live member of every benchmark program has an origin whose
/// inducing function is reachable, and a witness chain from `main`
/// whenever that function is reached by calls (rather than being a
/// conservative root). Union witnesses must themselves be live.
#[test]
fn every_live_member_has_a_rooted_witness() {
    for (name, source) in bundled_programs() {
        for engine in [Engine::Walk, Engine::Summary] {
            let run = pipeline(&source, engine);
            let program = run.program();
            let callgraph = run.callgraph();
            let liveness = run.liveness();
            for (cid, class) in program.classes() {
                for idx in 0..class.members.len() {
                    let m = MemberRef::new(cid, idx);
                    if !liveness.is_live(m) {
                        continue;
                    }
                    let spec = format!("{}::{}", class.name, class.members[idx].name);
                    let origin = liveness
                        .origin(m)
                        .unwrap_or_else(|| panic!("{name}/{engine}: {spec} live without origin"));
                    match origin {
                        Origin::Access { func } | Origin::MarkAll { func, .. } => {
                            let Some(func) = func else {
                                // Global initializers run unconditionally;
                                // they are a root by definition.
                                continue;
                            };
                            assert!(
                                callgraph.is_reachable(func),
                                "{name}/{engine}: {spec} livened in unreachable function"
                            );
                            // Either a chain from main exists, or the
                            // function is one of the conservative roots
                            // (virtual method of a library-instantiated
                            // class, address-taken function).
                            let explanation =
                                explain(program, callgraph, liveness, &spec).expect("known member");
                            assert!(
                                explanation.contains("call chain: main")
                                    || explanation.contains("call-graph root"),
                                "{name}/{engine}: {spec} witness is not rooted:\n{explanation}"
                            );
                        }
                        Origin::Union { via, .. } => {
                            assert!(
                                liveness.is_live(via),
                                "{name}/{engine}: {spec} union witness is not itself live"
                            );
                            assert_ne!(via, m, "{name}/{engine}: {spec} is its own union witness");
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn dead_member_explanation_says_dead_explicitly() {
    let src = "class A { public: int w; };\n\
               int main() { A a; a.w = 1; return 0; }";
    for engine in [Engine::Walk, Engine::Summary] {
        let run = pipeline(src, engine);
        let text = explain(run.program(), run.callgraph(), run.liveness(), "A::w").unwrap();
        assert!(text.contains("A::w: DEAD"), "{engine}: {text}");
        assert!(
            text.contains("never read, address-taken, or otherwise livened"),
            "{engine}: {text}"
        );
    }
}

#[test]
fn volatile_write_only_member_explains_the_volatile_rule() {
    let src = "class Dev { public: volatile int ctrl; };\n\
               void poke(Dev* d) { d->ctrl = 1; }\n\
               int main() { Dev d; poke(&d); return 0; }";
    for engine in [Engine::Walk, Engine::Summary] {
        let run = pipeline(src, engine);
        let text = explain(run.program(), run.callgraph(), run.liveness(), "Dev::ctrl").unwrap();
        assert!(text.contains("LIVE (volatile write)"), "{engine}: {text}");
        assert!(
            text.contains("written through its volatile qualifier in poke"),
            "{engine}: {text}"
        );
        assert!(text.contains("call chain: main -> poke"), "{engine}: {text}");
    }
}

#[test]
fn union_closure_explains_via_the_live_witness() {
    let src = "union Inner { short s; char c; };\n\
               union Outer { int i; Inner nested; };\n\
               int main() { Outer u; return u.i; }";
    for engine in [Engine::Walk, Engine::Summary] {
        let run = pipeline(src, engine);
        // A member two unions deep: livened by propagation, with the
        // witness chain bottoming out at the read of Outer::i in main.
        let text = explain(run.program(), run.callgraph(), run.liveness(), "Inner::s").unwrap();
        assert!(text.contains("LIVE (union propagation)"), "{engine}: {text}");
        assert!(text.contains("union propagation"), "{engine}: {text}");
        assert!(text.contains("Outer::i"), "{engine}: {text}");
        assert!(text.contains("call chain: main"), "{engine}: {text}");
    }
}

#[test]
fn unsafe_cast_explains_the_markall_sweep() {
    let src = "class Inner { public: int deep; };\n\
               class Box { public: Inner inner; int own; };\n\
               int main() { Box* b = new Box(); long v = reinterpret_cast<long>(b); return 0; }";
    for engine in [Engine::Walk, Engine::Summary] {
        let run = pipeline(src, engine);
        // Inner::deep is livened transitively: the MarkAll origin points
        // at the cast's root class Box, not at Inner.
        let text = explain(run.program(), run.callgraph(), run.liveness(), "Inner::deep").unwrap();
        assert!(text.contains("LIVE (unsafe cast)"), "{engine}: {text}");
        assert!(text.contains("MarkAllContainedMembers"), "{engine}: {text}");
        assert!(text.contains("contained in Box"), "{engine}: {text}");
        assert!(text.contains("call chain: main"), "{engine}: {text}");
    }
}

#[test]
fn global_initializer_access_needs_no_chain() {
    let src = "class A { public: int m; };\n\
               A g;\n\
               int seed = g.m;\n\
               int main() { return 0; }";
    for engine in [Engine::Walk, Engine::Summary] {
        let run = pipeline(src, engine);
        if !run.liveness().is_live(
            MemberRef::new(run.program().class_by_name("A").unwrap(), 0),
        ) {
            // Global-initializer reads livening members is itself covered
            // by engine tests; skip if this dialect subset drops it.
            continue;
        }
        let text = explain(run.program(), run.callgraph(), run.liveness(), "A::m").unwrap();
        assert!(text.contains("<global initializers>"), "{engine}: {text}");
        assert!(!text.contains("call chain"), "{engine}: {text}");
    }
}
