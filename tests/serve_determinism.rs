//! Serve-mode determinism: every response a live `ddm serve` daemon
//! gives — including responses answered *during* a background rebuild —
//! must be byte-identical to a fresh one-shot `ddm` invocation over the
//! same files at that response's epoch, across engines × job counts.
//!
//! The daemon is driven over real pipes: requests written one line at a
//! time, file edits interleaved between requests, responses read back
//! in request order (the seq-reordering writer makes that order part of
//! the protocol). The oracle for each epoch is a fresh CLI run made at
//! that epoch's file state:
//!
//! * `report` ↔ one-shot stdout;
//! * `explain` ↔ one-shot `--explain` stdout;
//! * `stats` ↔ the `== deterministic counters ==` section of `--stats`
//!   (the deterministic-counter contract makes that section identical
//!   across jobs, engines, and cache states — the wall-clock sections
//!   can never byte-match, so they are out of scope by design).

use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};

fn ddm() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ddm"))
}

/// Scratch project directory, removed on drop even if the test panics.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("ddm-serve-det-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir scratch");
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

const TU_B_STATE_A: &str = "class Gauge { public: Gauge(int v) : value(v), spare(0) { } \
     int get() { return value; } int value; int spare; };\n\
     int reading() { Gauge g(7); return g.get(); }\n";

/// State B livens `Gauge::spare`, so the epoch-2 report differs from
/// epoch 1 in real bytes — a mid-rebuild response tagged epoch 1 cannot
/// accidentally pass against the epoch-2 oracle.
const TU_B_STATE_B: &str = "class Gauge { public: Gauge(int v) : value(v), spare(0) { } \
     int get() { return value; } int value; int spare; };\n\
     int reading() { Gauge g(7); return g.get() + g.spare; }\n";

/// Writes the three-TU fixture in state A; returns the file list.
fn write_fixture(dir: &PathBuf) -> Vec<String> {
    let a = dir.join("a.cpp");
    let b = dir.join("b.cpp");
    let c = dir.join("c.cpp");
    std::fs::write(
        &a,
        "class Gauge { public: Gauge(int v) : value(v), spare(0) { } \
         int get() { return value; } int value; int spare; };\n\
         int reading();\nint main() { return reading(); }\n",
    )
    .expect("write a.cpp");
    std::fs::write(&b, TU_B_STATE_A).expect("write b.cpp");
    std::fs::write(
        &c,
        "class Widget { public: int used; int unused; };\n\
         int touch() { Widget w; return w.used; }\n",
    )
    .expect("write c.cpp");
    [a, b, c]
        .iter()
        .map(|p| p.to_string_lossy().into_owned())
        .collect()
}

fn oneshot(files: &[String], engine: &str, jobs: usize, extra: &[&str]) -> std::process::Output {
    let mut cmd = ddm();
    cmd.args(files)
        .arg("--engine")
        .arg(engine)
        .arg("--jobs")
        .arg(jobs.to_string());
    cmd.args(extra);
    let out = cmd.output().expect("run one-shot ddm");
    assert!(out.status.success(), "one-shot ddm failed: {out:?}");
    out
}

/// The oracle triple for one file state: report stdout, explain stdout
/// for both members, and the deterministic-counters section of --stats.
struct Oracle {
    report: String,
    explain_live: String,
    explain_dead: String,
    counters: String,
}

fn oracle(files: &[String], engine: &str, jobs: usize) -> Oracle {
    let report = oneshot(files, engine, jobs, &[]);
    let live = oneshot(files, engine, jobs, &["--explain", "Gauge::value"]);
    let dead = oneshot(files, engine, jobs, &["--explain", "Widget::unused"]);
    let stats = oneshot(files, engine, jobs, &["--stats"]);
    let stderr = String::from_utf8(stats.stderr).expect("stats stderr utf8");
    let mut counters = String::new();
    let mut in_section = false;
    for line in stderr.lines() {
        if line == "== deterministic counters ==" {
            in_section = true;
        } else if in_section && line.starts_with("== ") {
            break;
        }
        if in_section {
            counters.push_str(line);
            counters.push('\n');
        }
    }
    assert!(
        counters.starts_with("== deterministic counters ==\n"),
        "no counters section in --stats stderr:\n{stderr}"
    );
    Oracle {
        report: String::from_utf8(report.stdout).expect("report utf8"),
        explain_live: String::from_utf8(live.stdout).expect("explain utf8"),
        explain_dead: String::from_utf8(dead.stdout).expect("explain utf8"),
        counters,
    }
}

/// One live daemon with line-oriented request/response helpers.
struct Daemon {
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
}

impl Daemon {
    fn spawn(engine: &str, jobs: usize, cache: &PathBuf) -> Daemon {
        let mut child = ddm()
            .arg("serve")
            .arg("--engine")
            .arg(engine)
            .arg("--jobs")
            .arg(jobs.to_string())
            .arg("--cache-dir")
            .arg(cache)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn ddm serve");
        let stdin = child.stdin.take().expect("daemon stdin");
        let stdout = BufReader::new(child.stdout.take().expect("daemon stdout"));
        Daemon {
            child,
            stdin,
            stdout,
        }
    }

    fn send(&mut self, request: &str) {
        self.stdin
            .write_all(request.as_bytes())
            .and_then(|()| self.stdin.write_all(b"\n"))
            .and_then(|()| self.stdin.flush())
            .expect("write request");
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        let n = self.stdout.read_line(&mut line).expect("read response");
        assert!(n > 0, "daemon closed stdout before responding");
        line.trim_end_matches('\n').to_string()
    }

    fn round_trip(&mut self, request: &str) -> String {
        self.send(request);
        self.recv()
    }

    fn shutdown(mut self) {
        let response = self.round_trip("{\"cmd\":\"shutdown\"}");
        assert!(response.contains("\"ok\":true"), "shutdown nacked: {response}");
        drop(self.stdin);
        let status = self.child.wait().expect("wait daemon");
        assert!(status.success(), "daemon exit status {status:?}");
    }
}

/// Pulls a string field out of a response line without a JSON parser —
/// the field values under test are JSON-escaped strings, so the oracle
/// text is escaped the same way before comparing.
fn json_escape(text: &str) -> String {
    let mut out = String::new();
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn epoch_of(response: &str) -> u64 {
    let idx = response.find("\"epoch\":").expect("epoch field") + "\"epoch\":".len();
    response[idx..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("epoch number")
}

fn assert_ok_output(response: &str, cmd: &str, epoch: u64, oracle_text: &str) {
    let expected = format!(
        "{{\"ok\":true,\"cmd\":\"{cmd}\",\"epoch\":{epoch},\"output\":\"{}\"}}",
        json_escape(oracle_text)
    );
    assert_eq!(response, expected, "{cmd} response diverged from the one-shot oracle");
}

#[test]
fn serve_responses_are_byte_identical_to_oneshot_runs_across_epochs() {
    for engine in ["summary", "walk"] {
        for jobs in [1usize, 8] {
            let scratch = Scratch::new(&format!("{engine}-{jobs}"));
            let files = write_fixture(&scratch.0);
            let cache = scratch.0.join("cache");

            let oracle_a = oracle(&files, engine, jobs);
            let mut daemon = Daemon::spawn(engine, jobs, &cache);

            let file_list = files
                .iter()
                .map(|f| format!("\"{}\"", json_escape(f)))
                .collect::<Vec<_>>()
                .join(",");
            let analyzed =
                daemon.round_trip(&format!("{{\"cmd\":\"analyze\",\"files\":[{file_list}]}}"));
            assert!(analyzed.contains("\"ok\":true"), "analyze failed: {analyzed}");
            assert_eq!(epoch_of(&analyzed), 1);

            // Epoch-1 queries, including a concurrent burst: write the
            // whole batch before reading a single response, so with
            // jobs=8 the reader pool genuinely overlaps on one epoch.
            let batch: Vec<String> = (0..4)
                .flat_map(|_| {
                    [
                        "{\"cmd\":\"report\"}".to_string(),
                        "{\"cmd\":\"explain\",\"member\":\"Gauge::value\"}".to_string(),
                        "{\"cmd\":\"explain\",\"member\":\"Widget::unused\"}".to_string(),
                        "{\"cmd\":\"stats\"}".to_string(),
                    ]
                })
                .collect();
            for request in &batch {
                daemon.send(request);
            }
            for chunk in 0..4 {
                assert_ok_output(&daemon.recv(), "report", 1, &oracle_a.report);
                assert_ok_output(&daemon.recv(), "explain", 1, &oracle_a.explain_live);
                assert_ok_output(&daemon.recv(), "explain", 1, &oracle_a.explain_dead);
                let stats = daemon.recv();
                assert_ok_output(&stats, "stats", 1, &oracle_a.counters);
                let _ = chunk;
            }

            // Edit one TU of three, compute the epoch-2 oracle from the
            // new file state, and fire an *asynchronous* notify so the
            // next queries race the rebuild.
            std::fs::write(&files[1], TU_B_STATE_B).expect("edit b.cpp");
            let oracle_b = oracle(&files, engine, jobs);
            assert_ne!(
                oracle_a.report, oracle_b.report,
                "the edit must change the report, or the mid-rebuild check is vacuous"
            );

            let notified = daemon
                .round_trip(&format!("{{\"cmd\":\"notify\",\"changed\":[\"{}\"]}}", json_escape(&files[1])));
            assert!(notified.contains("\"building\":true"), "async notify ack: {notified}");

            // Mid-rebuild queries: each response must match whichever
            // epoch it says it was served from.
            for _ in 0..6 {
                let response = daemon.round_trip("{\"cmd\":\"report\"}");
                match epoch_of(&response) {
                    1 => assert_ok_output(&response, "report", 1, &oracle_a.report),
                    2 => assert_ok_output(&response, "report", 2, &oracle_b.report),
                    other => panic!("impossible epoch {other} in {response}"),
                }
            }

            // Wait for the rebuild to finish, then re-query: everything
            // must now be the epoch-2 oracle.
            let mut published = daemon.round_trip("{\"cmd\":\"epoch\"}");
            while published.contains("\"building\":true") || epoch_of(&published) < 2 {
                published = daemon.round_trip("{\"cmd\":\"epoch\"}");
            }
            assert_eq!(epoch_of(&published), 2, "{published}");
            if engine == "summary" {
                let warm: u64 = {
                    let idx = published
                        .find("\"snapshot_warm_starts\":")
                        .expect("warm-start field")
                        + "\"snapshot_warm_starts\":".len();
                    published[idx..]
                        .chars()
                        .take_while(char::is_ascii_digit)
                        .collect::<String>()
                        .parse()
                        .expect("warm-start count")
                };
                assert!(
                    warm >= 1,
                    "the 1-of-3 rebuild must warm-start from the analysis snapshot: {published}"
                );
            }

            assert_ok_output(&daemon.round_trip("{\"cmd\":\"report\"}"), "report", 2, &oracle_b.report);
            assert_ok_output(
                &daemon.round_trip("{\"cmd\":\"explain\",\"member\":\"Gauge::value\"}"),
                "explain",
                2,
                &oracle_b.explain_live,
            );
            assert_ok_output(
                &daemon.round_trip("{\"cmd\":\"stats\"}"),
                "stats",
                2,
                &oracle_b.counters,
            );

            // Error responses are typed, stable, and epoch-tagged.
            let malformed = daemon.round_trip("{\"cmd\":\"explain\",\"member\":\"plain\"}");
            assert!(malformed.contains("\"error\":\"bad_request\""), "{malformed}");
            let unknown = daemon.round_trip("{\"cmd\":\"explain\",\"member\":\"Gauge::nope\"}");
            assert!(unknown.contains("\"error\":\"not_found\""), "{unknown}");
            let nonsense = daemon.round_trip("{\"cmd\":\"frobnicate\"}");
            assert!(nonsense.contains("\"error\":\"bad_request\""), "{nonsense}");

            daemon.shutdown();
        }
    }
}
