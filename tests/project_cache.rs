//! Cache round-trip guarantees for the multi-TU project pipeline.
//!
//! The contract under test: a cached run — cold, fully warm, or warm
//! with one modified TU — produces the byte-identical report, the
//! byte-identical `--explain` text, and the byte-identical deterministic
//! counters as a cacheless run over the same sources, for both engines
//! and any worker count. The cache may only change *wall-clock*, never
//! *output*. Damaged or version-skewed cache entries are detected,
//! discarded, recomputed, and overwritten.

use dead_data_members::analysis::{explain, AnalysisConfig, Engine, ProjectPipeline};
use dead_data_members::callgraph::Algorithm;
use dead_data_members::telemetry::Telemetry;
use std::path::{Path, PathBuf};

const HEADER: &str = "\
enum ShapeKind { KindCircle, KindRect };

class Shape {
public:
    Shape(int k) : kind(k), tag(0) { }
    virtual ~Shape() { }
    virtual int area() { return 0; }
    int kind;
    int tag;
};

class Circle : public Shape {
public:
    Circle(int r) : Shape(KindCircle), radius(r), cached(0) { }
    virtual int area() { return 3 * radius * radius; }
    int radius;
    int cached;
};
";

fn inputs() -> Vec<(String, String)> {
    vec![
        (
            "main.cpp".to_string(),
            format!(
                "{HEADER}int total_area(Shape* a, Shape* b);\nint classify(Shape* s);\n\
                 int main() {{\n    Shape* c = new Circle(2);\n    Shape* s = new Shape(1);\n\
                 \x20   int r = total_area(c, s) + classify(c);\n    delete c;\n    delete s;\n\
                 \x20   return r;\n}}"
            ),
        ),
        (
            "geom.cpp".to_string(),
            format!("{HEADER}int total_area(Shape* a, Shape* b) {{ return a->area() + b->area(); }}"),
        ),
        (
            "stats.cpp".to_string(),
            format!("{HEADER}int classify(Shape* s) {{ s->tag = 1; return s->kind; }}"),
        ),
    ]
}

/// A unique scratch cache directory per test, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(test: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("ddm-cache-{}-{test}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Scratch(dir)
    }
    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn run(
    inputs: &[(String, String)],
    engine: Engine,
    jobs: usize,
    cache: Option<&Path>,
    telemetry: &Telemetry,
) -> ProjectPipeline {
    ProjectPipeline::run(
        inputs,
        AnalysisConfig::default(),
        Algorithm::Rta,
        jobs,
        engine,
        cache,
        telemetry,
    )
    .expect("project run")
}

/// Every observable artifact of a run, as rendered text.
fn artifacts(p: &ProjectPipeline, telemetry: &Telemetry) -> (String, String, String) {
    let report = p.report().to_string();
    let mut explained = String::new();
    for spec in ["Shape::kind", "Shape::tag", "Circle::radius", "Circle::cached"] {
        explained.push_str(&explain(p.program(), p.callgraph(), p.liveness(), spec).unwrap());
    }
    let counters = format!("{:?}", telemetry.counters().rows());
    (report, explained, counters)
}

#[test]
fn cached_runs_match_cacheless_runs_for_every_engine_and_worker_count() {
    let inputs = inputs();
    for engine in [Engine::Walk, Engine::Summary] {
        for jobs in [1usize, 8] {
            let scratch = Scratch::new(&format!("matrix-{engine}-{jobs}"));

            let bare_tel = Telemetry::enabled();
            let bare = run(&inputs, engine, jobs, None, &bare_tel);
            let reference = artifacts(&bare, &bare_tel);

            let cold_tel = Telemetry::enabled();
            let cold = run(&inputs, engine, jobs, Some(scratch.path()), &cold_tel);
            assert_eq!(
                artifacts(&cold, &cold_tel),
                reference,
                "cold cached vs cacheless: engine={engine} jobs={jobs}"
            );

            let warm_tel = Telemetry::enabled();
            let warm = run(&inputs, engine, jobs, Some(scratch.path()), &warm_tel);
            assert_eq!(
                artifacts(&warm, &warm_tel),
                reference,
                "warm cached vs cacheless: engine={engine} jobs={jobs}"
            );
            if engine == Engine::Summary {
                assert_eq!(warm_tel.stats().tu_cache_hits, 3);
                assert_eq!(warm_tel.stats().tus_summarized, 0);
            } else {
                // The walk engine re-walks bodies, so it never uses the
                // cache — and must not populate it either.
                assert!(!scratch.path().exists() || dir_is_empty(scratch.path()));
            }
        }
    }
}

fn dir_is_empty(dir: &Path) -> bool {
    std::fs::read_dir(dir).map(|mut d| d.next().is_none()).unwrap_or(true)
}

#[test]
fn one_changed_tu_reanalyzes_exactly_that_tu() {
    let scratch = Scratch::new("one-changed");
    let inputs = inputs();
    run(
        &inputs,
        Engine::Summary,
        8,
        Some(scratch.path()),
        &Telemetry::enabled(),
    );

    // Edit one TU: classify now also reads `tag`, livening it.
    let mut edited = inputs.clone();
    edited[2].1 = format!("{HEADER}int classify(Shape* s) {{ s->tag = 1; return s->kind + s->tag; }}");

    let warm_tel = Telemetry::enabled();
    let warm = run(&edited, Engine::Summary, 8, Some(scratch.path()), &warm_tel);
    let stats = warm_tel.stats();
    assert_eq!(stats.tu_cache_hits, 2, "unchanged TUs must hit");
    assert_eq!(stats.tu_cache_misses, 1, "the edited TU must miss");
    assert_eq!(stats.tus_parsed, 1, "only the edited TU is re-parsed");
    assert_eq!(stats.tus_summarized, 1, "only the edited TU is re-summarized");

    // The warm partial recomputation must be indistinguishable from a
    // from-scratch cacheless run over the edited sources.
    let fresh_tel = Telemetry::enabled();
    let fresh = run(&edited, Engine::Summary, 8, None, &fresh_tel);
    assert_eq!(artifacts(&warm, &warm_tel), artifacts(&fresh, &fresh_tel));
    assert!(warm.report().to_string().contains("live tag"));
}

#[test]
fn renamed_file_with_identical_content_still_hits() {
    let scratch = Scratch::new("renamed");
    let inputs = inputs();
    run(
        &inputs,
        Engine::Summary,
        1,
        Some(scratch.path()),
        &Telemetry::enabled(),
    );

    let mut renamed = inputs.clone();
    renamed[1].0 = "geometry_v2.cpp".to_string();
    let tel = Telemetry::enabled();
    run(&renamed, Engine::Summary, 1, Some(scratch.path()), &tel);
    assert_eq!(tel.stats().tu_cache_hits, 3, "cache keys are content, not paths");
}

/// Damages every cache entry via `f`, then asserts a warm run detects
/// the damage, recomputes all TUs, and leaves valid entries behind.
fn damaged_entries_are_recovered(test: &str, f: impl Fn(&str) -> String) {
    let scratch = Scratch::new(test);
    let inputs = inputs();
    let cold_tel = Telemetry::enabled();
    let cold = run(&inputs, Engine::Summary, 1, Some(scratch.path()), &cold_tel);
    let cold_art = artifacts(&cold, &cold_tel);

    // Damage the per-TU summary entries and drop the analysis snapshot:
    // this test proves the JSON probe's detect-and-recompute path, which
    // a surviving snapshot would otherwise short-circuit (snapshot
    // damage has its own torture tests).
    let _ = std::fs::remove_file(scratch.path().join("analysis.snap"));
    let entries: Vec<PathBuf> = std::fs::read_dir(scratch.path())
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.to_string_lossy().ends_with(".json"))
        .collect();
    assert_eq!(entries.len(), 3);
    for path in &entries {
        let doc = std::fs::read_to_string(path).unwrap();
        std::fs::write(path, f(&doc)).unwrap();
    }

    let warm_tel = Telemetry::enabled();
    let warm = run(&inputs, Engine::Summary, 1, Some(scratch.path()), &warm_tel);
    let stats = warm_tel.stats();
    assert_eq!(stats.tu_cache_hits, 0, "damaged entries must not hit");
    assert_eq!(stats.tu_cache_invalidations, 3);
    assert_eq!(stats.tus_summarized, 3, "every TU is recomputed");
    assert_eq!(artifacts(&warm, &warm_tel), cold_art);

    // The damaged entries were overwritten with valid ones.
    let again_tel = Telemetry::enabled();
    run(&inputs, Engine::Summary, 1, Some(scratch.path()), &again_tel);
    assert_eq!(again_tel.stats().tu_cache_hits, 3);
    assert_eq!(again_tel.stats().tu_cache_invalidations, 0);
}

#[test]
fn corrupted_cache_entries_are_discarded_and_recomputed() {
    damaged_entries_are_recovered("corrupt", |_| "{]".to_string());
}

#[test]
fn truncated_cache_entries_are_discarded_and_recomputed() {
    damaged_entries_are_recovered("truncate", |doc| doc[..doc.len() / 2].to_string());
}

#[test]
fn version_mismatched_cache_entries_are_discarded_and_recomputed() {
    damaged_entries_are_recovered("version", |doc| {
        let skewed = doc.replacen("\"version\":1", "\"version\":999", 1);
        assert_ne!(&skewed, doc, "entry must carry the format version");
        skewed
    });
}

#[test]
fn fingerprint_changes_invalidate_cached_entries() {
    let scratch = Scratch::new("fingerprint");
    let inputs = inputs();
    run(
        &inputs,
        Engine::Summary,
        1,
        Some(scratch.path()),
        &Telemetry::enabled(),
    );

    // PTA refinement changes what per-TU summaries contain, so its
    // fingerprint must not accept RTA-era entries.
    let tel = Telemetry::enabled();
    ProjectPipeline::run(
        &inputs,
        AnalysisConfig::default(),
        Algorithm::Pta,
        1,
        Engine::Summary,
        Some(scratch.path()),
        &tel,
    )
    .expect("pta project run");
    assert_eq!(tel.stats().tu_cache_hits, 0);
    assert_eq!(tel.stats().tu_cache_invalidations, 3);
}
