//! Capped in-process differential fuzz sweep — the `cargo test -q`
//! slice of the `bench_fuzz` corpus. Sweeps 200+ seeds across the full
//! adversarial shape matrix, asserting that walk/summary engines,
//! jobs 1/8, and the persistent cache (cold/warm/1-changed, on every
//! third seed) agree byte-for-byte on report, `--explain` output, and
//! deterministic counters. A failure shrinks the divergence and prints
//! the minimal repro.

use ddm_bench::fuzz::{
    case_for_seed, chunk_top_level, function_definition_count, run_case, shrink_config,
    shrink_divergence, shrink_inputs, CaseResult, FuzzCase,
};
use ddm_benchmarks::generator::{generate_fuzz, FuzzConfig, FuzzShape, GeneratorConfig};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Seeds swept by the capped in-process run (≥ 200 per the safety-net
/// requirement; 203 = 29 full cycles of the 7-shape matrix).
const SWEEP_SEEDS: u64 = 203;

/// The cached half of the matrix runs on every `FULL_EVERY`th seed.
const FULL_EVERY: u64 = 3;

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ddm-dfuzz-{tag}-{}", std::process::id()))
}

#[test]
fn capped_sweep_agrees_on_every_cell() {
    let scratch = scratch("sweep");
    let next = AtomicU64::new(0);
    let swept = AtomicUsize::new(0);
    let diverged: Mutex<Option<FuzzCase>> = Mutex::new(None);

    std::thread::scope(|scope| {
        for _ in 0..8 {
            scope.spawn(|| loop {
                let seed = next.fetch_add(1, Ordering::Relaxed);
                if seed >= SWEEP_SEEDS || diverged.lock().unwrap().is_some() {
                    break;
                }
                let case = case_for_seed(seed);
                match run_case(&case, &scratch, seed % FULL_EVERY == 0) {
                    CaseResult::Agree { error_outcome } => {
                        // The deliberate ODR-conflict shape must be
                        // *rejected* identically everywhere; every other
                        // shape must analyze cleanly.
                        assert_eq!(
                            error_outcome,
                            case.config.shape == FuzzShape::OdrConflict,
                            "seed {seed} shape {}: unexpected outcome kind",
                            case.config.shape.name()
                        );
                        swept.fetch_add(1, Ordering::Relaxed);
                    }
                    CaseResult::Diverged(_) => {
                        diverged.lock().unwrap().get_or_insert(case);
                        break;
                    }
                }
            });
        }
    });

    if let Some(case) = diverged.lock().unwrap().take() {
        let repro = shrink_divergence(&case, &scratch);
        let _ = std::fs::remove_dir_all(&scratch);
        panic!("differential divergence:\n{}", repro.render());
    }
    let _ = std::fs::remove_dir_all(&scratch);
    assert_eq!(swept.load(Ordering::Relaxed) as u64, SWEEP_SEEDS);
}

/// The shrinker must reduce a seeded synthetic divergence to ≤ 2
/// function definitions. The "divergence" here is a predicate chosen
/// to need only a heap allocation and a matching delete — exactly the
/// kind of small core a real engine disagreement has — over a config
/// big enough that the raw program carries dozens of functions.
#[test]
fn shrinker_reduces_synthetic_divergence_to_two_functions() {
    let config = FuzzConfig {
        base: GeneratorConfig {
            classes: 7,
            members_per_class: 4,
            methods_per_class: 3,
            stmts_per_method: 4,
            objects_in_main: 6,
        },
        shape: FuzzShape::DeadCodeHeavy,
        tus: 3,
    };
    let seed = 41;

    // "Interesting" = still parses + analyzes, and main still heap-
    // allocates and deletes. Analyzability keeps the shrinker honest:
    // it cannot cheat by dropping a chunk some kept chunk depends on.
    let interesting = |inputs: &[(String, String)]| {
        let text: String = inputs.iter().map(|(_, s)| s.as_str()).collect();
        if !text.contains("new K") || !text.contains("delete ") {
            return false;
        }
        !ddm_bench::fuzz::oracle_artifact(
            inputs,
            ddm_callgraph::Algorithm::Rta,
            ddm_core::Engine::Summary,
            1,
            None,
        )
        .starts_with("error:")
    };

    // Config bisection first, exactly as shrink_divergence does.
    let small = shrink_config(&config, |cfg| interesting(&generate_fuzz(cfg, seed)));
    assert!(small.tus <= config.tus && small.base.classes <= config.base.classes);

    let start = generate_fuzz(&small, seed);
    let before = function_definition_count(&start);
    let minimal = shrink_inputs(&start, interesting);
    let after = function_definition_count(&minimal);
    assert!(
        after <= 2,
        "shrinker left {after} function definitions (started from {before}):\n{}",
        minimal
            .iter()
            .map(|(f, s)| format!("--- {f}\n{s}"))
            .collect::<String>()
    );
    assert!(interesting(&minimal), "shrunk repro lost the divergence");
    assert!(
        minimal.iter().map(|(_, s)| s.len()).sum::<usize>()
            < start.iter().map(|(_, s)| s.len()).sum::<usize>(),
        "shrinker made no progress"
    );
}

/// Chunking must exactly partition every generated adversarial program:
/// concatenating the chunks reproduces the TU byte-for-byte.
#[test]
fn chunker_partitions_generated_programs_exactly() {
    for seed in 0..14 {
        let case = case_for_seed(seed);
        for (file, source) in generate_fuzz(&case.config, seed) {
            assert_eq!(
                chunk_top_level(&source).concat(),
                source,
                "seed {seed} {file}: chunks do not concatenate to the source"
            );
        }
    }
}
