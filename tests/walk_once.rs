//! Proof that the summary engine earns its name: each function body is
//! traversed exactly once per analysis run.
//!
//! The typewalk layer counts every `walk_function`/`walk_globals`
//! invocation in a process-wide counter. A summary-engine pipeline run
//! must advance it by exactly `function_count + 1` (each body once
//! during extraction, plus one pass over global initialisers), while the
//! retained walk engine re-traverses bodies every call-graph round and
//! again for the liveness scan and used-class computation.
//!
//! Kept as a single `#[test]` in its own binary: the counter is
//! process-global, so concurrent tests would interleave their deltas.

use dead_data_members::analysis::Engine;
use dead_data_members::prelude::*;

fn bundled_programs() -> Vec<(String, String)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/crates/benchmarks/programs");
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .expect("benchmark programs directory")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "cpp"))
        .collect();
    paths.sort();
    assert!(paths.len() >= 11, "found only {} programs", paths.len());
    paths
        .into_iter()
        .map(|p| {
            let name = p.file_stem().unwrap().to_string_lossy().into_owned();
            let source = std::fs::read_to_string(&p).expect("readable program");
            (name, source)
        })
        .collect()
}

fn suite_config() -> AnalysisConfig {
    AnalysisConfig {
        assume_safe_downcasts: true,
        sizeof_policy: SizeofPolicy::Ignore,
        ..Default::default()
    }
}

/// Runs one pipeline and returns how many body walks it performed.
fn walks_for(source: &str, engine: Engine, jobs: usize) -> u64 {
    let before = body_walk_count();
    AnalysisPipeline::with_config_engine(source, suite_config(), Algorithm::Rta, jobs, engine)
        .expect("pipeline");
    body_walk_count() - before
}

#[test]
fn summary_engine_walks_each_body_exactly_once() {
    for (name, source) in bundled_programs() {
        let tu = parse(&source).expect("parse");
        let program = Program::build(&tu).expect("sema");
        let function_count = program.functions().count() as u64;

        // Extraction walks every function body once plus the global
        // initialisers once; no downstream phase touches an AST again.
        for jobs in [1u64, 8] {
            let walked = walks_for(&source, Engine::Summary, jobs as usize);
            assert_eq!(
                walked,
                function_count + 1,
                "{name}: summary engine (jobs={jobs}) walked {walked} bodies, \
                 expected {function_count} functions + 1 globals pass"
            );
        }

        // The retained engine re-walks per call-graph round and again in
        // the liveness scan, so it must always do strictly more work.
        let rewalked = walks_for(&source, Engine::Walk, 1);
        assert!(
            rewalked > function_count + 1,
            "{name}: walk engine did {rewalked} walks, \
             not more than the summary engine's {}",
            function_count + 1
        );
    }
}
