//! The telemetry layer's core contract: deterministic counters are
//! bit-identical across worker counts and engines, enabling telemetry
//! changes no analysis output, and `--explain` renders the same witness
//! text whichever engine produced the liveness.

use dead_data_members::prelude::*;

/// Every `.cpp` program bundled with the benchmark suite, in sorted order.
fn bundled_programs() -> Vec<(String, String)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/crates/benchmarks/programs");
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .expect("benchmark programs directory")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "cpp"))
        .collect();
    paths.sort();
    assert!(
        paths.len() >= 11,
        "expected the paper's eleven programs, found {}",
        paths.len()
    );
    paths
        .into_iter()
        .map(|p| {
            let name = p.file_stem().unwrap().to_string_lossy().into_owned();
            let source = std::fs::read_to_string(&p).expect("read benchmark program");
            (name, source)
        })
        .collect()
}

fn run_counters(source: &str, jobs: usize, engine: Engine) -> Counters {
    let telemetry = Telemetry::enabled();
    AnalysisPipeline::with_config_telemetry(
        source,
        AnalysisConfig::default(),
        Algorithm::Rta,
        jobs,
        engine,
        &telemetry,
    )
    .expect("pipeline");
    telemetry.counters()
}

#[test]
fn counters_identical_across_jobs_and_engines() {
    for (name, source) in bundled_programs() {
        let reference = run_counters(&source, 1, Engine::Summary);
        for engine in [Engine::Walk, Engine::Summary] {
            for jobs in [1, 2, 8] {
                let counters = run_counters(&source, jobs, engine);
                assert_eq!(
                    counters, reference,
                    "{name}: counters diverged at engine={engine} jobs={jobs}"
                );
            }
        }
    }
}

#[test]
fn sharded_scan_counters_match_sequential() {
    // The pipeline's size threshold routes small programs to the
    // sequential path, so exercise the worker machinery directly: the
    // sharded scan must count the identical event totals.
    for (name, source) in bundled_programs() {
        let tu = parse(&source).expect("parse");
        let program = Program::build(&tu).expect("sema");
        let lookup = MemberLookup::new(&program);
        let graph = CallGraph::build(&program, &lookup, &CallGraphOptions::default()).unwrap();
        let analysis = DeadMemberAnalysis::new(&program, AnalysisConfig::default());

        let sequential = Telemetry::enabled();
        let reference = analysis.run(&graph).unwrap();
        analysis
            .run_jobs_with(&graph, 1, &sequential)
            .expect("sequential scan");
        for jobs in [2, 8] {
            let telemetry = Telemetry::enabled();
            let liveness = analysis
                .run_jobs_sharded(&graph, jobs, &telemetry)
                .expect("sharded scan");
            assert_eq!(liveness, reference, "{name}: liveness diverged at jobs={jobs}");
            assert_eq!(
                telemetry.counters(),
                sequential.counters(),
                "{name}: sharded counters diverged at jobs={jobs}"
            );
        }
    }
}

#[test]
fn enabling_telemetry_changes_no_analysis_output() {
    for (name, source) in bundled_programs() {
        let plain = AnalysisPipeline::with_config_engine(
            &source,
            AnalysisConfig::default(),
            Algorithm::Rta,
            2,
            Engine::Summary,
        )
        .expect("pipeline");
        let telemetry = Telemetry::enabled();
        let observed = AnalysisPipeline::with_config_telemetry(
            &source,
            AnalysisConfig::default(),
            Algorithm::Rta,
            2,
            Engine::Summary,
            &telemetry,
        )
        .expect("pipeline");
        assert_eq!(
            plain.report().to_string(),
            observed.report().to_string(),
            "{name}: telemetry changed the report"
        );
        assert_eq!(
            plain.liveness(),
            observed.liveness(),
            "{name}: telemetry changed the liveness"
        );
    }
}

#[test]
fn explain_is_byte_identical_across_engines() {
    for (name, source) in bundled_programs() {
        let walk = AnalysisPipeline::with_config_engine(
            &source,
            AnalysisConfig::default(),
            Algorithm::Rta,
            1,
            Engine::Walk,
        )
        .expect("walk pipeline");
        let summary = AnalysisPipeline::with_config_engine(
            &source,
            AnalysisConfig::default(),
            Algorithm::Rta,
            1,
            Engine::Summary,
        )
        .expect("summary pipeline");
        for (_, class) in walk.program().classes() {
            for member in &class.members {
                let spec = format!("{}::{}", class.name, member.name);
                let from_walk =
                    explain(walk.program(), walk.callgraph(), walk.liveness(), &spec)
                        .expect("known member");
                let from_summary = explain(
                    summary.program(),
                    summary.callgraph(),
                    summary.liveness(),
                    &spec,
                )
                .expect("known member");
                assert_eq!(
                    from_walk, from_summary,
                    "{name}: explanation of {spec} diverged between engines"
                );
            }
        }
    }
}

#[test]
fn stats_record_engine_and_fastpath_routing() {
    let (_, source) = &bundled_programs()[0];
    let telemetry = Telemetry::enabled();
    AnalysisPipeline::with_config_telemetry(
        source,
        AnalysisConfig::default(),
        Algorithm::Rta,
        8,
        Engine::Walk,
        &telemetry,
    )
    .expect("pipeline");
    let stats = telemetry.stats();
    assert_eq!(stats.engine, "walk");
    assert_eq!(stats.jobs, 8);
    assert!(
        stats.scan_sequential_fastpath,
        "benchmark programs sit below SEQUENTIAL_SCAN_THRESHOLD, so jobs=8 must fall back"
    );
    assert!(stats.bodies_walked > 0);
}
