//! Differential harness for the two analysis engines.
//!
//! The summary engine (walk-once extraction + propagation over
//! [`ProgramSummary`]) must be bit-identical to the retained walk engine
//! on every observable: the liveness classification (live set, recorded
//! reasons, unclassifiable set), the call graph (reachable set,
//! instantiated set, edges), and the byte-for-byte rendered report.
//! The comparison runs across every bundled benchmark program, every
//! call-graph algorithm, both worker counts, every configuration gate
//! the engines resolve at different times (down-casts, `sizeof`,
//! library classes), and a seeded sweep of generated programs.

use dead_data_members::analysis::Engine;
use dead_data_members::benchmarks::generator::{generate, GeneratorConfig};
use dead_data_members::benchmarks::rng::Rng;
use dead_data_members::prelude::*;

/// Every `.cpp` program shipped with the benchmark suite, in a fixed
/// (sorted) order, read from the source tree.
fn bundled_programs() -> Vec<(String, String)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/crates/benchmarks/programs");
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .expect("benchmark programs directory")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "cpp"))
        .collect();
    paths.sort();
    assert!(
        paths.len() >= 11,
        "expected the paper's eleven programs, found {}",
        paths.len()
    );
    paths
        .into_iter()
        .map(|p| {
            let name = p.file_stem().unwrap().to_string_lossy().into_owned();
            let source = std::fs::read_to_string(&p).expect("readable program");
            (name, source)
        })
        .collect()
}

/// The suite's analysis configuration (down-casts verified safe,
/// `sizeof` ignorable — matching `Benchmark::analyze`).
fn suite_config() -> AnalysisConfig {
    AnalysisConfig {
        assume_safe_downcasts: true,
        sizeof_policy: SizeofPolicy::Ignore,
        ..Default::default()
    }
}

/// Asserts that the walk and summary engines agree on every observable
/// for one (source, config, algorithm) triple, at both worker counts.
fn assert_engines_agree(label: &str, source: &str, config: &AnalysisConfig, algorithm: Algorithm) {
    let reference =
        AnalysisPipeline::with_config_engine(source, config.clone(), algorithm, 1, Engine::Walk)
            .unwrap_or_else(|e| panic!("{label}: walk engine failed: {e}"));
    let reference_report = reference.report().to_string();
    for (engine, jobs) in [
        (Engine::Walk, 8),
        (Engine::Summary, 1),
        (Engine::Summary, 8),
    ] {
        let run =
            AnalysisPipeline::with_config_engine(source, config.clone(), algorithm, jobs, engine)
                .unwrap_or_else(|e| panic!("{label}: {engine} jobs={jobs} failed: {e}"));
        assert_eq!(
            reference.liveness(),
            run.liveness(),
            "{label}: liveness diverged ({engine}, jobs={jobs}, {algorithm})"
        );
        assert_eq!(
            reference.callgraph(),
            run.callgraph(),
            "{label}: call graph diverged ({engine}, jobs={jobs}, {algorithm})"
        );
        assert_eq!(
            reference.used(),
            run.used(),
            "{label}: used-class set diverged ({engine}, jobs={jobs}, {algorithm})"
        );
        assert_eq!(
            reference_report,
            run.report().to_string(),
            "{label}: rendered report diverged ({engine}, jobs={jobs}, {algorithm})"
        );
    }
}

#[test]
fn engines_agree_on_all_bundled_programs_and_algorithms() {
    for algorithm in [
        Algorithm::Everything,
        Algorithm::Cha,
        Algorithm::Rta,
        Algorithm::Pta,
    ] {
        for (name, source) in bundled_programs() {
            assert_engines_agree(&name, &source, &suite_config(), algorithm);
        }
    }
}

/// Exercises every configuration-dependent rule the summary engine
/// resolves at replay time rather than extraction time: down-cast
/// safety, `sizeof` policy, and library-class unclassifiability — plus
/// the extraction-time rules (volatile writes, unions, reinterpret
/// casts) for completeness.
const GATE_SOURCE: &str = "class LibString { public: char* data; int len; };\n\
     class S { public: int s1; int s2; };\n\
     class T : public S { public: int t1; };\n\
     class A { public: int m1; int m2; };\n\
     class Dev { public: volatile int ctrl; int scratch; };\n\
     union U { int i; float f; };\n\
     union W { int a; int b; };\n\
     int main() {\n\
         S* s = new T();\n\
         T* t = (T*)s;\n\
         A* a = new A();\n\
         long v = reinterpret_cast<long>(a);\n\
         Dev d; d.ctrl = 1; d.scratch = 2;\n\
         U u; u.f = 1.5;\n\
         W w; w.a = 3;\n\
         LibString ls;\n\
         int z = sizeof(A);\n\
         return u.i + z;\n\
     }";

#[test]
fn engines_agree_on_every_configuration_gate() {
    let configs: Vec<(&str, AnalysisConfig)> = vec![
        ("default", AnalysisConfig::default()),
        ("suite", suite_config()),
        (
            "safe-downcasts-only",
            AnalysisConfig {
                assume_safe_downcasts: true,
                ..Default::default()
            },
        ),
        (
            "ignore-sizeof-only",
            AnalysisConfig {
                sizeof_policy: SizeofPolicy::Ignore,
                ..Default::default()
            },
        ),
        (
            "library",
            AnalysisConfig {
                library_classes: ["LibString".to_string()].into_iter().collect(),
                ..Default::default()
            },
        ),
    ];
    for (label, config) in &configs {
        for algorithm in [Algorithm::Everything, Algorithm::Cha, Algorithm::Rta, Algorithm::Pta] {
            assert_engines_agree(label, GATE_SOURCE, config, algorithm);
        }
    }
}

/// Deterministic replacement for a proptest strategy: `n` generator
/// configurations spanning the same shape space, each with its own
/// program seed (mirrors `tests/property_soundness.rs`).
fn cases(n: usize, stream_seed: u64) -> Vec<(GeneratorConfig, u64)> {
    let mut rng = Rng::seed_from_u64(stream_seed);
    (0..n)
        .map(|_| {
            let config = GeneratorConfig {
                classes: rng.gen_range(1..8),
                members_per_class: rng.gen_range(1..6),
                methods_per_class: rng.gen_range(1..4),
                stmts_per_method: rng.gen_range(0..6),
                objects_in_main: rng.gen_range(1..8),
            };
            let seed = rng.next_u64() % 10_000;
            (config, seed)
        })
        .collect()
}

#[test]
fn engines_agree_on_generated_programs() {
    for (config, seed) in cases(24, 0x7A12) {
        let src = generate(&config, seed);
        assert_engines_agree(
            &format!("generated seed={seed}"),
            &src,
            &AnalysisConfig::default(),
            Algorithm::Rta,
        );
    }
}

#[test]
fn summary_engine_is_the_default() {
    let run = AnalysisPipeline::from_source("int main() { return 0; }").expect("pipeline");
    assert_eq!(run.engine(), Engine::Summary);
    assert_eq!(Engine::Summary.to_string(), "summary");
    assert_eq!(Engine::Walk.to_string(), "walk");
}
