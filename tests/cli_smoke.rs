//! Smoke tests for the `ddm` command-line driver, exercising the built
//! binary end-to-end the way a user would.

use std::process::Command;

fn ddm() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ddm"))
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("ddm_cli_{name}_{}.cpp", std::process::id()));
    std::fs::write(&path, contents).expect("write temp source");
    path
}

const SAMPLE: &str = "class A { public: int live; int dead; };\n\
                      int main() { A a; a.dead = 1; print_int(a.live); return a.live; }";

#[test]
fn analyze_reports_dead_members() {
    let src = write_temp("analyze", SAMPLE);
    let out = ddm().arg(&src).output().expect("run ddm");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("DEAD dead"), "{stdout}");
    assert!(stdout.contains("live live (read)"), "{stdout}");
    assert!(stdout.contains("call graph (RTA)"), "{stdout}");
}

#[test]
fn run_flag_executes_the_program() {
    let src = write_temp("run", SAMPLE);
    let out = ddm().arg(&src).arg("--run").output().expect("run ddm");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("[exit code 0]"), "{stdout}");
}

#[test]
fn profile_flag_prints_heap_numbers() {
    let src = write_temp("profile", SAMPLE);
    let out = ddm().arg(&src).arg("--profile").output().expect("run ddm");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("object space:"), "{stdout}");
    assert!(stdout.contains("dead data member space:"), "{stdout}");
}

#[test]
fn eliminate_flag_writes_transformed_source() {
    let src = write_temp("elim", SAMPLE);
    let out_path =
        std::env::temp_dir().join(format!("ddm_cli_elim_out_{}.cpp", std::process::id()));
    let out = ddm()
        .arg(&src)
        .arg("--eliminate")
        .arg(&out_path)
        .output()
        .expect("run ddm");
    assert!(out.status.success(), "{out:?}");
    let transformed = std::fs::read_to_string(&out_path).expect("read output");
    assert!(!transformed.contains("int dead;"), "{transformed}");
    assert!(transformed.contains("int live;"), "{transformed}");
}

#[test]
fn callgraph_flag_switches_builder() {
    let src = write_temp("cg", SAMPLE);
    for (flag, label) in [("cha", "CHA"), ("everything", "everything"), ("rta", "RTA")] {
        let out = ddm()
            .arg(&src)
            .arg("--callgraph")
            .arg(flag)
            .output()
            .expect("run ddm");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains(&format!("call graph ({label})")),
            "{stdout}"
        );
    }
}

#[test]
fn bad_arguments_exit_with_usage() {
    let out = ddm().arg("--nonsense").output().expect("run ddm");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn parse_errors_are_reported_not_panicked() {
    let src = write_temp("bad", "class {{{{");
    let out = ddm().arg(&src).output().expect("run ddm");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error:"), "{stderr}");
}

#[test]
fn help_lists_every_flag_from_the_table() {
    let out = ddm().arg("--help").output().expect("run ddm");
    let stderr = String::from_utf8_lossy(&out.stderr);
    for flag in [
        "--callgraph",
        "--engine",
        "--jobs",
        "--library",
        "--sizeof-conservative",
        "--unsafe-downcasts",
        "--run",
        "--profile",
        "--eliminate",
        "--layout",
        "--stats",
        "--stats-json",
        "--trace-out",
        "--log-out",
        "--log-filter",
        "--metrics-out",
        "--explain",
        "--cache-dir",
    ] {
        assert!(stderr.contains(flag), "help is missing {flag}:\n{stderr}");
    }
}

#[test]
fn stats_flag_prints_sections_on_stderr_only() {
    let src = write_temp("stats", SAMPLE);
    let out = ddm().arg(&src).arg("--stats").output().expect("run ddm");
    assert!(out.status.success(), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    for section in [
        "== phase spans ==",
        "== deterministic counters ==",
        "== execution stats ==",
    ] {
        assert!(stderr.contains(section), "{stderr}");
    }
    // The report itself stays on stdout, uncontaminated.
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("DEAD dead"), "{stdout}");
    assert!(!stdout.contains("== phase spans =="), "{stdout}");
}

#[test]
fn trace_out_writes_valid_chrome_json_with_worker_lanes() {
    // Sharding (summary extraction, parallel call-graph rounds, and the
    // scan) only kicks in above the 256-function thresholds, so the
    // suite programs stay sequential at any --jobs; generate a wide
    // program big enough that all eight requested lanes record spans.
    let mut wide = String::from("class A { public: int f; };\n");
    for i in 0..300 {
        wide.push_str(&format!("int leaf{i}(A* a) {{ return a->f + {i}; }}\n"));
    }
    wide.push_str("int main() { A a; int t = 0;\n");
    for i in 0..300 {
        wide.push_str(&format!("  t = t + leaf{i}(&a);\n"));
    }
    wide.push_str("  return t; }\n");
    let src = write_temp("trace", &wide);
    let trace_path =
        std::env::temp_dir().join(format!("ddm_cli_trace_{}.json", std::process::id()));
    let out = ddm()
        .arg(&src)
        .arg("--jobs")
        .arg("8")
        .arg("--trace-out")
        .arg(&trace_path)
        .output()
        .expect("run ddm");
    assert!(out.status.success(), "{out:?}");
    let trace = std::fs::read_to_string(&trace_path).expect("read trace");
    dead_data_members::telemetry::json::validate(&trace)
        .unwrap_or_else(|e| panic!("trace is not valid JSON: {e}"));
    for lane in 1..=8 {
        assert!(
            trace.contains(&format!("worker-{lane}")),
            "trace lacks a lane for worker {lane}"
        );
    }
    assert!(trace.contains("\"ph\": \"X\""), "no complete events in trace");
}

#[test]
fn log_out_writes_ndjson_and_log_filter_selects_classes() {
    let src = write_temp("logout", SAMPLE);
    let out_path = |tag: &str| {
        std::env::temp_dir().join(format!("ddm_cli_log_{tag}_{}.ndjson", std::process::id()))
    };
    let all = out_path("all");
    let out = ddm()
        .arg(&src)
        .arg("--log-out")
        .arg(&all)
        .output()
        .expect("run ddm");
    assert!(out.status.success(), "{out:?}");
    let log = std::fs::read_to_string(&all).expect("read log");
    assert!(log.contains("\"event\":\"classification\""), "{log}");
    for line in log.lines() {
        dead_data_members::telemetry::json::validate(line)
            .unwrap_or_else(|e| panic!("log line is not valid JSON: {e}\n{line}"));
    }
    let det = out_path("det");
    let out = ddm()
        .arg(&src)
        .arg("--log-out")
        .arg(&det)
        .arg("--log-filter")
        .arg("det")
        .output()
        .expect("run ddm");
    assert!(out.status.success(), "{out:?}");
    let filtered = std::fs::read_to_string(&det).expect("read filtered log");
    assert!(
        filtered
            .lines()
            .filter(|l| !l.contains("\"event\":\"log_truncated\""))
            .all(|l| l.contains("\"class\":\"det\"")),
        "--log-filter det leaked observational events:\n{filtered}"
    );
    let _ = std::fs::remove_file(&all);
    let _ = std::fs::remove_file(&det);
}

#[test]
fn log_filter_rejects_unknown_event_class_listing_valid_ones() {
    let src = write_temp("logclass", SAMPLE);
    let out = ddm()
        .arg(&src)
        .arg("--log-filter")
        .arg("bogus")
        .output()
        .expect("run ddm");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown event class `bogus`"), "{stderr}");
    assert!(stderr.contains("det, obs, all"), "{stderr}");
}

#[test]
fn metrics_out_and_stats_json_write_versioned_documents() {
    let src = write_temp("metrics", SAMPLE);
    let metrics_path =
        std::env::temp_dir().join(format!("ddm_cli_metrics_{}.json", std::process::id()));
    let stats_path =
        std::env::temp_dir().join(format!("ddm_cli_statsjson_{}.json", std::process::id()));
    let out = ddm()
        .arg(&src)
        .arg("--metrics-out")
        .arg(&metrics_path)
        .arg("--stats-json")
        .arg(&stats_path)
        .output()
        .expect("run ddm");
    assert!(out.status.success(), "{out:?}");
    let metrics = std::fs::read_to_string(&metrics_path).expect("read metrics");
    dead_data_members::telemetry::json::validate(&metrics)
        .unwrap_or_else(|e| panic!("metrics are not valid JSON: {e}"));
    assert!(metrics.contains("ddm-metrics/1"), "{metrics}");
    assert!(metrics.contains("callgraph/round_delta_fns"), "{metrics}");
    let stats = std::fs::read_to_string(&stats_path).expect("read stats");
    dead_data_members::telemetry::json::validate(&stats)
        .unwrap_or_else(|e| panic!("stats are not valid JSON: {e}"));
    assert!(stats.contains("ddm-stats/1"), "{stats}");
    assert!(stats.contains("\"counters\""), "{stats}");
    let _ = std::fs::remove_file(&metrics_path);
    let _ = std::fs::remove_file(&stats_path);
}

#[test]
fn explain_live_member_prints_witness_chain() {
    let src = write_temp("explain_live", SAMPLE);
    let out = ddm()
        .arg(&src)
        .arg("--explain")
        .arg("A::live")
        .output()
        .expect("run ddm");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("A::live: LIVE (read)"), "{stdout}");
    assert!(stdout.contains("call chain: main"), "{stdout}");
    // The explanation replaces the report.
    assert!(!stdout.contains("dead data members:"), "{stdout}");
}

#[test]
fn explain_dead_member_says_dead() {
    let src = write_temp("explain_dead", SAMPLE);
    let out = ddm()
        .arg(&src)
        .arg("--explain")
        .arg("A::dead")
        .output()
        .expect("run ddm");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("A::dead: DEAD"), "{stdout}");
}

#[test]
fn explain_unknown_member_exits_2() {
    let src = write_temp("explain_unknown", SAMPLE);
    let out = ddm()
        .arg(&src)
        .arg("--explain")
        .arg("A::nonexistent")
        .output()
        .expect("run ddm");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("no data member"), "{stderr}");
}

#[test]
fn value_flags_reject_a_following_flag_as_their_value() {
    // `ddm a.cpp --trace-out --stats` must not write a trace file
    // literally named `--stats`; every value-taking flag errors out.
    let src = write_temp("flagval", SAMPLE);
    for flag in [
        "--trace-out",
        "--eliminate",
        "--explain",
        "--library",
        "--callgraph",
        "--engine",
        "--jobs",
        "--cache-dir",
        "--stats-json",
        "--log-out",
        "--log-filter",
        "--metrics-out",
    ] {
        let out = ddm()
            .arg(&src)
            .arg(flag)
            .arg("--stats")
            .output()
            .expect("run ddm");
        assert_eq!(out.status.code(), Some(2), "{flag}: {out:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(&format!("{flag} needs a value")),
            "{flag}:\n{stderr}"
        );
    }
    assert!(
        !std::path::Path::new("--stats").exists(),
        "a file named `--stats` was created"
    );
}

#[test]
fn unknown_flags_suggest_help() {
    let out = ddm().arg("--frobnicate").output().expect("run ddm");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown flag `--frobnicate`"), "{stderr}");
    assert!(stderr.contains("--help"), "{stderr}");
}

const MULTI_HEADER: &str = "class Gauge {\n\
                            public:\n\
                            \x20   Gauge(int v) : value(v), spare(0) { }\n\
                            \x20   virtual ~Gauge() { }\n\
                            \x20   virtual int get() { return value; }\n\
                            \x20   int value;\n\
                            \x20   int spare;\n\
                            };\n";

fn write_multi(test: &str) -> (std::path::PathBuf, std::path::PathBuf) {
    let main = write_temp(
        &format!("{test}_main"),
        &format!("{MULTI_HEADER}int sample(Gauge* g);\nint main() {{ Gauge g(3); return sample(&g); }}"),
    );
    let lib = write_temp(
        &format!("{test}_lib"),
        &format!("{MULTI_HEADER}int sample(Gauge* g) {{ return g->get(); }}"),
    );
    (main, lib)
}

#[test]
fn multiple_positional_files_run_the_project_pipeline() {
    let (main, lib) = write_multi("multi");
    let out = ddm().arg(&main).arg(&lib).output().expect("run ddm");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("live value (read)"), "{stdout}");
    assert!(stdout.contains("DEAD spare"), "{stdout}");
}

#[test]
fn warm_cli_run_is_byte_identical_to_cold_and_skips_summarization() {
    let (main, lib) = write_multi("warm");
    let cache =
        std::env::temp_dir().join(format!("ddm_cli_cache_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache);

    let run = || {
        ddm()
            .arg(&main)
            .arg(&lib)
            .arg("--engine")
            .arg("summary")
            .arg("--cache-dir")
            .arg(&cache)
            .arg("--stats")
            .output()
            .expect("run ddm")
    };
    let cold = run();
    assert!(cold.status.success(), "{cold:?}");
    let warm = run();
    assert!(warm.status.success(), "{warm:?}");

    assert_eq!(cold.stdout, warm.stdout, "warm report must be byte-identical");

    // The deterministic-counters section must not see the cache; only
    // the execution stats (cache hit/parse counts) may differ.
    let section = |raw: &[u8]| -> String {
        let text = String::from_utf8_lossy(raw).to_string();
        let start = text.find("== deterministic counters ==").expect("section");
        let end = text.find("== execution stats ==").expect("section");
        text[start..end].to_string()
    };
    assert_eq!(section(&cold.stderr), section(&warm.stderr));

    let warm_stderr = String::from_utf8_lossy(&warm.stderr);
    assert!(
        warm_stderr
            .lines()
            .any(|l| l.starts_with("tus_summarized") && l.trim_end().ends_with('0')),
        "warm run should summarize zero TUs:\n{warm_stderr}"
    );
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn project_mode_rejects_single_file_only_flags() {
    let (main, lib) = write_multi("gate");
    let out = ddm()
        .arg(&main)
        .arg(&lib)
        .arg("--run")
        .output()
        .expect("run ddm");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--run needs single-file mode"), "{stderr}");
}

#[test]
fn explain_is_identical_across_engines_via_cli() {
    let src = write_temp("explain_engines", SAMPLE);
    let mut outputs = Vec::new();
    for engine in ["walk", "summary"] {
        let out = ddm()
            .arg(&src)
            .arg("--engine")
            .arg(engine)
            .arg("--explain")
            .arg("A::live")
            .output()
            .expect("run ddm");
        assert!(out.status.success(), "{out:?}");
        outputs.push(out.stdout);
    }
    assert_eq!(
        outputs[0], outputs[1],
        "explain output differs between engines"
    );
}
