//! Smoke tests for the `ddm` command-line driver, exercising the built
//! binary end-to-end the way a user would.

use std::process::Command;

fn ddm() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ddm"))
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("ddm_cli_{name}_{}.cpp", std::process::id()));
    std::fs::write(&path, contents).expect("write temp source");
    path
}

const SAMPLE: &str = "class A { public: int live; int dead; };\n\
                      int main() { A a; a.dead = 1; print_int(a.live); return a.live; }";

#[test]
fn analyze_reports_dead_members() {
    let src = write_temp("analyze", SAMPLE);
    let out = ddm().arg(&src).output().expect("run ddm");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("DEAD dead"), "{stdout}");
    assert!(stdout.contains("live live (read)"), "{stdout}");
    assert!(stdout.contains("call graph (RTA)"), "{stdout}");
}

#[test]
fn run_flag_executes_the_program() {
    let src = write_temp("run", SAMPLE);
    let out = ddm().arg(&src).arg("--run").output().expect("run ddm");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("[exit code 0]"), "{stdout}");
}

#[test]
fn profile_flag_prints_heap_numbers() {
    let src = write_temp("profile", SAMPLE);
    let out = ddm().arg(&src).arg("--profile").output().expect("run ddm");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("object space:"), "{stdout}");
    assert!(stdout.contains("dead data member space:"), "{stdout}");
}

#[test]
fn eliminate_flag_writes_transformed_source() {
    let src = write_temp("elim", SAMPLE);
    let out_path =
        std::env::temp_dir().join(format!("ddm_cli_elim_out_{}.cpp", std::process::id()));
    let out = ddm()
        .arg(&src)
        .arg("--eliminate")
        .arg(&out_path)
        .output()
        .expect("run ddm");
    assert!(out.status.success(), "{out:?}");
    let transformed = std::fs::read_to_string(&out_path).expect("read output");
    assert!(!transformed.contains("int dead;"), "{transformed}");
    assert!(transformed.contains("int live;"), "{transformed}");
}

#[test]
fn callgraph_flag_switches_builder() {
    let src = write_temp("cg", SAMPLE);
    for (flag, label) in [("cha", "CHA"), ("everything", "everything"), ("rta", "RTA")] {
        let out = ddm()
            .arg(&src)
            .arg("--callgraph")
            .arg(flag)
            .output()
            .expect("run ddm");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains(&format!("call graph ({label})")),
            "{stdout}"
        );
    }
}

#[test]
fn bad_arguments_exit_with_usage() {
    let out = ddm().arg("--nonsense").output().expect("run ddm");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn parse_errors_are_reported_not_panicked() {
    let src = write_temp("bad", "class {{{{");
    let out = ddm().arg(&src).output().expect("run ddm");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error:"), "{stderr}");
}
