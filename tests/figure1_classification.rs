//! End-to-end reproduction of the paper's §2/§3.1 running example
//! (Figure 1): every one of the ten data members must be classified
//! exactly as the paper's own walkthrough of its algorithm says.

use dead_data_members::prelude::*;

const FIGURE_1: &str = r#"
    class N {
    public:
        int mn1;
        int mn2;
    };
    class A {
    public:
        virtual int f() { return ma1; }
        int ma1;
        int ma2;
        int ma3;
    };
    class B : public A {
    public:
        virtual int f() { return mb1; }
        int mb1;
        N mb2;
        int mb3;
        int mb4;
    };
    class C : public A {
    public:
        virtual int f() { return mc1; }
        int mc1;
    };
    int foo(int* x) { return (*x) + 1; }
    int main() {
        A a; B b; C c;
        A* ap;
        a.ma3 = b.mb3 + 1;
        int i = 10;
        if (i < 20) { ap = &a; } else { ap = &b; }
        return ap->f() + b.mb2.mn1 + foo(&b.mb4);
    }
"#;

fn member(p: &Program, class: &str, name: &str) -> MemberRef {
    let cid = p.class_by_name(class).unwrap();
    let idx = p
        .class(cid)
        .members
        .iter()
        .position(|m| m.name == name)
        .unwrap_or_else(|| panic!("{class}::{name} missing"));
    MemberRef::new(cid, idx)
}

#[test]
fn paper_walkthrough_classification() {
    let run = AnalysisPipeline::from_source(FIGURE_1).expect("pipeline");
    let p = run.program();
    let l = run.liveness();

    // §3.1's live set.
    for (class, name, why) in [
        ("A", "ma1", "read in A::f"),
        ("N", "mn1", "read in main's return expression"),
        ("B", "mb2", "accessed on a read path"),
        (
            "B",
            "mb3",
            "read in main (conservative: value feeds a dead store)",
        ),
        ("B", "mb4", "address taken and passed to foo"),
        ("B", "mb1", "read in B::f, reachable through the call graph"),
        ("C", "mc1", "read in C::f, reachable through the call graph"),
    ] {
        assert!(l.is_live(member(p, class, name)), "{class}::{name}: {why}");
    }

    // §2's dead set.
    for (class, name, why) in [
        ("A", "ma2", "never accessed"),
        ("N", "mn2", "never accessed"),
        ("A", "ma3", "accessed but only written"),
    ] {
        assert!(l.is_dead(member(p, class, name)), "{class}::{name}: {why}");
    }

    let report = run.report();
    assert_eq!(report.dead_members_in_used_classes(), 3);
    assert_eq!(report.members_in_used_classes(), 10);
    assert!((report.dead_percentage() - 30.0).abs() < 1e-9);
}

#[test]
fn figure1_call_graph_is_the_papers() {
    // "the call graph consists of the methods A::f, B::f, and C::f in
    // addition to main" (§3.1).
    let run = AnalysisPipeline::from_source(FIGURE_1).expect("pipeline");
    let p = run.program();
    let g = run.callgraph();
    assert_eq!(g.reachable_count(), 5); // main, foo, A::f, B::f, C::f
    for class in ["A", "B", "C"] {
        let f = p
            .direct_method(p.class_by_name(class).unwrap(), "f")
            .unwrap();
        assert!(g.is_reachable(f), "{class}::f");
    }
}

#[test]
fn figure1_executes_and_oracle_is_consistent() {
    let run = AnalysisPipeline::from_source(FIGURE_1).expect("pipeline");
    let exec = Interpreter::new(run.program())
        .run(&RunConfig::default())
        .expect("runs");
    // Zero-initialized storage: ap->f() = 0, mn1 = 0, foo(&0) = 1.
    assert_eq!(exec.exit_code, 1);
    // Soundness: every member observed at run time is statically live.
    for m in &exec.members_observed {
        assert!(run.liveness().is_live(*m), "{m} observed but dead");
    }
    // ma3 is stored to, never read: it must not be in the observed set.
    let p = run.program();
    assert!(!exec.members_observed.contains(&member(p, "A", "ma3")));
}
