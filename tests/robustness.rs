//! Robustness: the front end must reject malformed input with an error —
//! never a panic — and the whole stack must be deterministic.

use dead_data_members::dynamic::{Interpreter, RunConfig};
use dead_data_members::prelude::*;

#[test]
fn truncated_sources_never_panic_the_parser() {
    let full = dead_data_members::benchmarks::by_name("richards")
        .unwrap()
        .source;
    // Truncate at many byte positions (snapped to char boundaries); each
    // prefix must either parse or produce a ParseError — no panics.
    let mut parsed = 0;
    let mut rejected = 0;
    for cut in (0..full.len()).step_by(61) {
        let mut end = cut;
        while !full.is_char_boundary(end) {
            end += 1;
        }
        match parse(&full[..end]) {
            Ok(_) => parsed += 1,
            Err(_) => rejected += 1,
        }
    }
    assert!(rejected > 0, "most prefixes are malformed");
    assert!(parsed >= 1, "the empty prefix parses");
}

#[test]
fn mutated_sources_never_panic_the_pipeline() {
    let full = dead_data_members::benchmarks::by_name("taldict")
        .unwrap()
        .source;
    // Delete one line at a time: the result must parse+analyze or fail
    // with a structured error.
    let lines: Vec<&str> = full.lines().collect();
    for skip in (0..lines.len()).step_by(7) {
        let mutated: String = lines
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != skip)
            .map(|(_, l)| format!("{l}\n"))
            .collect();
        let _ = AnalysisPipeline::from_source(&mutated); // must not panic
    }
}

#[test]
fn garbage_bytes_are_rejected_cleanly() {
    for src in [
        "",
        ";;;;",
        "class",
        "class A",
        "class A {",
        "int main() { return",
        "int main() { return 0; } }",
        "\u{0}\u{1}\u{2}",
        "class A : : { };",
        "int main() { 1 ++++ 2; }",
        "union U : public V { };",
    ] {
        let _ = parse(src); // Ok or Err, never a panic
    }
}

#[test]
fn execution_is_deterministic_across_runs() {
    for b in dead_data_members::benchmarks::suite() {
        let run = b.analyze().unwrap();
        let e1 = Interpreter::new(run.program())
            .run(&RunConfig::default())
            .unwrap();
        let e2 = Interpreter::new(run.program())
            .run(&RunConfig::default())
            .unwrap();
        assert_eq!(e1.output, e2.output, "{}", b.name);
        assert_eq!(e1.exit_code, e2.exit_code, "{}", b.name);
        assert_eq!(e1.steps, e2.steps, "{}", b.name);
        assert_eq!(
            e1.trace.events().len(),
            e2.trace.events().len(),
            "{}",
            b.name
        );
    }
}

#[test]
fn analysis_is_deterministic_across_runs() {
    for b in dead_data_members::benchmarks::suite() {
        let r1 = b.analyze().unwrap().report().dead_member_names();
        let r2 = b.analyze().unwrap().report().dead_member_names();
        assert_eq!(r1, r2, "{}", b.name);
    }
}
