//! The optimization end-to-end: eliminating dead data members from every
//! benchmark must preserve observable behaviour exactly (output and exit
//! code) while never increasing — and usually shrinking — object space.
//! This validates the paper's core claim that dead members "can be
//! removed from the application without affecting program behavior".

use dead_data_members::analysis::eliminate;
use dead_data_members::dynamic::{profile_trace, Interpreter, RunConfig};
use dead_data_members::prelude::*;

#[test]
fn eliminating_dead_members_preserves_suite_behaviour() {
    for b in dead_data_members::benchmarks::suite() {
        let before = b.analyze().unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let exec_before = Interpreter::new(before.program())
            .run(&RunConfig::default())
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let profile_before = profile_trace(before.program(), &exec_before.trace, before.liveness());

        let result = eliminate(&before);
        let after = AnalysisPipeline::from_source(&result.source)
            .unwrap_or_else(|e| panic!("{}: transformed source rejected: {e}", b.name));
        let exec_after = Interpreter::new(after.program())
            .run(&RunConfig::default())
            .unwrap_or_else(|e| panic!("{}: transformed program crashed: {e}", b.name));

        assert_eq!(
            exec_before.output, exec_after.output,
            "{}: output changed after elimination",
            b.name
        );
        assert_eq!(
            exec_before.exit_code, exec_after.exit_code,
            "{}: exit code changed after elimination",
            b.name
        );

        let profile_after = profile_trace(after.program(), &exec_after.trace, after.liveness());
        assert!(
            profile_after.object_space <= profile_before.object_space,
            "{}: object space grew ({} -> {})",
            b.name,
            profile_before.object_space,
            profile_after.object_space
        );
        if !result.removed.is_empty() {
            assert!(
                profile_after.object_space < profile_before.object_space,
                "{}: removed {:?} but object space did not shrink",
                b.name,
                result.removed
            );
        }
    }
}

#[test]
fn elimination_is_idempotent_on_the_suite() {
    // After one elimination pass, a second pass should find nothing new
    // to remove among the previously eliminable members.
    for b in dead_data_members::benchmarks::suite() {
        let first = b.analyze().unwrap();
        let r1 = eliminate(&first);
        let second = AnalysisPipeline::from_source(&r1.source).unwrap();
        let r2 = eliminate(&second);
        for name in &r2.removed {
            assert!(
                !r1.removed.contains(name),
                "{}: {name} survived the first pass but was eliminable",
                b.name
            );
        }
    }
}

#[test]
fn suite_elimination_removes_most_dead_members() {
    // The conservative eligibility rules should still fire for the large
    // majority of the suite's dead members (they are ordinary scalar
    // bookkeeping fields).
    let mut total_dead = 0usize;
    let mut total_removed = 0usize;
    for b in dead_data_members::benchmarks::suite() {
        let run = b.analyze().unwrap();
        let dead = run.report().dead_members_in_used_classes();
        let removed = eliminate(&run).removed.len();
        total_dead += dead;
        total_removed += removed;
        assert!(removed <= dead, "{}", b.name);
    }
    assert!(
        total_dead > 30,
        "suite should have a healthy dead population"
    );
    assert!(
        total_removed * 100 >= total_dead * 70,
        "only {total_removed}/{total_dead} dead members were eliminable"
    );
}
