//! §3.1 cross-crate invariant: analysis precision is monotone in
//! call-graph precision. A smaller (more precise) reachable set can only
//! *increase* the dead-member count, never decrease it:
//! dead(everything) ⊆ dead(CHA) ⊆ dead(RTA).

use dead_data_members::analysis::{AnalysisConfig, AnalysisPipeline, SizeofPolicy};
use dead_data_members::callgraph::Algorithm;
use std::collections::BTreeSet;

fn dead_set(source: &str, algorithm: Algorithm) -> BTreeSet<String> {
    let run = AnalysisPipeline::with_config(
        source,
        AnalysisConfig {
            assume_safe_downcasts: true,
            sizeof_policy: SizeofPolicy::Ignore,
            ..Default::default()
        },
        algorithm,
    )
    .expect("suite analyzes cleanly");
    run.report().dead_member_names().into_iter().collect()
}

#[test]
fn dead_sets_are_monotone_across_the_suite() {
    for b in dead_data_members::benchmarks::suite() {
        let everything = dead_set(b.source, Algorithm::Everything);
        let cha = dead_set(b.source, Algorithm::Cha);
        let rta = dead_set(b.source, Algorithm::Rta);
        assert!(
            everything.is_subset(&cha),
            "{}: dead(everything) ⊄ dead(CHA)",
            b.name
        );
        assert!(cha.is_subset(&rta), "{}: dead(CHA) ⊄ dead(RTA)", b.name);
    }
}

#[test]
fn reachability_is_antitone_across_the_suite() {
    use dead_data_members::callgraph::{CallGraph, CallGraphOptions};
    use dead_data_members::hierarchy::{MemberLookup, Program};

    for b in dead_data_members::benchmarks::suite() {
        let tu = dead_data_members::cppfront::parse(b.source).unwrap();
        let program = Program::build(&tu).unwrap();
        let lookup = MemberLookup::new(&program);
        let count = |alg| {
            CallGraph::build(
                &program,
                &lookup,
                &CallGraphOptions {
                    algorithm: alg,
                    ..Default::default()
                },
            )
            .unwrap()
            .reachable_count()
        };
        let everything = count(Algorithm::Everything);
        let cha = count(Algorithm::Cha);
        let rta = count(Algorithm::Rta);
        assert!(rta <= cha, "{}: RTA larger than CHA", b.name);
        assert!(cha <= everything, "{}: CHA larger than everything", b.name);
    }
}

#[test]
fn rta_beats_cha_when_a_subclass_is_never_instantiated() {
    // The §3.1 discussion: RTA prunes C::f when no C is ever created,
    // reclassifying its member as dead; CHA cannot. (C is also an unused
    // class, so the check goes through the raw liveness classification,
    // not the used-class-filtered report.)
    let source = r#"
        class A { public: virtual int f() { return m1; } int m1; };
        class B : public A { public: virtual int f() { return m2; } int m2; };
        class C : public A { public: virtual int f() { return m3; } int m3; };
        int main() { B b; A* ap = &b; return ap->f(); }
    "#;
    let m3_of = |algorithm| {
        let run = dead_data_members::analysis::AnalysisPipeline::with_config(
            source,
            Default::default(),
            algorithm,
        )
        .unwrap();
        let c = run.program().class_by_name("C").unwrap();
        let m3 = dead_data_members::hierarchy::MemberRef::new(c, 0);
        run.liveness().is_live(m3)
    };
    assert!(m3_of(Algorithm::Cha), "CHA keeps C::f reachable, m3 live");
    assert!(
        !m3_of(Algorithm::Rta),
        "RTA prunes C::f (C never instantiated), m3 dead"
    );
}

#[test]
fn pta_delivers_the_papers_section_31_improvement_on_figure_1() {
    // §3.1: "a simple alias/points-to analysis algorithm can determine
    // that pointer ap never points to a C object. This fact can be used
    // to exclude method C::f from the call graph, so that the reference
    // to C::mc1 can be disregarded, and data member C::mc1 can be marked
    // dead."
    let figure1 = "
        class N { public: int mn1; int mn2; };
        class A { public: virtual int f() { return ma1; } int ma1; int ma2; int ma3; };
        class B : public A { public: virtual int f() { return mb1; } int mb1; N mb2; int mb3; int mb4; };
        class C : public A { public: virtual int f() { return mc1; } int mc1; };
        int foo(int* x) { return (*x) + 1; }
        int main() {
            A a; B b; C c; A* ap;
            a.ma3 = b.mb3 + 1;
            int i = 10;
            if (i < 20) { ap = &a; } else { ap = &b; }
            return ap->f() + b.mb2.mn1 + foo(&b.mb4);
        }";
    let rta = dead_set(figure1, Algorithm::Rta);
    let pta = dead_set(figure1, Algorithm::Pta);
    assert!(
        !rta.contains("C::mc1"),
        "RTA conservatively keeps C::f reachable"
    );
    assert!(
        pta.contains("C::mc1"),
        "PTA proves ap never points to a C object: {pta:?}"
    );
    // Everything RTA finds is still found.
    assert!(rta.is_subset(&pta));
}

#[test]
fn pta_extends_the_monotone_chain_across_the_suite() {
    for b in dead_data_members::benchmarks::suite() {
        let rta = dead_set(b.source, Algorithm::Rta);
        let pta = dead_set(b.source, Algorithm::Pta);
        assert!(rta.is_subset(&pta), "{}: dead(RTA) ⊄ dead(PTA)", b.name);
    }
}
