//! The flight recorder's core contract: the deterministic event class
//! is byte-identical across worker counts, engines, and cache state —
//! the same discipline `Counters` already obeys — while turning the
//! recorder (and the metrics registry) on changes no analysis output.

use dead_data_members::analysis::{ProjectError, ProjectPipeline};
use dead_data_members::prelude::*;
use dead_data_members::telemetry::EventClass;
use std::path::PathBuf;

/// Every `.cpp` program bundled with the benchmark suite, in sorted order.
fn bundled_programs() -> Vec<(String, String)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/crates/benchmarks/programs");
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .expect("benchmark programs directory")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "cpp"))
        .collect();
    paths.sort();
    assert!(
        paths.len() >= 11,
        "expected the paper's eleven programs, found {}",
        paths.len()
    );
    paths
        .into_iter()
        .map(|p| {
            let name = p.file_stem().unwrap().to_string_lossy().into_owned();
            let source = std::fs::read_to_string(&p).expect("read benchmark program");
            (name, source)
        })
        .collect()
}

/// The committed multi-TU sample project, in sorted file order.
fn multi_tu_inputs() -> Vec<(String, String)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/crates/benchmarks/programs/multi");
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("multi-TU sample directory")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "cpp"))
        .collect();
    paths.sort();
    assert!(paths.len() >= 3, "multi-TU sample shrank");
    paths
        .into_iter()
        .map(|p| {
            let name = p.file_name().unwrap().to_string_lossy().into_owned();
            let source = std::fs::read_to_string(&p).expect("read multi TU");
            (name, source)
        })
        .collect()
}

/// Runs the single-file pipeline with the full recorder on and returns
/// (deterministic NDJSON, metrics JSON).
fn record_single(source: &str, jobs: usize, engine: Engine) -> (String, String) {
    let telemetry = Telemetry::recording();
    AnalysisPipeline::with_config_telemetry(
        source,
        AnalysisConfig::default(),
        Algorithm::Rta,
        jobs,
        engine,
        &telemetry,
    )
    .expect("pipeline");
    (
        telemetry.events_ndjson(Some(EventClass::Deterministic)),
        telemetry.metrics_json(),
    )
}

/// Runs the project pipeline with the full recorder on.
fn record_project(
    inputs: &[(String, String)],
    jobs: usize,
    engine: Engine,
    cache: Option<&std::path::Path>,
) -> Result<(Telemetry, ProjectPipeline), ProjectError> {
    let telemetry = Telemetry::recording();
    let pipeline = ProjectPipeline::run(
        inputs,
        AnalysisConfig::default(),
        Algorithm::Rta,
        jobs,
        engine,
        cache,
        &telemetry,
    )?;
    Ok((telemetry, pipeline))
}

fn temp_cache(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ddm_fr_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn det_stream_identical_across_jobs_and_engines_on_the_suite() {
    for (name, source) in bundled_programs() {
        let (reference, _) = record_single(&source, 1, Engine::Summary);
        assert!(
            reference.contains("\"event\":\"classification\""),
            "{name}: no classification event recorded"
        );
        for engine in [Engine::Walk, Engine::Summary] {
            for jobs in [1, 8] {
                let (stream, _) = record_single(&source, jobs, engine);
                assert_eq!(
                    stream, reference,
                    "{name}: det stream diverged at engine={engine} jobs={jobs}"
                );
            }
        }
    }
}

#[test]
fn histogram_bucket_counts_identical_across_jobs_and_engines() {
    // The registry only holds deterministic quantities in single-file
    // mode (round delta sizes, candidate-set sizes, liveness counts),
    // so the whole rendered document — histogram buckets included — is
    // pinned byte-for-byte.
    for (name, source) in bundled_programs() {
        let (_, reference) = record_single(&source, 1, Engine::Summary);
        assert!(
            reference.contains("callgraph/round_delta_fns"),
            "{name}: no round-delta histogram in metrics"
        );
        for engine in [Engine::Walk, Engine::Summary] {
            for jobs in [1, 8] {
                let (_, metrics) = record_single(&source, jobs, engine);
                assert_eq!(
                    metrics, reference,
                    "{name}: metrics diverged at engine={engine} jobs={jobs}"
                );
            }
        }
    }
}

#[test]
fn det_stream_identical_across_cache_states_on_the_suite() {
    // Cold/warm cache runs are observably different (probe outcomes are
    // observational-class), but the deterministic stream may not move:
    // the linked model is rebuilt from module records either way.
    for (name, source) in bundled_programs().into_iter().take(4) {
        let inputs = vec![(format!("{name}.cpp"), source)];
        let cache = temp_cache(&name);
        let (cold, _) = record_project(&inputs, 1, Engine::Summary, Some(&cache)).unwrap();
        let (warm, _) = record_project(&inputs, 1, Engine::Summary, Some(&cache)).unwrap();
        assert!(
            warm.events_ndjson(Some(EventClass::Observational))
                .contains("tu_cache_hit"),
            "{name}: warm run did not probe the cache"
        );
        assert_eq!(
            cold.events_ndjson(Some(EventClass::Deterministic)),
            warm.events_ndjson(Some(EventClass::Deterministic)),
            "{name}: det stream moved between cold and warm cache"
        );
        let _ = std::fs::remove_dir_all(&cache);
    }
}

#[test]
fn multi_tu_det_stream_identical_across_jobs_engines_and_cache() {
    let inputs = multi_tu_inputs();
    let cache = temp_cache("multi");
    let (cold, _) = record_project(&inputs, 1, Engine::Summary, Some(&cache)).unwrap();
    let reference = cold.events_ndjson(Some(EventClass::Deterministic));
    assert!(
        reference.contains("\"event\":\"link_done\""),
        "no link event in the project det stream"
    );
    // Warm cache, both worker counts, then the cacheless walk engine.
    for jobs in [1, 8] {
        let (warm, _) = record_project(&inputs, jobs, Engine::Summary, Some(&cache)).unwrap();
        assert_eq!(
            warm.events_ndjson(Some(EventClass::Deterministic)),
            reference,
            "warm summary det stream diverged at jobs={jobs}"
        );
    }
    for jobs in [1, 8] {
        let (walk, _) = record_project(&inputs, jobs, Engine::Walk, None).unwrap();
        assert_eq!(
            walk.events_ndjson(Some(EventClass::Deterministic)),
            reference,
            "walk det stream diverged at jobs={jobs}"
        );
    }
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn tu_summary_size_histogram_is_cache_invariant() {
    // The summary-size histogram is recorded for every module in input
    // order, not just the ones written back, so its bucket counts are a
    // deterministic quantity even though cache hit/miss counters move.
    let inputs = multi_tu_inputs();
    let cache = temp_cache("hist");
    let hist_line = |metrics: &str| -> String {
        metrics
            .lines()
            .find(|l| l.contains("frontend/tu_summary_bytes"))
            .expect("summary-size histogram present")
            .to_string()
    };
    let (cold, _) = record_project(&inputs, 1, Engine::Summary, Some(&cache)).unwrap();
    let (warm, _) = record_project(&inputs, 1, Engine::Summary, Some(&cache)).unwrap();
    assert!(warm.stats().tu_cache_hits > 0, "warm run must hit");
    assert_eq!(
        hist_line(&cold.metrics_json()),
        hist_line(&warm.metrics_json()),
        "summary-size buckets moved between cold and warm"
    );
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn recording_changes_no_output_and_no_counters() {
    for (name, source) in bundled_programs() {
        let plain = AnalysisPipeline::with_config_engine(
            &source,
            AnalysisConfig::default(),
            Algorithm::Rta,
            2,
            Engine::Summary,
        )
        .expect("pipeline");
        let baseline = Telemetry::enabled();
        AnalysisPipeline::with_config_telemetry(
            &source,
            AnalysisConfig::default(),
            Algorithm::Rta,
            2,
            Engine::Summary,
            &baseline,
        )
        .expect("pipeline");
        let recording = Telemetry::recording();
        let observed = AnalysisPipeline::with_config_telemetry(
            &source,
            AnalysisConfig::default(),
            Algorithm::Rta,
            2,
            Engine::Summary,
            &recording,
        )
        .expect("pipeline");
        assert_eq!(
            plain.report().to_string(),
            observed.report().to_string(),
            "{name}: the recorder changed the report"
        );
        assert_eq!(
            plain.liveness(),
            observed.liveness(),
            "{name}: the recorder changed the liveness"
        );
        assert_eq!(
            baseline.counters(),
            recording.counters(),
            "{name}: the recorder changed the deterministic counters"
        );
        // `--explain` reads program + callgraph + liveness, all compared
        // above via liveness/report; spot-check the rendered text too.
        let (_, class) = plain.program().classes().next().expect("a class");
        if let Some(member) = class.members.first() {
            let spec = format!("{}::{}", class.name, member.name);
            assert_eq!(
                explain(plain.program(), plain.callgraph(), plain.liveness(), &spec),
                explain(
                    observed.program(),
                    observed.callgraph(),
                    observed.liveness(),
                    &spec
                ),
                "{name}: the recorder changed --explain for {spec}"
            );
        }
    }
}

#[test]
fn chrome_trace_names_lanes_and_logs_cache_probes() {
    let inputs = multi_tu_inputs();
    let cache = temp_cache("trace");
    let (cold, _) = record_project(&inputs, 2, Engine::Summary, Some(&cache)).unwrap();
    let trace = cold.chrome_trace_json();
    dead_data_members::telemetry::json::validate(&trace)
        .unwrap_or_else(|e| panic!("trace is not valid JSON: {e}"));
    assert!(trace.contains("\"process_name\""), "no process_name metadata");
    assert!(trace.contains("\"thread_name\""), "no thread_name metadata");
    assert!(
        trace.contains("tu_cache_miss"),
        "cold project trace lacks cache-probe instants"
    );
    let (warm, _) = record_project(&inputs, 2, Engine::Summary, Some(&cache)).unwrap();
    assert!(
        warm.chrome_trace_json().contains("tu_cache_hit"),
        "warm project trace lacks cache-hit instants"
    );
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn event_classes_are_cleanly_tagged_and_filterable() {
    let (_, source) = &bundled_programs()[0];
    let telemetry = Telemetry::recording();
    AnalysisPipeline::with_config_telemetry(
        source,
        AnalysisConfig::default(),
        Algorithm::Rta,
        1,
        Engine::Summary,
        &telemetry,
    )
    .expect("pipeline");
    let det = telemetry.events_ndjson(Some(EventClass::Deterministic));
    let obs = telemetry.events_ndjson(Some(EventClass::Observational));
    let all = telemetry.events_ndjson(None);
    assert!(det.lines().all(|l| l.contains("\"class\":\"det\"")), "{det}");
    assert!(
        det.lines().all(|l| !l.contains("\"ts_us\"")),
        "a deterministic event carries a timestamp:\n{det}"
    );
    assert!(obs.lines().all(|l| l.contains("\"class\":\"obs\"")), "{obs}");
    assert_eq!(all.lines().count(), det.lines().count() + obs.lines().count());
    for line in all.lines() {
        dead_data_members::telemetry::json::validate(line)
            .unwrap_or_else(|e| panic!("event line is not valid JSON: {e}\n{line}"));
    }
}
