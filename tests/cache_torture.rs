//! Cache robustness torture: the persistent TU-summary cache and the
//! analysis snapshot must survive crashes mid-write (fault injection
//! via `DDM_CACHE_FAULT`) and two processes sharing one `--cache-dir`
//! — in every case ending with output byte-identical to a cacheless
//! cold run. The atomic temp-then-rename publish protocol guarantees
//! no reader ever sees a torn `tu-<hash>.json` or `analysis.snap`;
//! dangling temps are swept on next open *once they are older than the
//! 60-second age gate* (a younger temp may belong to a live racing
//! writer and must survive), and a rejected snapshot (torn, version
//! skew) degrades to a summary-cache-only warm start.

use std::path::PathBuf;
use std::process::Command;

fn ddm() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ddm"))
}

/// The committed three-TU fixture project.
fn multi_fixture() -> Vec<PathBuf> {
    let dir = PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/crates/benchmarks/programs/multi"
    ));
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("fixture dir")
        .map(|e| e.expect("entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "cpp"))
        .collect();
    files.sort();
    assert!(files.len() >= 3, "expected the multi-TU fixture in {dir:?}");
    files
}

/// Temp cache directory removed on drop, even if the test panics.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("ddm-torture-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn run(cache: Option<&PathBuf>, fault: Option<&str>) -> std::process::Output {
    let mut cmd = ddm();
    for f in multi_fixture() {
        cmd.arg(f);
    }
    cmd.arg("--engine").arg("summary");
    if let Some(dir) = cache {
        cmd.arg("--cache-dir").arg(dir);
    }
    match fault {
        Some(f) => cmd.env("DDM_CACHE_FAULT", f),
        None => cmd.env_remove("DDM_CACHE_FAULT"),
    };
    cmd.output().expect("run ddm")
}

/// Rewinds the mtime of every dangling temp in `dir` past the sweeper's
/// 60-second age gate — standing in for a writer that died long ago, so
/// the next open is allowed to sweep what it left behind.
fn age_temps(dir: &PathBuf) {
    let old = std::time::SystemTime::now() - std::time::Duration::from_secs(120);
    for entry in std::fs::read_dir(dir).expect("cache dir") {
        let path = entry.expect("entry").path();
        let name = path.file_name().map(|n| n.to_string_lossy().into_owned());
        if name.is_some_and(|n| n.contains(".tmp.")) {
            std::fs::File::options()
                .write(true)
                .open(&path)
                .expect("open temp")
                .set_modified(old)
                .expect("age temp");
        }
    }
}

fn cache_files(dir: &PathBuf, pred: impl Fn(&str) -> bool) -> Vec<String> {
    match std::fs::read_dir(dir) {
        Ok(entries) => entries
            .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
            .filter(|n| pred(n))
            .collect(),
        Err(_) => Vec::new(),
    }
}

/// Kill-mid-write: the faulted process aborts halfway through writing
/// its first cache entry. The half-written bytes must be confined to a
/// temp file — never a published `tu-<hash>.json` — and the next run
/// over the same directory must sweep the temp, recompute, and print
/// the byte-identical report to a cacheless cold run.
#[test]
fn kill_mid_write_leaves_no_torn_entry_and_recovers_to_cold() {
    let cacheless = run(None, None);
    assert!(cacheless.status.success(), "{cacheless:?}");

    let scratch = Scratch::new("midwrite");
    let faulted = run(Some(&scratch.0), Some("kill-mid-write"));
    assert!(!faulted.status.success(), "fault must abort the process");

    let published = cache_files(&scratch.0, |n| n.ends_with(".json"));
    assert!(
        published.is_empty(),
        "a torn entry was published: {published:?}"
    );
    let temps = cache_files(&scratch.0, |n| n.contains(".json.tmp."));
    assert!(!temps.is_empty(), "the fault did not fire inside a write");

    age_temps(&scratch.0);
    let recovered = run(Some(&scratch.0), None);
    assert!(recovered.status.success(), "{recovered:?}");
    assert_eq!(
        recovered.stdout, cacheless.stdout,
        "recovery after kill-mid-write must match the cacheless cold report"
    );
    assert!(
        cache_files(&scratch.0, |n| n.contains(".json.tmp.")).is_empty(),
        "dangling temp files were not swept on next open"
    );
}

/// Kill-pre-rename: the process aborts after fully writing the temp
/// file but before the atomic rename — the published-entry set must be
/// empty, and recovery identical to cold.
#[test]
fn kill_pre_rename_recovers_byte_identical_to_cold() {
    let cacheless = run(None, None);
    assert!(cacheless.status.success(), "{cacheless:?}");

    let scratch = Scratch::new("prerename");
    let faulted = run(Some(&scratch.0), Some("kill-pre-rename"));
    assert!(!faulted.status.success(), "fault must abort the process");
    assert!(
        cache_files(&scratch.0, |n| n.ends_with(".json")).is_empty(),
        "an entry was published despite aborting before rename"
    );

    age_temps(&scratch.0);
    let recovered = run(Some(&scratch.0), None);
    assert!(recovered.status.success(), "{recovered:?}");
    assert_eq!(recovered.stdout, cacheless.stdout);
    assert!(
        cache_files(&scratch.0, |n| n.contains(".json.tmp.")).is_empty(),
        "dangling temp files were not swept"
    );

    // The swept-and-recomputed cache must now serve a warm run with the
    // same bytes again.
    let warm = run(Some(&scratch.0), None);
    assert!(warm.status.success(), "{warm:?}");
    assert_eq!(warm.stdout, cacheless.stdout);
}

/// Two processes race on one `--cache-dir`: both must succeed with the
/// cacheless report, and the directory must end in a state that serves
/// a warm run with those same bytes.
#[test]
fn concurrent_writers_sharing_one_cache_dir_agree_with_cold() {
    let cacheless = run(None, None);
    assert!(cacheless.status.success(), "{cacheless:?}");

    let scratch = Scratch::new("concurrent");
    for round in 0..3 {
        // Fresh directory each round so both processes genuinely race
        // on cold writes rather than hitting a warm cache.
        let _ = std::fs::remove_dir_all(&scratch.0);
        let spawn = || {
            let mut cmd = ddm();
            for f in multi_fixture() {
                cmd.arg(f);
            }
            cmd.arg("--engine")
                .arg("summary")
                .arg("--cache-dir")
                .arg(&scratch.0)
                .env_remove("DDM_CACHE_FAULT")
                .stdout(std::process::Stdio::piped())
                .stderr(std::process::Stdio::piped())
                .spawn()
                .expect("spawn ddm")
        };
        let a = spawn();
        let b = spawn();
        let a = a.wait_with_output().expect("wait a");
        let b = b.wait_with_output().expect("wait b");
        assert!(a.status.success(), "round {round} writer A: {a:?}");
        assert!(b.status.success(), "round {round} writer B: {b:?}");
        assert_eq!(a.stdout, cacheless.stdout, "round {round} writer A drifted");
        assert_eq!(b.stdout, cacheless.stdout, "round {round} writer B drifted");
    }

    let warm = run(Some(&scratch.0), None);
    assert!(warm.status.success(), "{warm:?}");
    assert_eq!(warm.stdout, cacheless.stdout, "warm after race drifted");
}

/// Snapshot kill-mid-write: the process aborts halfway through writing
/// `analysis.snap.tmp.<pid>`. No snapshot may be published, the
/// summary-cache entries written earlier in the same run stay valid,
/// and the next run warm-starts from them with the byte-identical
/// cacheless report before sweeping the dangling snapshot temp.
#[test]
fn snapshot_kill_mid_write_falls_back_to_summary_cache() {
    let cacheless = run(None, None);
    assert!(cacheless.status.success(), "{cacheless:?}");

    let scratch = Scratch::new("snapmid");
    let faulted = run(Some(&scratch.0), Some("snap-kill-mid-write"));
    assert!(!faulted.status.success(), "fault must abort the process");
    assert!(
        cache_files(&scratch.0, |n| n == "analysis.snap").is_empty(),
        "a torn snapshot was published"
    );
    assert!(
        !cache_files(&scratch.0, |n| n.starts_with("analysis.snap.tmp.")).is_empty(),
        "the fault did not fire inside the snapshot write"
    );
    let summaries = cache_files(&scratch.0, |n| n.starts_with("tu-") && n.ends_with(".json"));
    assert_eq!(
        summaries.len(),
        multi_fixture().len(),
        "summary entries published before the snapshot must survive"
    );

    age_temps(&scratch.0);
    let recovered = run(Some(&scratch.0), None);
    assert!(recovered.status.success(), "{recovered:?}");
    assert_eq!(
        recovered.stdout, cacheless.stdout,
        "summary-cache-only warm start must match the cacheless report"
    );
    assert!(
        cache_files(&scratch.0, |n| n.contains(".tmp.")).is_empty(),
        "dangling snapshot temp was not swept"
    );

    // The recovery run republished a snapshot; prove it is wholly
    // readable and serves the next run.
    let bytes = std::fs::read(scratch.0.join("analysis.snap")).expect("republished snapshot");
    dead_data_members::analysis::AnalysisSnapshot::decode(&bytes).expect("snapshot decodes");
    let warm = run(Some(&scratch.0), None);
    assert!(warm.status.success(), "{warm:?}");
    assert_eq!(warm.stdout, cacheless.stdout);
}

/// Version skew: a snapshot from a different format version is
/// rejected, the run falls back to the summary cache alone, prints the
/// byte-identical cacheless report, and republishes a current-version
/// snapshot.
#[test]
fn snapshot_version_skew_falls_back_to_summary_cache() {
    let cacheless = run(None, None);
    assert!(cacheless.status.success(), "{cacheless:?}");

    let scratch = Scratch::new("snapskew");
    let cold = run(Some(&scratch.0), None);
    assert!(cold.status.success(), "{cold:?}");

    let snap_path = scratch.0.join("analysis.snap");
    let mut bytes = std::fs::read(&snap_path).expect("published snapshot");
    // Bump the format version field (bytes 8..12, little-endian) to
    // simulate a snapshot left behind by a newer build.
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    bytes[8..12].copy_from_slice(&(version + 1).to_le_bytes());
    std::fs::write(&snap_path, &bytes).expect("plant skewed snapshot");

    let skewed = run(Some(&scratch.0), None);
    assert!(skewed.status.success(), "{skewed:?}");
    assert_eq!(
        skewed.stdout, cacheless.stdout,
        "version-skew fallback must match the cacheless report"
    );

    let republished = std::fs::read(&snap_path).expect("republished snapshot");
    dead_data_members::analysis::AnalysisSnapshot::decode(&republished)
        .expect("skewed snapshot must be replaced by a readable one");
}

/// Two processes race on one `--cache-dir`, both publishing snapshots.
/// Whatever interleaving happens, `analysis.snap` must never be torn:
/// it either decodes cleanly or does not exist, and warm runs agree
/// with the cacheless report.
#[test]
fn concurrent_writers_never_publish_a_torn_snapshot() {
    let cacheless = run(None, None);
    assert!(cacheless.status.success(), "{cacheless:?}");

    let scratch = Scratch::new("snaprace");
    for round in 0..3 {
        let _ = std::fs::remove_dir_all(&scratch.0);
        let spawn = || {
            let mut cmd = ddm();
            for f in multi_fixture() {
                cmd.arg(f);
            }
            cmd.arg("--engine")
                .arg("summary")
                .arg("--cache-dir")
                .arg(&scratch.0)
                .env_remove("DDM_CACHE_FAULT")
                .stdout(std::process::Stdio::piped())
                .stderr(std::process::Stdio::piped())
                .spawn()
                .expect("spawn ddm")
        };
        let a = spawn().wait_with_output().expect("wait a");
        let b = spawn().wait_with_output().expect("wait b");
        assert!(a.status.success(), "round {round} writer A: {a:?}");
        assert!(b.status.success(), "round {round} writer B: {b:?}");

        let bytes = std::fs::read(scratch.0.join("analysis.snap"))
            .expect("a snapshot must be published after both writers finish");
        dead_data_members::analysis::AnalysisSnapshot::decode(&bytes)
            .unwrap_or_else(|e| panic!("round {round}: torn snapshot: {e}"));

        let warm = run(Some(&scratch.0), None);
        assert!(warm.status.success(), "{warm:?}");
        assert_eq!(
            warm.stdout, cacheless.stdout,
            "round {round}: warm run after the race drifted"
        );
    }
}

/// A dangling temp file from a dead writer (any PID, any content) is
/// swept the next time the cache is opened — once it is old enough to
/// be past the age gate.
#[test]
fn stale_temps_from_dead_writers_are_swept_on_open() {
    let scratch = Scratch::new("sweep");
    std::fs::create_dir_all(&scratch.0).expect("mkdir");
    let stale = scratch.0.join("tu-deadbeefdeadbeef.json.tmp.99999");
    std::fs::write(&stale, "{half-written").expect("plant stale temp");
    age_temps(&scratch.0);

    let out = run(Some(&scratch.0), None);
    assert!(out.status.success(), "{out:?}");
    assert!(!stale.exists(), "stale temp survived a cache open");
}

/// A *fresh* temp may belong to a racing writer that is still alive and
/// about to rename it into place — a concurrent open must leave it
/// untouched. (Sweeping it used to be a live-process race in long
/// sessions: serve-mode rebuilds probe the cache while one-shot runs
/// publish into the same directory.)
#[test]
fn fresh_temps_from_racing_writers_survive_a_probe() {
    let scratch = Scratch::new("freshtemp");
    std::fs::create_dir_all(&scratch.0).expect("mkdir");
    let fresh = scratch.0.join("tu-cafecafecafecafe.json.tmp.88888");
    std::fs::write(&fresh, "{mid-write by a live racer").expect("plant fresh temp");

    let out = run(Some(&scratch.0), None);
    assert!(out.status.success(), "{out:?}");
    assert!(
        fresh.exists(),
        "a racing writer's fresh temp was swept by the probe"
    );
}
