//! Cache robustness torture: the persistent TU-summary cache must
//! survive crashes mid-write (fault injection via `DDM_CACHE_FAULT`)
//! and two processes sharing one `--cache-dir` — in every case ending
//! with output byte-identical to a cacheless cold run. The atomic
//! temp-then-rename publish protocol guarantees no reader ever sees a
//! torn `tu-<hash>.json`; dangling temps are swept on next open.

use std::path::PathBuf;
use std::process::Command;

fn ddm() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ddm"))
}

/// The committed three-TU fixture project.
fn multi_fixture() -> Vec<PathBuf> {
    let dir = PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/crates/benchmarks/programs/multi"
    ));
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("fixture dir")
        .map(|e| e.expect("entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "cpp"))
        .collect();
    files.sort();
    assert!(files.len() >= 3, "expected the multi-TU fixture in {dir:?}");
    files
}

/// Temp cache directory removed on drop, even if the test panics.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("ddm-torture-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn run(cache: Option<&PathBuf>, fault: Option<&str>) -> std::process::Output {
    let mut cmd = ddm();
    for f in multi_fixture() {
        cmd.arg(f);
    }
    cmd.arg("--engine").arg("summary");
    if let Some(dir) = cache {
        cmd.arg("--cache-dir").arg(dir);
    }
    match fault {
        Some(f) => cmd.env("DDM_CACHE_FAULT", f),
        None => cmd.env_remove("DDM_CACHE_FAULT"),
    };
    cmd.output().expect("run ddm")
}

fn cache_files(dir: &PathBuf, pred: impl Fn(&str) -> bool) -> Vec<String> {
    match std::fs::read_dir(dir) {
        Ok(entries) => entries
            .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
            .filter(|n| pred(n))
            .collect(),
        Err(_) => Vec::new(),
    }
}

/// Kill-mid-write: the faulted process aborts halfway through writing
/// its first cache entry. The half-written bytes must be confined to a
/// temp file — never a published `tu-<hash>.json` — and the next run
/// over the same directory must sweep the temp, recompute, and print
/// the byte-identical report to a cacheless cold run.
#[test]
fn kill_mid_write_leaves_no_torn_entry_and_recovers_to_cold() {
    let cacheless = run(None, None);
    assert!(cacheless.status.success(), "{cacheless:?}");

    let scratch = Scratch::new("midwrite");
    let faulted = run(Some(&scratch.0), Some("kill-mid-write"));
    assert!(!faulted.status.success(), "fault must abort the process");

    let published = cache_files(&scratch.0, |n| n.ends_with(".json"));
    assert!(
        published.is_empty(),
        "a torn entry was published: {published:?}"
    );
    let temps = cache_files(&scratch.0, |n| n.contains(".json.tmp."));
    assert!(!temps.is_empty(), "the fault did not fire inside a write");

    let recovered = run(Some(&scratch.0), None);
    assert!(recovered.status.success(), "{recovered:?}");
    assert_eq!(
        recovered.stdout, cacheless.stdout,
        "recovery after kill-mid-write must match the cacheless cold report"
    );
    assert!(
        cache_files(&scratch.0, |n| n.contains(".json.tmp.")).is_empty(),
        "dangling temp files were not swept on next open"
    );
}

/// Kill-pre-rename: the process aborts after fully writing the temp
/// file but before the atomic rename — the published-entry set must be
/// empty, and recovery identical to cold.
#[test]
fn kill_pre_rename_recovers_byte_identical_to_cold() {
    let cacheless = run(None, None);
    assert!(cacheless.status.success(), "{cacheless:?}");

    let scratch = Scratch::new("prerename");
    let faulted = run(Some(&scratch.0), Some("kill-pre-rename"));
    assert!(!faulted.status.success(), "fault must abort the process");
    assert!(
        cache_files(&scratch.0, |n| n.ends_with(".json")).is_empty(),
        "an entry was published despite aborting before rename"
    );

    let recovered = run(Some(&scratch.0), None);
    assert!(recovered.status.success(), "{recovered:?}");
    assert_eq!(recovered.stdout, cacheless.stdout);
    assert!(
        cache_files(&scratch.0, |n| n.contains(".json.tmp.")).is_empty(),
        "dangling temp files were not swept"
    );

    // The swept-and-recomputed cache must now serve a warm run with the
    // same bytes again.
    let warm = run(Some(&scratch.0), None);
    assert!(warm.status.success(), "{warm:?}");
    assert_eq!(warm.stdout, cacheless.stdout);
}

/// Two processes race on one `--cache-dir`: both must succeed with the
/// cacheless report, and the directory must end in a state that serves
/// a warm run with those same bytes.
#[test]
fn concurrent_writers_sharing_one_cache_dir_agree_with_cold() {
    let cacheless = run(None, None);
    assert!(cacheless.status.success(), "{cacheless:?}");

    let scratch = Scratch::new("concurrent");
    for round in 0..3 {
        // Fresh directory each round so both processes genuinely race
        // on cold writes rather than hitting a warm cache.
        let _ = std::fs::remove_dir_all(&scratch.0);
        let spawn = || {
            let mut cmd = ddm();
            for f in multi_fixture() {
                cmd.arg(f);
            }
            cmd.arg("--engine")
                .arg("summary")
                .arg("--cache-dir")
                .arg(&scratch.0)
                .env_remove("DDM_CACHE_FAULT")
                .stdout(std::process::Stdio::piped())
                .stderr(std::process::Stdio::piped())
                .spawn()
                .expect("spawn ddm")
        };
        let a = spawn();
        let b = spawn();
        let a = a.wait_with_output().expect("wait a");
        let b = b.wait_with_output().expect("wait b");
        assert!(a.status.success(), "round {round} writer A: {a:?}");
        assert!(b.status.success(), "round {round} writer B: {b:?}");
        assert_eq!(a.stdout, cacheless.stdout, "round {round} writer A drifted");
        assert_eq!(b.stdout, cacheless.stdout, "round {round} writer B drifted");
    }

    let warm = run(Some(&scratch.0), None);
    assert!(warm.status.success(), "{warm:?}");
    assert_eq!(warm.stdout, cacheless.stdout, "warm after race drifted");
}

/// A dangling temp file from a dead writer (any PID, any content) is
/// swept the next time the cache is opened.
#[test]
fn stale_temps_from_dead_writers_are_swept_on_open() {
    let scratch = Scratch::new("sweep");
    std::fs::create_dir_all(&scratch.0).expect("mkdir");
    let stale = scratch.0.join("tu-deadbeefdeadbeef.json.tmp.99999");
    std::fs::write(&stale, "{half-written").expect("plant stale temp");

    let out = run(Some(&scratch.0), None);
    assert!(out.status.success(), "{out:?}");
    assert!(!stale.exists(), "stale temp survived a cache open");
}
