//! Differential test harness: the sharded analysis engine must be
//! bit-identical to the sequential reference.
//!
//! For every program bundled under `crates/benchmarks/programs/`, running
//! the pipeline with 1, 2, and 8 workers must yield the same [`Liveness`]
//! (live set, unclassifiable set, and recorded reasons) and byte-identical
//! rendered [`Report`] text. Batch mode (`run_suite`) must likewise be
//! invariant in its own worker count.

use dead_data_members::prelude::*;

/// Every `.cpp` program shipped with the benchmark suite, in a fixed
/// (sorted) order, read from the source tree.
fn bundled_programs() -> Vec<(String, String)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/crates/benchmarks/programs");
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .expect("benchmark programs directory")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "cpp"))
        .collect();
    paths.sort();
    assert!(
        paths.len() >= 11,
        "expected the paper's eleven programs, found {}",
        paths.len()
    );
    paths
        .into_iter()
        .map(|p| {
            let name = p.file_stem().unwrap().to_string_lossy().into_owned();
            let source = std::fs::read_to_string(&p).expect("readable program");
            (name, source)
        })
        .collect()
}

/// The suite's analysis configuration (down-casts verified safe,
/// `sizeof` ignorable — matching `Benchmark::analyze`).
fn suite_config() -> AnalysisConfig {
    AnalysisConfig {
        assume_safe_downcasts: true,
        sizeof_policy: SizeofPolicy::Ignore,
        ..Default::default()
    }
}

#[test]
fn parallel_liveness_and_report_are_bit_identical_for_all_programs() {
    for (name, source) in bundled_programs() {
        let sequential =
            AnalysisPipeline::with_config_jobs(&source, suite_config(), Algorithm::Rta, 1)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
        let report_1 = sequential.report().to_string();
        for jobs in [2usize, 8] {
            let parallel =
                AnalysisPipeline::with_config_jobs(&source, suite_config(), Algorithm::Rta, jobs)
                    .unwrap_or_else(|e| panic!("{name} jobs={jobs}: {e}"));
            assert_eq!(
                sequential.liveness(),
                parallel.liveness(),
                "{name}: liveness diverged at jobs={jobs}"
            );
            assert_eq!(
                report_1,
                parallel.report().to_string(),
                "{name}: rendered report diverged at jobs={jobs}"
            );
        }
    }
}

#[test]
fn parallel_determinism_holds_for_every_callgraph_algorithm() {
    // Shard boundaries depend on the reachable set, which differs per
    // call-graph builder; each must stay deterministic.
    for algorithm in [
        Algorithm::Everything,
        Algorithm::Cha,
        Algorithm::Rta,
        Algorithm::Pta,
    ] {
        for (name, source) in bundled_programs() {
            let sequential =
                AnalysisPipeline::with_config_jobs(&source, suite_config(), algorithm, 1)
                    .unwrap_or_else(|e| panic!("{name}: {e}"));
            let parallel =
                AnalysisPipeline::with_config_jobs(&source, suite_config(), algorithm, 8)
                    .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(
                sequential.liveness(),
                parallel.liveness(),
                "{name}: {algorithm} diverged under sharding"
            );
        }
    }
}

#[test]
fn repeated_parallel_runs_are_self_consistent() {
    // Thread scheduling must not leak into results: three runs at the
    // same worker count render identical reports.
    let (name, source) = &bundled_programs()[0];
    let runs: Vec<String> = (0..3)
        .map(|_| {
            AnalysisPipeline::with_config_jobs(source, suite_config(), Algorithm::Rta, 8)
                .unwrap_or_else(|e| panic!("{name}: {e}"))
                .report()
                .to_string()
        })
        .collect();
    assert_eq!(runs[0], runs[1]);
    assert_eq!(runs[1], runs[2]);
}

#[test]
fn batch_suite_is_invariant_in_its_worker_count() {
    let inputs = bundled_programs();
    let render = |jobs: usize| -> Vec<(String, String)> {
        AnalysisPipeline::run_suite(&inputs, &suite_config(), Algorithm::Rta, jobs)
            .into_iter()
            .map(|(name, run)| {
                let run = run.unwrap_or_else(|e| panic!("{name}: {e}"));
                (name, run.report().to_string())
            })
            .collect()
    };
    let one = render(1);
    assert_eq!(one, render(2));
    assert_eq!(one, render(8));
    // And the batch answers agree with individually constructed runs.
    for (name, report) in &one {
        let source = &inputs.iter().find(|(n, _)| n == name).unwrap().1;
        let solo = AnalysisPipeline::with_config(source, suite_config(), Algorithm::Rta)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(&solo.report().to_string(), report, "{name}");
    }
}
