//! Property-based tests over generated programs.
//!
//! The central property is the *soundness oracle*: for any program the
//! generator emits, any data member the interpreter observes being read
//! (or address-taken) during execution must be classified live by the
//! static analysis. This ties together every crate in the workspace:
//! parser → model → call graph → analysis vs. interpreter ground truth.

use dead_data_members::benchmarks::generator::{generate, GeneratorConfig};
use dead_data_members::prelude::*;
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = GeneratorConfig> {
    (1usize..8, 1usize..6, 1usize..4, 0usize..6, 1usize..8).prop_map(
        |(classes, members, methods, stmts, objects)| GeneratorConfig {
            classes,
            members_per_class: members,
            methods_per_class: methods,
            stmts_per_method: stmts,
            objects_in_main: objects,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_programs_are_accepted_end_to_end(config in arb_config(), seed in 0u64..10_000) {
        let src = generate(&config, seed);
        let run = AnalysisPipeline::from_source(&src)
            .unwrap_or_else(|e| panic!("pipeline failed: {e}\n{src}"));
        let exec = Interpreter::new(run.program())
            .run(&RunConfig::default())
            .unwrap_or_else(|e| panic!("execution failed: {e}\n{src}"));
        prop_assert!(exec.steps > 0);
    }

    #[test]
    fn analysis_is_sound_against_the_interpreter(config in arb_config(), seed in 0u64..10_000) {
        let src = generate(&config, seed);
        let run = AnalysisPipeline::from_source(&src).expect("pipeline");
        let exec = Interpreter::new(run.program())
            .run(&RunConfig::default())
            .expect("run");
        for m in &exec.members_observed {
            prop_assert!(
                run.liveness().is_live(*m),
                "member {m} observed at run time but statically dead\n{src}"
            );
        }
    }

    #[test]
    fn pta_refinement_is_also_sound(config in arb_config(), seed in 0u64..10_000) {
        // The §3.1 points-to refinement prunes dispatch targets; it must
        // never prune one the interpreter actually reaches.
        let src = generate(&config, seed);
        let run = AnalysisPipeline::with_config(&src, Default::default(), Algorithm::Pta)
            .expect("pipeline");
        let exec = Interpreter::new(run.program())
            .run(&RunConfig::default())
            .expect("run");
        for m in &exec.members_observed {
            prop_assert!(
                run.liveness().is_live(*m),
                "PTA: member {m} observed at run time but statically dead\n{src}"
            );
        }
    }

    #[test]
    fn pretty_printer_round_trips_generated_programs(config in arb_config(), seed in 0u64..10_000) {
        let src = generate(&config, seed);
        let tu1 = dead_data_members::cppfront::parse(&src).expect("parse");
        let printed = dead_data_members::cppfront::print_unit(&tu1);
        let tu2 = dead_data_members::cppfront::parse(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        // The printer must be a fixpoint, and structure must be preserved.
        prop_assert_eq!(&printed, &dead_data_members::cppfront::print_unit(&tu2));
        prop_assert_eq!(tu1.classes.len(), tu2.classes.len());
        prop_assert_eq!(tu1.data_member_count(), tu2.data_member_count());
    }

    #[test]
    fn layout_invariants(config in arb_config(), seed in 0u64..10_000) {
        let src = generate(&config, seed);
        let tu = dead_data_members::cppfront::parse(&src).expect("parse");
        let program = Program::build(&tu).expect("sema");
        let layouts = LayoutEngine::new(&program);
        for (cid, info) in program.classes() {
            let layout = layouts.layout(cid);
            prop_assert!(layout.size >= 1, "{}", info.name);
            prop_assert!(layout.align.is_power_of_two());
            prop_assert_eq!(layout.size % layout.align, 0, "size must honor alignment");
            // Field slots are disjoint and inside the object.
            let mut slots: Vec<_> = layout.fields.clone();
            slots.sort_by_key(|f| f.offset);
            for w in slots.windows(2) {
                prop_assert!(
                    w[0].offset + w[0].size <= w[1].offset,
                    "{}: overlapping fields",
                    info.name
                );
            }
            if let Some(last) = slots.last() {
                prop_assert!(last.offset + last.size <= layout.size);
            }
            // The trimmed size can never exceed the full size.
            let all = layout.bytes_where(|_| true);
            prop_assert!(all <= layout.size);
        }
    }

    #[test]
    fn liveness_is_monotone_in_callgraph_precision(config in arb_config(), seed in 0u64..10_000) {
        let src = generate(&config, seed);
        let dead = |alg| {
            let run = AnalysisPipeline::with_config(&src, Default::default(), alg).expect("pipeline");
            run.report().dead_member_names().len()
        };
        let everything = dead(Algorithm::Everything);
        let cha = dead(Algorithm::Cha);
        let rta = dead(Algorithm::Rta);
        prop_assert!(everything <= cha && cha <= rta, "{src}");
    }

    #[test]
    fn profile_is_consistent_for_generated_programs(config in arb_config(), seed in 0u64..10_000) {
        use dead_data_members::dynamic::profile_trace;
        let src = generate(&config, seed);
        let run = AnalysisPipeline::from_source(&src).expect("pipeline");
        let exec = Interpreter::new(run.program())
            .run(&RunConfig::default())
            .expect("run");
        let p = profile_trace(run.program(), &exec.trace, run.liveness());
        prop_assert!(p.dead_member_space <= p.object_space);
        prop_assert!(p.high_water_mark <= p.object_space);
        prop_assert!(p.high_water_mark_without_dead <= p.high_water_mark);
    }
}
