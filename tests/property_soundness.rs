//! Property-based tests over generated programs.
//!
//! The central property is the *soundness oracle*: for any program the
//! generator emits, any data member the interpreter observes being read
//! (or address-taken) during execution must be classified live by the
//! static analysis. This ties together every crate in the workspace:
//! parser → model → call graph → analysis vs. interpreter ground truth.
//!
//! The cases are drawn with the workspace's own seeded PRNG rather than
//! an external property-testing crate (the build environment is
//! offline), so every run exercises the identical deterministic sweep.

use dead_data_members::benchmarks::generator::{generate, GeneratorConfig};
use dead_data_members::benchmarks::rng::Rng;
use dead_data_members::prelude::*;

/// Deterministic replacement for a proptest strategy: `n` generator
/// configurations spanning the same shape space, each with its own
/// program seed.
fn cases(n: usize, stream_seed: u64) -> Vec<(GeneratorConfig, u64)> {
    let mut rng = Rng::seed_from_u64(stream_seed);
    (0..n)
        .map(|_| {
            let config = GeneratorConfig {
                classes: rng.gen_range(1..8),
                members_per_class: rng.gen_range(1..6),
                methods_per_class: rng.gen_range(1..4),
                stmts_per_method: rng.gen_range(0..6),
                objects_in_main: rng.gen_range(1..8),
            };
            let seed = rng.next_u64() % 10_000;
            (config, seed)
        })
        .collect()
}

#[test]
fn generated_programs_are_accepted_end_to_end() {
    for (config, seed) in cases(48, 0xE2E) {
        let src = generate(&config, seed);
        let run = AnalysisPipeline::from_source(&src)
            .unwrap_or_else(|e| panic!("pipeline failed: {e}\n{src}"));
        let exec = Interpreter::new(run.program())
            .run(&RunConfig::default())
            .unwrap_or_else(|e| panic!("execution failed: {e}\n{src}"));
        assert!(exec.steps > 0);
    }
}

#[test]
fn analysis_is_sound_against_the_interpreter() {
    for (config, seed) in cases(48, 0x50BE) {
        let src = generate(&config, seed);
        let run = AnalysisPipeline::from_source(&src).expect("pipeline");
        let exec = Interpreter::new(run.program())
            .run(&RunConfig::default())
            .expect("run");
        for m in &exec.members_observed {
            assert!(
                run.liveness().is_live(*m),
                "member {m} observed at run time but statically dead\n{src}"
            );
        }
    }
}

#[test]
fn pta_refinement_is_also_sound() {
    // The §3.1 points-to refinement prunes dispatch targets; it must
    // never prune one the interpreter actually reaches.
    for (config, seed) in cases(48, 0x97A) {
        let src = generate(&config, seed);
        let run = AnalysisPipeline::with_config(&src, Default::default(), Algorithm::Pta)
            .expect("pipeline");
        let exec = Interpreter::new(run.program())
            .run(&RunConfig::default())
            .expect("run");
        for m in &exec.members_observed {
            assert!(
                run.liveness().is_live(*m),
                "PTA: member {m} observed at run time but statically dead\n{src}"
            );
        }
    }
}

#[test]
fn parallel_analysis_matches_sequential_on_generated_programs() {
    // Differential property over random programs: the sharded engine
    // must agree with the sequential reference bit-for-bit, for every
    // worker count.
    for (config, seed) in cases(24, 0x7A12) {
        let src = generate(&config, seed);
        let sequential = AnalysisPipeline::from_source(&src).expect("pipeline");
        for jobs in [2, 3, 8] {
            let parallel =
                AnalysisPipeline::with_config_jobs(&src, Default::default(), Algorithm::Rta, jobs)
                    .expect("parallel pipeline");
            assert_eq!(
                sequential.liveness(),
                parallel.liveness(),
                "jobs={jobs} diverged\n{src}"
            );
            assert_eq!(
                sequential.report().to_string(),
                parallel.report().to_string(),
                "jobs={jobs} report diverged\n{src}"
            );
        }
    }
}

#[test]
fn pretty_printer_round_trips_generated_programs() {
    for (config, seed) in cases(48, 0xB0B) {
        let src = generate(&config, seed);
        let tu1 = dead_data_members::cppfront::parse(&src).expect("parse");
        let printed = dead_data_members::cppfront::print_unit(&tu1);
        let tu2 = dead_data_members::cppfront::parse(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        // The printer must be a fixpoint, and structure must be preserved.
        assert_eq!(&printed, &dead_data_members::cppfront::print_unit(&tu2));
        assert_eq!(tu1.classes.len(), tu2.classes.len());
        assert_eq!(tu1.data_member_count(), tu2.data_member_count());
    }
}

#[test]
fn layout_invariants() {
    for (config, seed) in cases(48, 0x1A1) {
        let src = generate(&config, seed);
        let tu = dead_data_members::cppfront::parse(&src).expect("parse");
        let program = Program::build(&tu).expect("sema");
        let layouts = LayoutEngine::new(&program);
        for (cid, info) in program.classes() {
            let layout = layouts.layout(cid);
            assert!(layout.size >= 1, "{}", info.name);
            assert!(layout.align.is_power_of_two());
            assert_eq!(layout.size % layout.align, 0, "size must honor alignment");
            // Field slots are disjoint and inside the object.
            let mut slots: Vec<_> = layout.fields.clone();
            slots.sort_by_key(|f| f.offset);
            for w in slots.windows(2) {
                assert!(
                    w[0].offset + w[0].size <= w[1].offset,
                    "{}: overlapping fields",
                    info.name
                );
            }
            if let Some(last) = slots.last() {
                assert!(last.offset + last.size <= layout.size);
            }
            // The trimmed size can never exceed the full size.
            let all = layout.bytes_where(|_| true);
            assert!(all <= layout.size);
        }
    }
}

#[test]
fn liveness_is_monotone_in_callgraph_precision() {
    for (config, seed) in cases(48, 0x3CA) {
        let src = generate(&config, seed);
        let dead = |alg| {
            let run =
                AnalysisPipeline::with_config(&src, Default::default(), alg).expect("pipeline");
            run.report().dead_member_names().len()
        };
        let everything = dead(Algorithm::Everything);
        let cha = dead(Algorithm::Cha);
        let rta = dead(Algorithm::Rta);
        assert!(everything <= cha && cha <= rta, "{src}");
    }
}

#[test]
fn profile_is_consistent_for_generated_programs() {
    use dead_data_members::dynamic::profile_trace;
    for (config, seed) in cases(48, 0xF00D) {
        let src = generate(&config, seed);
        let run = AnalysisPipeline::from_source(&src).expect("pipeline");
        let exec = Interpreter::new(run.program())
            .run(&RunConfig::default())
            .expect("run");
        let p = profile_trace(run.program(), &exec.trace, run.liveness());
        assert!(p.dead_member_space <= p.object_space);
        assert!(p.high_water_mark <= p.object_space);
        assert!(p.high_water_mark_without_dead <= p.high_water_mark);
    }
}
