//! Whole-suite invariants: the qualitative findings of the paper's §4.4
//! evaluation must hold on this reproduction's benchmark suite.

use dead_data_members::benchmarks::{self, LIBRARY_USERS, TRIVIAL};
use dead_data_members::dynamic::{profile_trace, HeapProfile, Interpreter, RunConfig};

struct Row {
    name: &'static str,
    dead_pct: f64,
    profile: HeapProfile,
    exit_code: i64,
    output: String,
}

fn measure_all() -> &'static Vec<Row> {
    static CACHE: std::sync::OnceLock<Vec<Row>> = std::sync::OnceLock::new();
    CACHE.get_or_init(compute_all)
}

fn compute_all() -> Vec<Row> {
    benchmarks::suite()
        .iter()
        .map(|b| {
            let run = b.analyze().unwrap_or_else(|e| panic!("{}: {e}", b.name));
            let exec = Interpreter::new(run.program())
                .run(&RunConfig::default())
                .unwrap_or_else(|e| panic!("{}: {e}", b.name));
            let profile = profile_trace(run.program(), &exec.trace, run.liveness());
            Row {
                name: b.name,
                dead_pct: run.report().dead_percentage(),
                profile,
                exit_code: exec.exit_code,
                output: exec.output,
            }
        })
        .collect()
}

#[test]
fn all_benchmarks_run_to_successful_completion() {
    for row in measure_all() {
        assert_eq!(row.exit_code, 0, "{} exited nonzero", row.name);
        assert!(!row.output.is_empty(), "{} produced no output", row.name);
    }
}

#[test]
fn richards_validates_its_own_counters() {
    let b = benchmarks::by_name("richards").unwrap();
    let run = b.analyze().unwrap();
    let exec = Interpreter::new(run.program())
        .run(&RunConfig::default())
        .unwrap();
    assert!(exec.output.contains("queueCount=2322"), "{}", exec.output);
    assert!(exec.output.contains("holdCount=928"));
    assert!(exec.output.contains("richards: OK"));
}

#[test]
fn deltablue_solver_is_correct() {
    let b = benchmarks::by_name("deltablue").unwrap();
    let run = b.analyze().unwrap();
    let exec = Interpreter::new(run.program())
        .run(&RunConfig::default())
        .unwrap();
    assert!(exec.output.contains("deltablue: OK"), "{}", exec.output);
}

#[test]
fn smallest_benchmarks_have_no_dead_members() {
    // §4.4: "The smallest two of the benchmarks, richards and deltablue,
    // do not contain any dead data members."
    for row in measure_all() {
        if TRIVIAL.contains(&row.name) {
            assert_eq!(row.dead_pct, 0.0, "{}", row.name);
            assert_eq!(row.profile.dead_member_space, 0, "{}", row.name);
        }
    }
}

#[test]
fn library_users_have_the_highest_dead_percentage() {
    // §4.4: "The benchmarks that use a class library not specifically
    // built for the application ... have the highest percentage of dead
    // data members."
    let rows = measure_all();
    let mut sorted: Vec<&Row> = rows.iter().collect();
    sorted.sort_by(|a, b| b.dead_pct.partial_cmp(&a.dead_pct).unwrap());
    let top3: Vec<&str> = sorted[..3].iter().map(|r| r.name).collect();
    for lib in LIBRARY_USERS {
        assert!(
            top3.contains(&lib),
            "{lib} should be in the top three ({top3:?})"
        );
    }
}

#[test]
fn dynamic_numbers_are_internally_consistent() {
    for row in measure_all() {
        let p = &row.profile;
        assert!(
            p.dead_member_space <= p.object_space,
            "{}: dead > total",
            row.name
        );
        assert!(
            p.high_water_mark <= p.object_space,
            "{}: HWM > total",
            row.name
        );
        assert!(
            p.high_water_mark_without_dead <= p.high_water_mark,
            "{}: trimmed HWM above raw HWM",
            row.name
        );
        assert!(p.objects_allocated > 0, "{}", row.name);
    }
}

#[test]
fn allocate_and_hold_benchmarks_have_hwm_equal_to_total() {
    // §4.3: "for a number of benchmarks, the high water mark numbers are
    // (nearly) identical to the numbers for total object space" — in the
    // paper that is sched and hotwire; the suite reproduces it.
    for name in ["sched", "hotwire"] {
        let row = measure_all().iter().find(|r| r.name == name).unwrap();
        assert_eq!(
            row.profile.high_water_mark, row.profile.object_space,
            "{name} must allocate-and-hold"
        );
    }
}

#[test]
fn static_and_dynamic_percentages_are_not_strongly_correlated() {
    // §4.3: "there is no strong correlation between a high percentage of
    // dead data members in Figure 3, and a high percentage of object
    // space occupied by those data members in Figure 4."
    let rows = measure_all();
    let nontrivial: Vec<&Row> = rows.iter().filter(|r| !TRIVIAL.contains(&r.name)).collect();
    // The benchmark with the *smallest* static percentage must have the
    // *largest* dynamic percentage (the paper's sched), which alone rules
    // out a strong positive correlation.
    let min_static = nontrivial
        .iter()
        .min_by(|a, b| a.dead_pct.partial_cmp(&b.dead_pct).unwrap())
        .unwrap();
    let max_dynamic = nontrivial
        .iter()
        .max_by(|a, b| {
            a.profile
                .dead_space_percentage()
                .partial_cmp(&b.profile.dead_space_percentage())
                .unwrap()
        })
        .unwrap();
    assert_eq!(min_static.name, "sched");
    assert_eq!(max_dynamic.name, "sched");
}

#[test]
fn averages_land_in_the_papers_bands() {
    // §4.4: nine non-trivial benchmarks average 12.5% dead members and
    // 4.4% dead object space. The reproduction's scaled workloads should
    // land in the same bands (within a factor of ~1.5).
    let rows = measure_all();
    let nontrivial: Vec<&Row> = rows.iter().filter(|r| !TRIVIAL.contains(&r.name)).collect();
    let avg_static: f64 =
        nontrivial.iter().map(|r| r.dead_pct).sum::<f64>() / nontrivial.len() as f64;
    let avg_dynamic: f64 = nontrivial
        .iter()
        .map(|r| r.profile.dead_space_percentage())
        .sum::<f64>()
        / nontrivial.len() as f64;
    assert!(
        (8.0..=19.0).contains(&avg_static),
        "average static dead % {avg_static:.1} far from the paper's 12.5%"
    );
    assert!(
        (2.9..=6.6).contains(&avg_dynamic),
        "average dynamic dead % {avg_dynamic:.1} far from the paper's 4.4%"
    );
}

#[test]
fn soundness_oracle_over_the_whole_suite() {
    // Every member the interpreter observes being read or address-taken
    // must be statically live — across all eleven benchmarks.
    for b in benchmarks::suite() {
        let run = b.analyze().unwrap();
        let exec = Interpreter::new(run.program())
            .run(&RunConfig::default())
            .unwrap();
        for m in &exec.members_observed {
            assert!(
                run.liveness().is_live(*m),
                "{}: member {m} observed at run time but statically dead",
                b.name
            );
        }
    }
}
