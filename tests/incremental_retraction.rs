//! Incremental retraction: an edit that *removes* the thing keeping a
//! member alive — the instantiation of its class, the call edge
//! reaching the reading function, or the member access itself — must
//! flip that member to dead on the very next warm run over the same
//! cache directory, and the incremental result must stay byte-identical
//! to a cacheless run over the edited sources for both engines and
//! worker counts. Liveness retraction is the hard direction for an
//! incremental analysis: stale call-graph or liveness state leaking
//! from the previous edition would keep the member alive.

use dead_data_members::analysis::{explain, AnalysisConfig, Engine, ProjectPipeline};
use dead_data_members::callgraph::Algorithm;
use dead_data_members::telemetry::Telemetry;
use std::path::{Path, PathBuf};

const HEADER: &str = "\
class Shape {
public:
    Shape(int k) : kind(k), tag(0) { }
    virtual ~Shape() { }
    virtual int area() { return 0; }
    int kind;
    int tag;
};

class Circle : public Shape {
public:
    Circle(int r) : Shape(1), radius(r), cached(0) { }
    virtual int area() { return 3 * radius * radius; }
    int radius;
    int cached;
};
";

fn geom_tu() -> (String, String) {
    (
        "geom.cpp".to_string(),
        format!("{HEADER}int total_area(Shape* a, Shape* b) {{ return a->area() + b->area(); }}"),
    )
}

fn stats_tu(body: &str) -> (String, String) {
    (
        "stats.cpp".to_string(),
        format!("{HEADER}int classify(Shape* s) {{ {body} }}"),
    )
}

fn main_tu(first_object: &str, call: &str) -> (String, String) {
    (
        "main.cpp".to_string(),
        format!(
            "{HEADER}int total_area(Shape* a, Shape* b);\nint classify(Shape* s);\n\
             int main() {{\n    Shape* c = {first_object};\n    Shape* s = new Shape(1);\n\
             \x20   int r = {call};\n    delete c;\n    delete s;\n    return r;\n}}"
        ),
    )
}

/// The baseline project: `Circle` instantiated, `classify` called, and
/// `classify` reading `Shape::kind` — so `Circle::radius` and
/// `Shape::kind` are both live.
fn baseline_inputs() -> Vec<(String, String)> {
    vec![
        main_tu("new Circle(2)", "total_area(c, s) + classify(c)"),
        geom_tu(),
        stats_tu("s->tag = 1; return s->kind;"),
    ]
}

struct Scratch(PathBuf);

impl Scratch {
    fn new(test: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("ddm-retract-{}-{test}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Scratch(dir)
    }
    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn run(
    inputs: &[(String, String)],
    engine: Engine,
    jobs: usize,
    cache: Option<&Path>,
    telemetry: &Telemetry,
) -> ProjectPipeline {
    ProjectPipeline::run(
        inputs,
        AnalysisConfig::default(),
        Algorithm::Rta,
        jobs,
        engine,
        cache,
        telemetry,
    )
    .expect("project run")
}

/// Report + explains + deterministic counters, as rendered text.
fn artifacts(p: &ProjectPipeline, telemetry: &Telemetry) -> String {
    let mut out = p.report().to_string();
    for spec in ["Shape::kind", "Shape::tag", "Circle::radius", "Circle::cached"] {
        out.push_str(&explain(p.program(), p.callgraph(), p.liveness(), spec).unwrap());
    }
    out.push_str(&format!("{:?}\n", telemetry.counters().rows()));
    out
}

/// True when `class::member` is classified dead. Reads the per-class
/// report rather than `dead_member_names()` because the latter filters
/// to used classes, and retracting an instantiation makes the class
/// unused as well as its members dead.
fn is_dead(p: &ProjectPipeline, class: &str, member: &str) -> bool {
    p.report()
        .classes()
        .iter()
        .find(|c| c.name == class)
        .unwrap_or_else(|| panic!("class `{class}` missing from report"))
        .dead_members
        .iter()
        .any(|m| m == member)
}

/// Drives one retraction scenario: `edited` differs from the baseline
/// project in exactly one TU, and that edit must retract `member` from
/// the live set. Checks the cacheless before/after liveness flip, then
/// replays the edit incrementally (cold baseline run, warm edited run
/// over the same cache) at jobs {1, 8}, asserting the warm run hit the
/// cache for the two unchanged TUs and produced artifacts
/// byte-identical to the cacheless edited run — under both engines.
fn check_retraction(tag: &str, edited: &[(String, String)], class: &str, member: &str) {
    let before = run(
        &baseline_inputs(),
        Engine::Summary,
        1,
        None,
        &Telemetry::enabled(),
    );
    assert!(
        !is_dead(&before, class, member),
        "{tag}: `{class}::{member}` must be live before the edit"
    );

    let tel = Telemetry::enabled();
    let after = run(edited, Engine::Summary, 1, None, &tel);
    assert!(
        is_dead(&after, class, member),
        "{tag}: `{class}::{member}` must be dead after the edit (cacheless)"
    );
    let want = artifacts(&after, &tel);

    for engine in [Engine::Summary, Engine::Walk] {
        for jobs in [1usize, 8] {
            let scratch = Scratch::new(&format!("{tag}-{engine}-{jobs}"));
            run(
                &baseline_inputs(),
                engine,
                jobs,
                Some(scratch.path()),
                &Telemetry::enabled(),
            );

            let tel = Telemetry::enabled();
            let p = run(edited, engine, jobs, Some(scratch.path()), &tel);
            if engine == Engine::Summary {
                let stats = tel.stats();
                assert_eq!(
                    (stats.tu_cache_hits, stats.tu_cache_misses),
                    (2, 1),
                    "{tag} {engine} jobs={jobs}: the edit touches exactly one TU"
                );
            }
            assert_eq!(
                artifacts(&p, &tel),
                want,
                "{tag} {engine} jobs={jobs}: incremental run drifted from cacheless"
            );
            assert!(
                is_dead(&p, class, member),
                "{tag} {engine} jobs={jobs}: `{class}::{member}` still live incrementally"
            );
        }
    }
}

/// Removing the only `new Circle(...)` retracts the instantiation:
/// under RTA the virtual `area()` no longer dispatches to
/// `Circle::area`, so `Circle::radius` loses its only read.
#[test]
fn removing_the_instantiation_kills_the_derived_members() {
    let edited = vec![
        main_tu("new Shape(2)", "total_area(c, s) + classify(c)"),
        geom_tu(),
        stats_tu("s->tag = 1; return s->kind;"),
    ];
    check_retraction("instantiation", &edited, "Circle", "radius");
}

/// Dropping the `classify(c)` call retracts the call edge: `classify`
/// becomes unreachable, so its read of `Shape::kind` no longer counts
/// and the member (still written by the constructor) goes dead.
#[test]
fn removing_the_call_edge_kills_the_callees_reads() {
    let edited = vec![
        main_tu("new Circle(2)", "total_area(c, s)"),
        geom_tu(),
        stats_tu("s->tag = 1; return s->kind;"),
    ];
    check_retraction("call-edge", &edited, "Shape", "kind");
}

/// Rewriting `classify` to drop `return s->kind` retracts the member
/// access itself while keeping the function reachable: `Shape::kind`
/// keeps its constructor write but loses its only read.
#[test]
fn removing_the_member_access_kills_the_member() {
    let edited = vec![
        main_tu("new Circle(2)", "total_area(c, s) + classify(c)"),
        geom_tu(),
        stats_tu("s->tag = 1; return 0;"),
    ];
    check_retraction("member-access", &edited, "Shape", "kind");
}
