//! Regression tests pinning the paper's special-case liveness rules
//! *under the sharded engine*.
//!
//! The dangerous failure mode of parallelising the scan is a worker
//! skipping or double-applying one of Figure 2's special cases (volatile
//! writes, `delete`/`free` exemption, unsafe-cast closure, union
//! propagation). Each case is asserted at 1, 2, and 8 workers so a
//! sharding bug cannot silently drop a rule; the sources spread the
//! relevant statements over several functions so they actually land in
//! different shards.

use dead_data_members::analysis::LiveReason;
use dead_data_members::prelude::*;

fn liveness(source: &str, jobs: usize) -> (Program, Liveness) {
    let run =
        AnalysisPipeline::with_config_jobs(source, AnalysisConfig::default(), Algorithm::Rta, jobs)
            .expect("pipeline");
    let liveness = run.liveness().clone();
    let tu = parse(source).expect("parse");
    (Program::build(&tu).expect("sema"), liveness)
}

fn member(p: &Program, class: &str, name: &str) -> MemberRef {
    let cid = p.class_by_name(class).unwrap();
    let idx = p
        .class(cid)
        .members
        .iter()
        .position(|m| m.name == name)
        .unwrap();
    MemberRef::new(cid, idx)
}

const JOBS: [usize; 3] = [1, 2, 8];

#[test]
fn volatile_write_only_member_stays_live_under_sharding() {
    // Padding functions push the volatile write into a late shard.
    let src = "class Dev { public: volatile int ctrl; int scratch; };\n\
               int pad1() { return 1; }\n\
               int pad2() { return pad1() + 1; }\n\
               int pad3() { return pad2() + 1; }\n\
               int pad4() { return pad3() + 1; }\n\
               void poke(Dev* d) { d->ctrl = 1; d->scratch = 2; }\n\
               int main() { Dev d; poke(&d); return pad4(); }";
    for jobs in JOBS {
        let (p, l) = liveness(src, jobs);
        assert!(
            l.is_live(member(&p, "Dev", "ctrl")),
            "jobs={jobs}: volatile write-only member must stay live"
        );
        assert_eq!(
            l.reason(member(&p, "Dev", "ctrl")),
            Some(LiveReason::VolatileWrite),
            "jobs={jobs}"
        );
        assert!(
            l.is_dead(member(&p, "Dev", "scratch")),
            "jobs={jobs}: plain write-only member must stay dead"
        );
    }
}

#[test]
fn delete_and_free_operands_do_not_liven_under_sharding() {
    let src = "class Node { public: int* heap_buf; Node* child; int used; };\n\
               int pad1() { return 1; }\n\
               int pad2() { return pad1() + 1; }\n\
               void reap(Node* n) { delete n->child; free(n->heap_buf); }\n\
               int touch(Node* n) { return n->used; }\n\
               int main() { Node n; reap(&n); return touch(&n) + pad2(); }";
    for jobs in JOBS {
        let (p, l) = liveness(src, jobs);
        assert!(
            l.is_dead(member(&p, "Node", "child")),
            "jobs={jobs}: delete operand must not liven"
        );
        assert!(
            l.is_dead(member(&p, "Node", "heap_buf")),
            "jobs={jobs}: free operand must not liven"
        );
        assert!(l.is_live(member(&p, "Node", "used")), "jobs={jobs}");
    }
}

#[test]
fn unsafe_cast_livens_all_contained_members_under_sharding() {
    // The reinterpret_cast sits in its own function; the contained-member
    // closure (value members + bases) must fire whichever shard walks it.
    let src = "class Inner { public: int deep; };\n\
               class Base { public: int inherited; };\n\
               class Outer : public Base { public: Inner inner; int own; };\n\
               int pad1() { return 1; }\n\
               int pad2() { return pad1() + 1; }\n\
               int pad3() { return pad2() + 1; }\n\
               long smuggle(Outer* o) { return reinterpret_cast<long>(o); }\n\
               int main() { Outer* o = new Outer(); return (int)smuggle(o) + pad3(); }";
    for jobs in JOBS {
        let (p, l) = liveness(src, jobs);
        for (class, name) in [
            ("Outer", "own"),
            ("Outer", "inner"),
            ("Inner", "deep"),
            ("Base", "inherited"),
        ] {
            assert!(
                l.is_live(member(&p, class, name)),
                "jobs={jobs}: unsafe cast must liven {class}::{name}"
            );
            assert_eq!(
                l.reason(member(&p, class, name)),
                Some(LiveReason::UnsafeCast),
                "jobs={jobs}: {class}::{name}"
            );
        }
    }
}

#[test]
fn union_propagation_reaches_fixpoint_under_sharding() {
    // The union rule runs after the merge; a live member read in one
    // shard must liven union siblings discovered from another shard's
    // contribution, transitively through nested unions.
    let src = "union Inner { short s; char c; };\n\
               union Outer { int i; Inner nested; };\n\
               int pad1() { return 1; }\n\
               int pad2() { return pad1() + 1; }\n\
               int peek(Outer* u) { return u->i; }\n\
               int main() { Outer u; return peek(&u) + pad2(); }";
    for jobs in JOBS {
        let (p, l) = liveness(src, jobs);
        for (class, name) in [("Outer", "i"), ("Outer", "nested"), ("Inner", "s"), ("Inner", "c")]
        {
            assert!(
                l.is_live(member(&p, class, name)),
                "jobs={jobs}: union propagation must liven {class}::{name}"
            );
        }
    }
}

#[test]
fn reason_tie_breaks_match_the_sequential_scan_order() {
    // One member is read in an early function and swept into an unsafe
    // cast's closure in a later one. First mark wins sequentially; the
    // ordered shard merge must preserve that exact reason.
    let src = "class A { public: int m; int other; };\n\
               int early(A* a) { return a->m; }\n\
               int pad1() { return 1; }\n\
               int pad2() { return pad1() + 1; }\n\
               long late(A* a) { return reinterpret_cast<long>(a); }\n\
               int main() { A a; return early(&a) + (int)late(&a) + pad2(); }";
    let (p, sequential) = liveness(src, 1);
    let seq_reason = sequential.reason(member(&p, "A", "m"));
    for jobs in JOBS {
        let (p, l) = liveness(src, jobs);
        assert_eq!(
            l.reason(member(&p, "A", "m")),
            seq_reason,
            "jobs={jobs}: reason tie-break diverged from sequential"
        );
        assert_eq!(
            l.reason(member(&p, "A", "other")),
            Some(LiveReason::UnsafeCast),
            "jobs={jobs}"
        );
    }
}
