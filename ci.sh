#!/bin/sh
# Offline tier-1 gate: build, full test suite, and the parallel
# determinism harness at 8 workers. No network access required — the
# workspace has no external dependencies.
set -eu

cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --release

echo "== test suite =="
cargo test -q

echo "== parallel determinism (--jobs 8) =="
cargo test --release --test parallel_determinism -- --nocapture
cargo test --release --test parallel_special_cases
cargo run --release --bin ddm -- crates/benchmarks/programs/richards.cpp --jobs 8 > /dev/null

echo "== engine equivalence (summary vs walk) =="
cargo test --release --test engine_equivalence
cargo test --release --test walk_once
# The summary engine is the default; gate its --jobs 8 determinism the
# same way, and the retained walk engine explicitly.
cargo run --release --bin ddm -- crates/benchmarks/programs/richards.cpp --engine summary --jobs 8 > /dev/null
cargo run --release --bin ddm -- crates/benchmarks/programs/richards.cpp --engine walk --jobs 8 > /dev/null

echo "== telemetry: deterministic counters and provenance =="
cargo test --release --test telemetry_determinism
cargo test --release --test provenance_soundness
cargo test --release --test cli_smoke

echo "== flight recorder: det-class byte-identity + zero-alloc when off =="
cargo test --release --test flight_recorder
cargo test --release --test recorder_zero_alloc
# CLI surface: the deterministic event stream and the metrics document
# must be byte-identical across engines x jobs, and both outputs must
# pass the in-tree JSON validator (bench_report --validate FILE...).
cargo run --release --bin ddm -- crates/benchmarks/programs/richards.cpp \
    --engine walk --jobs 1 --log-out /tmp/ddm_ci_w1.ndjson --log-filter det \
    --metrics-out /tmp/ddm_ci_w1_metrics.json > /dev/null
cargo run --release --bin ddm -- crates/benchmarks/programs/richards.cpp \
    --engine summary --jobs 8 --log-out /tmp/ddm_ci_s8.ndjson --log-filter det \
    --metrics-out /tmp/ddm_ci_s8_metrics.json > /dev/null
cmp /tmp/ddm_ci_w1.ndjson /tmp/ddm_ci_s8.ndjson
cmp /tmp/ddm_ci_w1_metrics.json /tmp/ddm_ci_s8_metrics.json
cargo run --release -p ddm-bench --bin bench_report -- --validate \
    /tmp/ddm_ci_w1.ndjson /tmp/ddm_ci_w1_metrics.json
rm -f /tmp/ddm_ci_w1.ndjson /tmp/ddm_ci_s8.ndjson \
    /tmp/ddm_ci_w1_metrics.json /tmp/ddm_ci_s8_metrics.json

echo "== telemetry: chrome trace export (--jobs 8, one lane per worker) =="
# The suite programs sit below the 256-function sharding thresholds and
# run sequentially at any --jobs, so the lane check needs a generated
# program big enough to shard eight ways (the smallest scale size).
cargo run --release -p ddm-bench --bin bench_scale -- --emit /tmp/ddm_ci_scale.cpp \
    > /dev/null
cargo run --release --bin ddm -- /tmp/ddm_ci_scale.cpp \
    --jobs 8 --trace-out /tmp/ddm_ci_trace.json > /dev/null
test -s /tmp/ddm_ci_trace.json
grep -q '"worker-8"' /tmp/ddm_ci_trace.json
rm -f /tmp/ddm_ci_trace.json /tmp/ddm_ci_scale.cpp

echo "== telemetry: --explain witness chains =="
# A known-live member: the chain must reach the livening access from main.
cargo run --release --bin ddm -- crates/benchmarks/programs/deltablue.cpp \
    --explain Variable::value | grep -q 'call chain: main'
# A known-dead member: the verdict must be explicit.
cargo run --release --bin ddm -- crates/benchmarks/programs/idl.cpp \
    --explain Emitter::last_line | grep -q 'Emitter::last_line: DEAD'

echo "== delta worklist: equivalence with the pre-change sweep =="
cargo test --release --test worklist_equivalence

echo "== delta worklist: counter determinism across jobs x engines =="
# Full-counter bit-equality (includes cg_worklist_pops / cg_ready_drains)
# is part of telemetry_determinism above; this pins the worklist-specific
# invariants (pops > 0, per-round delta sizes engine/jobs-invariant).
cargo test --release --test worklist_equivalence worklist_telemetry_is_identical_across_engines_and_jobs

echo "== project cache: equivalence and invalidation =="
cargo test --release --test project_cache

echo "== incremental retraction: removed edits flip members dead =="
cargo test --release --test incremental_retraction

echo "== project cache: cold-vs-warm CLI smoke (byte-identical, zero warm work) =="
rm -rf /tmp/ddm_ci_cache
cargo run --release --bin ddm -- crates/benchmarks/programs/multi/*.cpp \
    --engine summary --cache-dir /tmp/ddm_ci_cache --stats \
    > /tmp/ddm_ci_cold.out 2> /tmp/ddm_ci_cold.err
cargo run --release --bin ddm -- crates/benchmarks/programs/multi/*.cpp \
    --engine summary --cache-dir /tmp/ddm_ci_cache --stats \
    --log-out /tmp/ddm_ci_warm.ndjson \
    > /tmp/ddm_ci_warm.out 2> /tmp/ddm_ci_warm.err
cmp /tmp/ddm_ci_cold.out /tmp/ddm_ci_warm.out
# The warm run must hit the cache for every TU and summarize none.
grep -Eq 'tus_summarized +0$' /tmp/ddm_ci_warm.err
grep -Eq 'tu_cache_hits +3$' /tmp/ddm_ci_warm.err
# The flight recorder must log the same story: one tu_cache_hit probe
# event per TU, and no miss/invalidation.
test "$(grep -c '"event":"tu_cache_hit"' /tmp/ddm_ci_warm.ndjson)" = 3
! grep -q '"event":"tu_cache_miss"' /tmp/ddm_ci_warm.ndjson
! grep -q '"event":"tu_cache_invalidated"' /tmp/ddm_ci_warm.ndjson
rm -rf /tmp/ddm_ci_cache /tmp/ddm_ci_cold.out /tmp/ddm_ci_cold.err \
    /tmp/ddm_ci_warm.out /tmp/ddm_ci_warm.err /tmp/ddm_ci_warm.ndjson

echo "== incremental 1-changed CLI smoke (snapshot warm start, bounded frontier) =="
# Warm a cache, append an unreachable function to one TU, and re-run:
# the report must stay byte-identical, the analysis snapshot must load,
# and the fixpoint invalidation frontier must stay strictly below the
# program's function count (only the changed TU's functions re-enter).
rm -rf /tmp/ddm_ci_incr /tmp/ddm_ci_incr_src
mkdir -p /tmp/ddm_ci_incr_src
cp crates/benchmarks/programs/multi/*.cpp /tmp/ddm_ci_incr_src/
cargo run --release --bin ddm -- /tmp/ddm_ci_incr_src/*.cpp \
    --engine summary --cache-dir /tmp/ddm_ci_incr \
    > /tmp/ddm_ci_incr_cold.out
first_tu=$(ls /tmp/ddm_ci_incr_src/*.cpp | head -1)
printf 'int ci_incremental_pad() { return 42; }\n' >> "$first_tu"
cargo run --release --bin ddm -- /tmp/ddm_ci_incr_src/*.cpp \
    --engine summary --cache-dir /tmp/ddm_ci_incr \
    --log-out /tmp/ddm_ci_incr.ndjson \
    > /tmp/ddm_ci_incr_warm.out
cmp /tmp/ddm_ci_incr_cold.out /tmp/ddm_ci_incr_warm.out
grep -q '"event":"snapshot_loaded"' /tmp/ddm_ci_incr.ndjson
inv=$(grep '"event":"fixpoint_invalidate"' /tmp/ddm_ci_incr.ndjson)
frontier=$(printf '%s' "$inv" | sed -n 's/.*"frontier_fns":\([0-9]*\).*/\1/p')
total=$(printf '%s' "$inv" | sed -n 's/.*"total_fns":\([0-9]*\).*/\1/p')
test -n "$frontier" && test -n "$total" && test "$frontier" -lt "$total"
rm -rf /tmp/ddm_ci_incr /tmp/ddm_ci_incr_src /tmp/ddm_ci_incr_cold.out \
    /tmp/ddm_ci_incr_warm.out /tmp/ddm_ci_incr.ndjson

echo "== differential fuzz: capped sweep + shrinker =="
cargo test --release --test differential_fuzz

echo "== cache torture: crash recovery + concurrent writers =="
cargo test --release --test cache_torture

echo "== fuzz smoke (gating: fixed seed block, wall-clock ceiling enforced in-binary) =="
cargo run --release -p ddm-bench --bin bench_fuzz -- --smoke --json > /dev/null
test -s BENCH_fuzz_smoke.json

echo "== incremental bench smoke (gating: wall-clock ceiling enforced in-binary) =="
cargo run --release -p ddm-bench --bin bench_incremental -- --smoke --json > /dev/null
test -s BENCH_incremental_smoke.json

echo "== bench suite smoke (non-gating on time) =="
cargo run --release -p ddm-bench --bin bench_suite -- --json --samples 3 > /dev/null
test -s BENCH_suite.json

echo "== scale bench smoke (gating: wall-clock ceiling enforced in-binary) =="
cargo run --release -p ddm-bench --bin bench_scale -- --smoke --json > /dev/null
test -s BENCH_scale_smoke.json

echo "== serve smoke: epoch swap, incremental rebuild, one-shot byte-identity =="
cargo test --release --test serve_determinism
# Drive a live daemon over a FIFO: analyze 24 TUs, query, edit one TU,
# notify, re-query. Each report response must be byte-identical to a
# fresh one-shot run at that file state; the rebuild must take the
# incremental path (snapshot_loaded in the epoch log, warm starts >= 1)
# and finish faster than the cold analyze; shutdown must exit 0.
serve_src=/tmp/ddm_ci_serve_src
serve_tmp=/tmp/ddm_ci_serve
rm -rf "$serve_src" "$serve_tmp"
mkdir -p "$serve_src" "$serve_tmp"
protos=""
calls=""
for i in $(seq 1 23); do
    nn=$(printf '%02d' "$i")
    printf 'class C%s { public: C%s() : a(0), b(0) { } int get() { return a; } int a; int b; };\nint f%d() { C%s o; return o.get(); }\n' \
        "$nn" "$nn" "$i" "$nn" > "$serve_src/tu$nn.cpp"
    protos="$protos int f$i();"
    calls="$calls + f$i()"
done
printf '%s\nint main() { return 0%s; }\n' "$protos" "$calls" > "$serve_src/main.cpp"

cargo run --release --bin ddm -- "$serve_src"/*.cpp --engine summary --jobs 8 \
    > "$serve_tmp/oneshot_a.out"

mkfifo "$serve_tmp/requests"
target/release/ddm serve --engine summary --jobs 8 \
    --cache-dir "$serve_tmp/cache" --log-out "$serve_tmp/epochs.ndjson" \
    < "$serve_tmp/requests" > "$serve_tmp/responses" &
serve_pid=$!
exec 9> "$serve_tmp/requests"

await_responses() {
    for _ in $(seq 1 600); do
        test "$(wc -l < "$serve_tmp/responses")" -ge "$1" && return 0
        sleep 0.1
    done
    echo "serve smoke: timed out waiting for $1 responses" >&2
    return 1
}
response_field() { # response_field <line> <field> -> stdout
    python3 -c 'import json,sys
resp = json.loads(open(sys.argv[1]).readlines()[int(sys.argv[2]) - 1])
value = resp[sys.argv[3]]
sys.stdout.write(value if isinstance(value, str) else str(value))' \
        "$serve_tmp/responses" "$1" "$2"
}

python3 -c 'import json,glob,sys
print(json.dumps({"cmd": "analyze", "files": sorted(glob.glob(sys.argv[1] + "/*.cpp"))}))' \
    "$serve_src" >&9
printf '{"cmd":"report"}\n{"cmd":"epoch"}\n' >&9
await_responses 3
grep -q '"ok":true,"cmd":"analyze","epoch":1,"tus":24' "$serve_tmp/responses"
response_field 2 output > "$serve_tmp/serve_a.out"
cmp "$serve_tmp/serve_a.out" "$serve_tmp/oneshot_a.out"
cold_ns=$(response_field 3 build_ns)

# Edit one TU of 24 (livens C01::b), oracle the new state, notify.
printf 'class C01 { public: C01() : a(0), b(0) { } int get() { return a; } int a; int b; };\nint f1() { C01 o; return o.get() + o.b; }\n' \
    > "$serve_src/tu01.cpp"
cargo run --release --bin ddm -- "$serve_src"/*.cpp --engine summary --jobs 8 \
    > "$serve_tmp/oneshot_b.out"
printf '{"cmd":"notify","changed":["%s/tu01.cpp"],"wait":1}\n' "$serve_src" >&9
printf '{"cmd":"report"}\n{"cmd":"epoch"}\n{"cmd":"shutdown"}\n' >&9
await_responses 7
grep -q '"ok":true,"cmd":"notify","epoch":2' "$serve_tmp/responses"
response_field 5 output > "$serve_tmp/serve_b.out"
cmp "$serve_tmp/serve_b.out" "$serve_tmp/oneshot_b.out"
test "$(response_field 6 epoch)" = 2
test "$(response_field 6 snapshot_warm_starts)" -ge 1
warm_ns=$(response_field 6 build_ns)
test "$warm_ns" -lt "$cold_ns"
# The epoch log must show the incremental path and both publishes.
grep -q '"event":"snapshot_loaded"' "$serve_tmp/epochs.ndjson"
test "$(grep -c '"event":"epoch_published"' "$serve_tmp/epochs.ndjson")" = 2
exec 9>&-
wait "$serve_pid"
rm -rf "$serve_src" "$serve_tmp"

echo "== bench report: counter-baseline regression gate (hard-fail on drift) =="
# Recomputes the 11 suite programs' deterministic counters in-process
# and diffs them against the committed golden baselines; timings are
# warn-only on this 1-CPU host. Runs after the smokes so every family
# has a readable report file.
cargo run --release -p ddm-bench --bin bench_report -- --check --smoke --validate
rm -f BENCH_fuzz_smoke.json BENCH_incremental_smoke.json BENCH_scale_smoke.json

echo "ci.sh: all gates passed"
