#!/bin/sh
# Offline tier-1 gate: build, full test suite, and the parallel
# determinism harness at 8 workers. No network access required — the
# workspace has no external dependencies.
set -eu

cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --release

echo "== test suite =="
cargo test -q

echo "== parallel determinism (--jobs 8) =="
cargo test --release --test parallel_determinism -- --nocapture
cargo test --release --test parallel_special_cases
cargo run --release --bin ddm -- crates/benchmarks/programs/richards.cpp --jobs 8 > /dev/null

echo "ci.sh: all gates passed"
