//! The paper's running example (Figure 1), classified exactly as §2/§3.1
//! describe.
//!
//! ```sh
//! cargo run --example paper_figure1
//! ```

use dead_data_members::prelude::*;

const FIGURE_1: &str = r#"
    class N {
    public:
        int mn1; /* live: accessed and observable */
        int mn2; /* dead: not accessed */
    };
    class A {
    public:
        virtual int f() { return ma1; }
        int ma1; /* live: accessed and observable */
        int ma2; /* dead: not accessed */
        int ma3; /* dead: accessed but not observable (write only) */
    };
    class B : public A {
    public:
        virtual int f() { return mb1; }
        int mb1; /* conservatively live: B::f is in the RTA call graph */
        N mb2;   /* live: accessed and observable */
        int mb3; /* conservatively live: read (though the value is unused) */
        int mb4; /* live: address taken and used */
    };
    class C : public A {
    public:
        virtual int f() { return mc1; }
        int mc1; /* conservatively live: C::f is in the RTA call graph */
    };
    int foo(int* x) { return (*x) + 1; }
    int main() {
        A a; B b; C c;
        A* ap;
        a.ma3 = b.mb3 + 1;
        int i = 10;
        if (i < 20) { ap = &a; } else { ap = &b; }
        return ap->f() + b.mb2.mn1 + foo(&b.mb4);
    }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let run = AnalysisPipeline::from_source(FIGURE_1)?;
    let report = run.report();
    println!("{report}");

    // The paper's expected result: three members are dead even under the
    // conservative analysis — ma2 and mn2 (never accessed) and ma3
    // (written but never read).
    assert_eq!(
        report.dead_member_names(),
        vec!["A::ma2", "A::ma3", "N::mn2"]
    );

    // §3.1 also explains which members are *actually* dead but kept live
    // by conservatism: mb1/mc1 (their readers are reachable only through
    // the imprecise call graph) and mb3 (read, but the value only feeds a
    // dead store). A points-to analysis or dead-code elimination would
    // reclaim those; see the `ablation_callgraph` binary.
    for name in ["mb1", "mc1", "mb3"] {
        let b_or_c = report
            .classes()
            .iter()
            .find(|c| c.live_members.iter().any(|(m, _)| m == name));
        assert!(b_or_c.is_some(), "{name} should be (conservatively) live");
    }
    println!("Figure 1 classified exactly as the paper describes.");
    Ok(())
}
