//! Quickstart: detect dead data members in a small C++ program.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use dead_data_members::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = r#"
        class Customer {
        public:
            int id;
            int balance;
            int last_login_day;   // written on every login, never read
            int legacy_flags;     // only the retired v1 sync path read this
            Customer(int cid) : id(cid), balance(0) {
                last_login_day = 0;
                legacy_flags = 7;
            }
            void login(int day) { last_login_day = day; }
            void deposit(int amount) { balance = balance + amount; }
        };

        // The retired v1 sync path: no longer called from anywhere.
        int sync_v1(Customer* c) {
            return c->legacy_flags;
        }

        int main() {
            Customer* c = new Customer(1001);
            c->login(37);
            c->deposit(250);
            int result = c->id + c->balance;
            delete c;
            return result;
        }
    "#;

    // One call runs the whole pipeline: parse -> semantic model -> RTA
    // call graph -> dead-member analysis -> used classes.
    let run = AnalysisPipeline::from_source(source)?;
    let report = run.report();

    println!("{report}");
    println!("Dead members found: {:?}", report.dead_member_names());

    // `last_login_day` is written on a *reachable* path but never read;
    // `legacy_flags` is only read from an unreachable function. Both are
    // dead: removing them shrinks every Customer object.
    assert_eq!(
        report.dead_member_names(),
        vec!["Customer::last_login_day", "Customer::legacy_flags"]
    );
    Ok(())
}
