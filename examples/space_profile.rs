//! Dynamic space profiling: executes benchmarks in the interpreter and
//! reproduces the paper's Table 2 measurements for them — total object
//! space, dead-member space, and the two high-water marks.
//!
//! ```sh
//! cargo run --release --example space_profile
//! ```

use dead_data_members::dynamic::{profile_trace, Interpreter, RunConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for name in ["richards", "hotwire", "sched"] {
        let bench = dead_data_members::benchmarks::by_name(name).expect("suite benchmark");
        let run = bench.analyze()?;
        let exec = Interpreter::new(run.program()).run(&RunConfig::default())?;
        let profile = profile_trace(run.program(), &exec.trace, run.liveness());

        println!("== {name} (exit code {})", exec.exit_code);
        println!("   objects allocated:        {}", profile.objects_allocated);
        println!(
            "   object space:             {} bytes",
            profile.object_space
        );
        println!(
            "   dead data member space:   {} bytes ({:.1}%)",
            profile.dead_member_space,
            profile.dead_space_percentage()
        );
        println!(
            "   high water mark:          {} bytes",
            profile.high_water_mark
        );
        println!(
            "   high water mark w/o dead: {} bytes ({:.1}% reduction)",
            profile.high_water_mark_without_dead,
            profile.high_water_mark_reduction()
        );
        if profile.high_water_mark == profile.object_space {
            println!("   (allocate-and-hold: HWM equals total, like the paper's sched/hotwire)");
        }
        println!();
    }
    Ok(())
}
