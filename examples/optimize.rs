//! The full optimization loop: analyze → eliminate dead members →
//! re-analyze → execute both versions and compare space. This is the
//! compiler transformation the paper advocates ("this optimization
//! should be incorporated in any optimizing compiler", §4.4).
//!
//! ```sh
//! cargo run --release --example optimize
//! ```

use dead_data_members::analysis::eliminate;
use dead_data_members::dynamic::{profile_trace, Interpreter, RunConfig};
use dead_data_members::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = dead_data_members::benchmarks::by_name("taldict").expect("suite benchmark");

    // 1. Analyze and measure the original.
    let before = bench.analyze()?;
    let exec_before = Interpreter::new(before.program()).run(&RunConfig::default())?;
    let profile_before = profile_trace(before.program(), &exec_before.trace, before.liveness());

    // 2. Eliminate the dead members.
    let result = eliminate(&before);
    println!("removed {} dead member(s):", result.removed.len());
    for m in &result.removed {
        println!("  - {m}");
    }
    for (m, why) in &result.kept {
        println!("  (kept {m}: {why})");
    }

    // 3. Re-analyze and re-run the optimized program.
    let after = AnalysisPipeline::from_source(&result.source)?;
    let exec_after = Interpreter::new(after.program()).run(&RunConfig::default())?;
    let profile_after = profile_trace(after.program(), &exec_after.trace, after.liveness());

    // 4. Behaviour must be identical; space must shrink.
    assert_eq!(exec_before.output, exec_after.output, "behaviour changed!");
    assert_eq!(exec_before.exit_code, exec_after.exit_code);
    println!(
        "\nobservable behaviour: identical ({} bytes of output)",
        exec_after.output.len()
    );
    println!(
        "object space: {} -> {} bytes ({} saved)",
        profile_before.object_space,
        profile_after.object_space,
        profile_before.object_space - profile_after.object_space
    );
    println!(
        "high-water mark: {} -> {} bytes",
        profile_before.high_water_mark, profile_after.high_water_mark
    );
    Ok(())
}
