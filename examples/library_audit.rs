//! Auditing library usage: the paper's core motivation is that
//! applications using general-purpose class libraries accumulate dead
//! members through *unused library functionality*. This example runs the
//! suite's three library-using benchmarks and prints a per-class audit,
//! then shows the §3.3 treatment of classes whose source is unavailable.
//!
//! ```sh
//! cargo run --example library_audit
//! ```

use dead_data_members::analysis::{AnalysisConfig, AnalysisPipeline};
use dead_data_members::callgraph::Algorithm;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for name in dead_data_members::benchmarks::LIBRARY_USERS {
        let bench = dead_data_members::benchmarks::by_name(name).expect("suite benchmark");
        let run = bench.analyze()?;
        let report = run.report();
        println!(
            "== {name}: {}/{} dead data members ({:.1}%)",
            report.dead_members_in_used_classes(),
            report.members_in_used_classes(),
            report.dead_percentage()
        );
        for class in report.classes() {
            if class.dead_members.is_empty() {
                continue;
            }
            println!(
                "   {:<14} {} of {} members dead: {}",
                class.name,
                class.dead_members.len(),
                class.total_members,
                class.dead_members.join(", ")
            );
        }
    }

    // §3.3: when a class comes from a library whose source is NOT
    // available, its members cannot be classified at all. Mark the class
    // as a library class and it is excluded from the statistics; its
    // virtual methods' application overrides become call-graph roots.
    let source = r#"
        class LibWidget {            // pretend this came from a binary library
        public:
            virtual void on_event(); // no body available
            int internal_state;
        };
        class MyWidget : public LibWidget {
        public:
            int clicks;
            int skin_id;             // dead: written, never read
            virtual void on_event() { clicks = clicks + 1; }
        };
        int report_clicks(MyWidget* w) { return w->clicks; }
        int main() {
            MyWidget w;
            w.skin_id = 3;
            return report_clicks(&w);
        }
    "#;
    let run = AnalysisPipeline::with_config(
        source,
        AnalysisConfig {
            library_classes: ["LibWidget".to_string()].into_iter().collect(),
            ..Default::default()
        },
        Algorithm::Rta,
    )?;
    let report = run.report();
    println!("\n== library-class handling (§3.3)");
    println!("{report}");
    assert_eq!(report.dead_member_names(), vec!["MyWidget::skin_id"]);
    // `on_event` is a callback root, so `clicks` stays live even though
    // no application code calls on_event directly.
    Ok(())
}
